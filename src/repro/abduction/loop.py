"""The CEGIS loop: counterexample-guided synthesis of stable
admission conditions.

For one drift-fragile pair the loop walks the conjunction lattice over
the pair's atom alphabet (:mod:`.atoms`) **weakest-first**: width-1
conjunctions (single atoms) before width-2, so the first condition to
survive is the weakest — the one that admits the most.  Each frontier
round is decided by ONE bounded quantified sweep
(:func:`repro.stability.quantified.check_pair` batches every candidate
through a shared case enumeration), and the sweep's refutations drive
the walk:

- a **violating observation** ``(args1, args2, r1)`` recorded for a
  failed candidate joins the loop's counterexample store; future
  frontier candidates whose conjunction still holds on a stored
  observation are **pruned without a sweep** (they would be refuted by
  the same trace);
- the failed candidate is **strengthened**: for every alphabet atom
  false at the witness, the conjunction plus that atom enters the next
  frontier (the child provably rejects the refuting trace);
- a **vacuous** candidate (admitted nothing in scope) is a dead end —
  strengthening only shrinks its admission set further;
- candidates that **arm** are re-screened by the symbolic prover
  (:func:`repro.prover.backend.discharge_pair`): a *refuted* candidate
  is disarmed and its countermodel's ``(root, drift, args, r1)``
  valuation — when its argument/result reprs parse back into concrete
  values — strengthens the lattice exactly like a bounded witness;
  otherwise the loop pivots to the rest of the frontier.  *Unsupported*
  obligations (custom families outside the theory fragment) change
  nothing: the candidate keeps its bounded certificate, the same
  license every state-free armed weakening has carried since PR 5.

The walk terminates at a fixpoint (empty frontier) or a per-pair
budget.  Results are plain data (:class:`PairSynthesis`) so the engine
can cache them as its own ``ABDUCTION`` task kind; the parent merges
them into the pair's verdict via
:func:`repro.stability.compiler.merge_synthesis`, promoting pairs that
gained an armed abduced candidate to the ``synthesized`` tier.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field, replace
from typing import Any

from ..commutativity.conditions import (CommutativityCondition,
                                        condition_symbols)
from ..eval.enumeration import Scope
from ..eval.interpreter import EvalContext, EvalError
from ..logic import ParseError, parse_formula
from ..logic.compile import compile_term
from ..specs.interface import DataStructureSpec
from ..stability.quantified import CandidateResult, check_pair
from .atoms import atom_pool

#: Bump whenever the alphabet, the walk, or the recorded shape of a
#: synthesis could change — part of every ABDUCTION task key, so
#: bumping retires all cached syntheses at once.
ABDUCTION_VERSION = 1

#: Widest conjunction the walk will propose.
MAX_WIDTH = 3

#: Per-pair budget of sweep-checked candidates.
MAX_CHECKED = 48

#: Frontier cap per round (weakest-first order makes the cut safe:
#: dropped candidates are the most-strengthened ones).
MAX_FRONTIER = 24

#: Violating observations recorded per failed candidate per sweep.
WITNESS_LIMIT = 4


@dataclass(frozen=True)
class PairSynthesis:
    """The abduction outcome for one pair: every candidate the loop
    decided (armed, or prover-refuted with its countermodel), plus the
    lattice-walk statistics."""

    m1: str
    m2: str
    #: Armed abduced candidates (``origin="abduced"``) and
    #: prover-refuted ones kept unarmed with their countermodels.
    conditions: tuple[CandidateResult, ...] = ()
    #: Candidates decided by a bounded sweep.
    checked: int = 0
    #: Candidates refuted by the counterexample store without a sweep.
    pruned: int = 0
    #: Armed candidates the prover later refuted (and disarmed).
    refuted: int = 0
    #: Frontier rounds walked.
    rounds: int = 0
    cases: int = 0
    elapsed: float = field(default=0.0, compare=False)

    @property
    def pair_label(self) -> str:
        return f"{self.m1};{self.m2}"

    @property
    def armed(self) -> tuple[CandidateResult, ...]:
        return tuple(c for c in self.conditions if c.armed)

    def stats(self) -> dict[str, int]:
        """The lattice-walk trace, JSON-shaped for payloads/reports."""
        return {"checked": self.checked, "pruned": self.pruned,
                "refuted": self.refuted, "rounds": self.rounds,
                "armed": len(self.armed)}


def synthesize_pair(spec: DataStructureSpec,
                    cond: CommutativityCondition, scope: Scope,
                    prover: bool = True,
                    budget: int = MAX_CHECKED) -> PairSynthesis:
    """Run the CEGIS walk for one drift-fragile between condition."""
    start = time.perf_counter()
    op1, op2 = cond.op1, cond.op2
    ctx = EvalContext(observe=spec.observe)
    table = condition_symbols(spec, op1, op2)
    compiled: dict[str, Any] = {}
    for atom in atom_pool(op1, op2):
        try:
            compiled[atom] = compile_term(parse_formula(atom, table),
                                          ctx)
        except ParseError:
            continue
    pool = list(compiled)

    def conj_text(atoms: frozenset) -> str:
        ordered = [a for a in pool if a in atoms]
        if len(ordered) == 1:
            return ordered[0]
        return " & ".join(f"({a})" for a in ordered)

    def holds(atom: str, env: dict[str, Any]) -> bool:
        # Unevaluable counts as holding: the atom might admit the
        # refuting trace, so it neither prunes nor strengthens.
        try:
            return bool(compiled[atom](env))
        except EvalError:
            return True

    def obs_env(obs: tuple) -> dict[str, Any]:
        args1, args2, r1 = obs
        env: dict[str, Any] = {}
        for param, value in zip(op1.params, args1):
            env[f"{param.name}1"] = value
        for param, value in zip(op2.params, args2):
            env[f"{param.name}2"] = value
        if op1.result_sort is not None:
            env["r1"] = r1
        return env

    def strengthen(cand: frozenset, env: dict[str, Any]) -> list:
        return [cand | {atom} for atom in pool
                if atom not in cand and not holds(atom, env)]

    store: list[dict[str, Any]] = []
    decided: list[CandidateResult] = []
    armed_sets: list[frozenset] = []
    checked = pruned = refuted = rounds = cases = 0
    frontier = [frozenset([atom]) for atom in pool]
    seen: set[frozenset] = set(frontier)
    while frontier and checked < budget:
        rounds += 1
        batch: list[frozenset] = []
        children: list[frozenset] = []
        for cand in frontier:
            if any(s <= cand for s in armed_sets):
                continue  # subsumed: a weaker conjunction already armed
            witness = next(
                (env for env in store
                 if all(holds(atom, env) for atom in cand)), None)
            if witness is not None:
                pruned += 1
                children += strengthen(cand, witness)
                continue
            if checked + len(batch) < budget:
                batch.append(cand)
        if batch:
            texts = [conj_text(cand) for cand in batch]
            sweep = check_pair(spec, cond, texts, scope,
                               witness_limit=WITNESS_LIMIT)
            cases += sweep.cases
            checked += len(batch)
            by_text = {r.text: r for r in sweep.candidates}
            newly_armed: list[tuple[frozenset, CandidateResult]] = []
            for cand, text in zip(batch, texts):
                result = by_text.get(text)
                if result is None:
                    continue  # out of vocabulary — dropped by the sweep
                if result.armed:
                    newly_armed.append((cand, result))
                elif result.witnesses:
                    for obs in result.witnesses:
                        store.append(obs_env(obs))
                    children += strengthen(cand,
                                           obs_env(result.witnesses[0]))
                # else: vacuous — a dead end, spawn nothing.
            children += _screen(spec, cond, scope, newly_armed,
                                decided, armed_sets, strengthen,
                                prover)
            refuted = sum(1 for c in decided
                          if not c.armed and c.countermodel is not None)
        frontier = []
        for child in children:
            if len(child) > MAX_WIDTH or child in seen:
                continue
            seen.add(child)
            frontier.append(child)
            if len(frontier) >= MAX_FRONTIER:
                break
    return PairSynthesis(
        m1=cond.m1, m2=cond.m2, conditions=tuple(decided),
        checked=checked, pruned=pruned, refuted=refuted, rounds=rounds,
        cases=cases, elapsed=time.perf_counter() - start)


def _screen(spec, cond, scope, newly_armed, decided, armed_sets,
            strengthen, prover) -> list[frozenset]:
    """Prover-screen a round's bounded-armed candidates; returns the
    strengthened children of any the prover refuted."""
    from ..prover.backend import discharge_pair
    children: list[frozenset] = []
    if not newly_armed:
        return children
    verdicts = {}
    if prover:
        proof = discharge_pair(spec, cond,
                               [r.text for _, r in newly_armed], scope)
        verdicts = {p.candidate: p for p in proof.results}
    for cand, result in newly_armed:
        abduced = CandidateResult(
            text=result.text, passed=True, armed=True,
            admitted=result.admitted, violations=0, origin="abduced")
        verdict = verdicts.get(result.text)
        if verdict is not None and verdict.status == "refuted":
            decided.append(replace(abduced, armed=False,
                                   countermodel=verdict.countermodel))
            env = _countermodel_env(cond, verdict.countermodel)
            if env is not None:
                children += strengthen(cand, env)
            continue  # otherwise: pivot — the frontier walks on
        if verdict is not None and verdict.status == "proved":
            abduced = replace(abduced, proved=True)
        decided.append(abduced)
        armed_sets.append(cand)
    return children


def _countermodel_env(cond: CommutativityCondition,
                      countermodel: dict | None) -> dict | None:
    """Rebuild a state-free evaluation environment from a prover
    countermodel's repr-string valuation; ``None`` when any repr does
    not parse back into a concrete value (symbolic tokens beyond
    literals — the loop then pivots instead of strengthening)."""
    if not countermodel:
        return None
    try:
        args1 = tuple(ast.literal_eval(a)
                      for a in countermodel.get("args1", ()))
        args2 = tuple(ast.literal_eval(a)
                      for a in countermodel.get("args2", ()))
        r1 = (ast.literal_eval(countermodel["r1"])
              if countermodel.get("r1") is not None else None)
    except (ValueError, SyntaxError):
        return None
    env: dict[str, Any] = {}
    for param, value in zip(cond.op1.params, args1):
        env[f"{param.name}1"] = value
    for param, value in zip(cond.op2.params, args2):
        env[f"{param.name}2"] = value
    if cond.op1.result_sort is not None:
        env["r1"] = r1
    return env


# -- plain-data (de)serialization for the engine cache ------------------------

def synthesis_payload(synth: PairSynthesis) -> dict[str, Any]:
    """A JSON-shaped rendering of one synthesis (ABDUCTION task
    outcome payload; persists verbatim in ``.repro-cache``)."""
    return {
        "m1": synth.m1,
        "m2": synth.m2,
        "conditions": [[c.text, c.passed, c.armed, c.admitted,
                        c.proved, c.countermodel]
                       for c in synth.conditions],
        "checked": synth.checked,
        "pruned": synth.pruned,
        "refuted": synth.refuted,
        "rounds": synth.rounds,
        "cases": synth.cases,
    }


def synthesis_from_payload(payload: dict[str, Any],
                           elapsed: float = 0.0) -> PairSynthesis:
    """Rebuild a synthesis from a cached/worker payload."""
    return PairSynthesis(
        m1=payload["m1"], m2=payload["m2"],
        conditions=tuple(
            CandidateResult(text=text, passed=bool(passed),
                            armed=bool(armed), admitted=int(admitted),
                            violations=0, proved=bool(proved),
                            countermodel=countermodel,
                            origin="abduced")
            for text, passed, armed, admitted, proved, countermodel
            in payload.get("conditions", ())),
        checked=int(payload.get("checked", 0)),
        pruned=int(payload.get("pruned", 0)),
        refuted=int(payload.get("refuted", 0)),
        rounds=int(payload.get("rounds", 0)),
        cases=int(payload.get("cases", 0)), elapsed=elapsed)
