"""Counterexample-guided synthesis of stable admission conditions.

PRs 5–7 compile, prove, and closure-compile *existing* condition
weakenings: the projector extracts what the catalog author wrote, the
footprint analyzer what a registered shard router licenses.  Pairs
where neither finds anything — and every user-registered custom
structure with no router and no projector hit — still fall back to the
conservative oracle under drift.  This package closes the loop with
the abduction move (à la the source paper's automated error
correction: propose the missing premise, refute, strengthen, repeat):

- :mod:`.atoms` — the lattice alphabet: argument (dis)equalities,
  index-order relations, and observed-``r1`` links, generated for any
  structure, router or not;
- :mod:`.loop` — the CEGIS walk: weakest-first conjunction frontier,
  one bounded quantified sweep per round, violating observations
  pruning and strengthening the lattice, the symbolic prover screening
  every bounded-armed survivor (its countermodels strengthen too);
- :mod:`.demo` — the projector-less, router-less showcase structure
  the bench gate, tests, and example share.

Results run through the engine as the cached ``ABDUCTION`` task kind
and merge into each pair's verdict
(:func:`repro.stability.compiler.merge_synthesis`) as the
``synthesized`` tier: decision-visible (the gatekeeper counts
``synthesized_hits``), never decision-changing (a synthesized
condition admits exactly like any other armed condition — flat and
sharded managers, local and served deployments, still agree
byte-for-byte).  Entry points: :meth:`repro.api.Session.abduce_stable`,
``stability --abduce``, ``bench --stable --abduce``.
"""

from .atoms import atom_pool
from .demo import (DEMO_FAMILY, make_demo_registry,
                   register_demo_structure)
from .loop import (ABDUCTION_VERSION, PairSynthesis,
                   synthesis_from_payload, synthesis_payload,
                   synthesize_pair)

__all__ = [
    "atom_pool",
    "DEMO_FAMILY", "make_demo_registry", "register_demo_structure",
    "ABDUCTION_VERSION", "PairSynthesis", "synthesis_from_payload",
    "synthesis_payload", "synthesize_pair",
]
