"""The abduction lattice's atom alphabet.

The CEGIS loop (:mod:`.loop`) walks conjunctions of *state-free* atoms
over one pair's between vocabulary — argument equalities and
disequalities, index-order relations, and observed-``r1`` links.  The
footprint analyzer (:mod:`repro.stability.footprint`) derives a subset
of these, but gates them on a registered shard router: the router's
soundness contract is what makes argument relations *candidate*
witnesses there.  Abduction needs no such license — every conjunction
it proposes goes through the bounded quantified re-verifier (and the
symbolic prover) before it can arm, so the alphabet is generated for
**any** structure, including user-registered ones with no router and no
projector hit.  That ungating is the whole point: it is how semantic
admission coverage grows for structures the hand-derived candidate
machinery cannot touch.

Beyond the footprint set, the alphabet adds the atom classes the
lattice needs to express *synthesized* conditions the pool never
contained:

- **argument equalities** (``v1 = v2``, ``k1 = k2``): the write-of-
  what-is-being-written half of value coincidence — disequality
  separates footprints, equality pins them to the *same* projection,
  which commutes exactly when the observed ``r1`` agrees (hence the
  conjunctions the loop discovers);
- **first-operation result links** (``v1 = r1``): the footprint
  analyzer links ``r1`` only to the *incoming* operation's arguments;
  an overwrite-style operation whose result is the overwritten value
  commutes with a successor precisely when its *own* argument equals
  what it displaced — expressible only with the ``p1 = r1`` class.

Atoms are deliberately state-free (no ``s1``/``s2``): armed
conjunctions must extrapolate beyond the bounded scope, and the
prover's theory fragment covers them.
"""

from __future__ import annotations

from ..logic.sorts import Sort
from ..specs.interface import Operation

#: Caps the alphabet per pair; the lattice walk's per-round sweep cost
#: is linear in the frontier it spawns.
MAX_ATOMS = 16


def equality_atoms(op1: Operation, op2: Operation) -> list[str]:
    """Argument equalities and disequalities across the pair, for every
    same-sort parameter combination (not just the first, unlike the
    router-derived footprint set)."""
    atoms: list[str] = []
    for p1 in op1.params:
        for p2 in op2.params:
            if p1.sort is not p2.sort:
                continue
            atoms.append(f"{p1.name}1 = {p2.name}2")
            atoms.append(f"{p1.name}1 ~= {p2.name}2")
    return atoms


def order_atoms(op1: Operation, op2: Operation) -> list[str]:
    """Index-order relations for integer parameter combinations (the
    banded-footprint logic, ungated)."""
    atoms: list[str] = []
    for p1 in op1.params:
        for p2 in op2.params:
            if p1.sort is not Sort.INT or p2.sort is not Sort.INT:
                continue
            atoms.append(f"{p2.name}2 < {p1.name}1")
            atoms.append(f"{p1.name}1 < {p2.name}2")
    return atoms


def result_link_atoms(op1: Operation, op2: Operation) -> list[str]:
    """Atoms linking the observed ``r1`` to either operation's
    arguments — including the ``p1 = r1`` class the footprint analyzer
    lacks."""
    if op1.result_sort is None:
        return []
    atoms: list[str] = []
    if op1.result_sort is Sort.BOOL:
        atoms += ["r1", "~r1"]
    for param in op2.params:
        if param.sort is op1.result_sort:
            atoms.append(f"{param.name}2 = r1")
    for param in op1.params:
        if param.sort is op1.result_sort:
            atoms.append(f"{param.name}1 = r1")
    return atoms


def atom_pool(op1: Operation, op2: Operation) -> list[str]:
    """The pair's full atom alphabet, deduplicated in a deterministic
    order (the order doubles as the canonical conjunct order of every
    synthesized condition text)."""
    atoms = (equality_atoms(op1, op2) + order_atoms(op1, op2)
             + result_link_atoms(op1, op2))
    return list(dict.fromkeys(atoms))[:MAX_ATOMS]
