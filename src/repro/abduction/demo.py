"""The abduction showcase structure: a user-registered Register with
**no shard router and no projector hit**.

A single overwrite cell — ``write(v)`` returns the overwritten value,
``read()`` the current one — whose sound-and-complete between
conditions all read ``s1``.  Every machinery rung before abduction is
structurally blind to it:

- the **projector** finds no arg/result-only disjunct (the conditions
  are conjunctions through a state read);
- the **footprint analyzer** contributes nothing (no registered shard
  router, so no region-logic license for argument relations);
- the **prover** classifies the pair obligations ``unsupported`` (a
  custom family outside the symbolic theory fragment);
- at run time, the conservative fallback's router oracle — absent —
  admits *nothing* under drift: every drifted pair check conflicts.

The CEGIS loop closes the gap from the atom alphabet alone, e.g.
``write;write`` arms ``(v1 = v2) & (v2 = r1)`` (writing the value that
is already there, twice) and ``write;read`` arms ``v1 = r1`` — each
atom singly refuted by a bounded witness, the conjunction synthesized
from the strengthening step.  The bench gate, the abduction tests, and
``examples/abduced_custom_structure.py`` all register this structure;
it lives in the package (not the test tree) so all three share one
definition.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..eval import Record
from ..eval.enumeration import Scope
from ..logic.sorts import Sort
from ..specs.interface import (DataStructureSpec, Operation, Param,
                               parse_pre)

#: The family name the demo registers under.
DEMO_FAMILY = "RegisterCell"

_STATE_FIELDS = {"value": Sort.OBJ}

#: Sound-and-complete conditions (valid for every kind: they only
#: mention before-vocabulary variables) — every one drift-fragile.
DEMO_CONDITIONS = {
    ("write", "write"): "v1 = v2 & s1.value = v1",
    ("write", "read"): "s1.value = v1",
    ("read", "write"): "s1.value = v2",
    ("read", "read"): "true",
}


def _write(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return Record(value=v), state["value"]


def _read(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["value"]


def _states(scope: Scope) -> Iterator[Record]:
    for v in scope.objects:
        yield Record(value=v)


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    if op.params:
        for v in scope.objects:
            yield (v,)
    else:
        yield ()


def make_demo_spec() -> DataStructureSpec:
    params = (Param("v", Sort.OBJ),)
    operations = {
        "write": Operation(
            name="write", params=params, result_sort=Sort.OBJ,
            precondition=parse_pre("v ~= null", _STATE_FIELDS, params,
                                   {}, None),
            semantics=_write, mutator=True),
        "read": Operation(
            name="read", params=(), result_sort=Sort.OBJ,
            precondition=parse_pre("true", _STATE_FIELDS, (), {}, None),
            semantics=_read, mutator=False),
    }
    return DataStructureSpec(
        name=DEMO_FAMILY, state_fields=dict(_STATE_FIELDS),
        principal_field=None, operations=operations,
        initial_state=Record(value="init"),
        invariant=lambda state: True,
        states=_states, arguments=_arguments)


class RegisterCellImpl:
    """The concrete cell: one overwrite slot with the abstraction
    function the serial-replay validator compares through."""

    def __init__(self) -> None:
        self._value: Any = "init"

    def write(self, v: Any) -> Any:
        old = self._value
        self._value = v
        return old

    def read(self) -> Any:
        return self._value

    def abstract_state(self) -> Record:
        return Record(value=self._value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterCell({self._value!r})"


def _build_conditions(spec: DataStructureSpec):
    from ..commutativity.conditions import CommutativityCondition, Kind
    return [CommutativityCondition(family=DEMO_FAMILY, m1=m1, m2=m2,
                                   kind=kind, text=text, spec=spec)
            for (m1, m2), text in DEMO_CONDITIONS.items()
            for kind in Kind]


def register_demo_structure(registry, name: str = DEMO_FAMILY) -> str:
    """Register the demo cell (spec + conditions + implementation +
    inverse; **no** shard router) on ``registry``; returns the
    registered name.  Idempotent: a registry that already has the cell
    (the bench gate and the tests share registries) is left alone."""
    from ..inverses import Arg, Guard, InverseCall, InverseSpec
    if name in registry.names():
        return name
    registry.register_spec(name, make_demo_spec,
                           implementation=RegisterCellImpl)
    registry.register_conditions(name, _build_conditions)
    registry.register_inverses(name, (InverseSpec(
        family=DEMO_FAMILY, op="write", guard=Guard.NONE,
        then=(InverseCall("write", (Arg.result(),)),)),))
    return name


def make_demo_registry():
    """A fresh registry: the six built-ins plus the demo cell."""
    from ..api import Registry
    registry = Registry.with_builtins()
    register_demo_structure(registry)
    return registry
