"""Content fingerprints for proof obligations.

The result cache is *content-addressed*: a task's key is a stable hash
of everything its outcome depends on — the specification (signatures,
formulas, and the source of the executable semantics), the condition
formulas or inverse program, the enumeration scope, the backend, and
the engine version.  Editing any ingredient changes the key; bumping
:data:`ENGINE_VERSION` retires every previously persisted entry at
once.

Two deliberate limits.  Semantics callables are fingerprinted by
*source text*: values they close over are invisible, so factories that
bake different captured state into byte-identical bodies must disable
the cache (or differ in source).  And changes to the checker backends
themselves (:mod:`repro.commutativity.bounded`, :mod:`repro.solver`)
are represented only by :data:`ENGINE_VERSION` — bump it whenever a
backend change could alter an obligation's outcome.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import asdict
from typing import Any

from ..eval.enumeration import Scope
from ..logic.printer import pretty

#: Bump whenever a change to the verification engine could alter the
#: outcome (or recorded shape) of a previously proven obligation.
ENGINE_VERSION = 1


def stable_hash(payload: Any) -> str:
    """SHA-256 of the canonical JSON rendering of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _callable_source(fn: Any) -> str:
    """Source text of a semantics function, or a stable module-qualified
    name when source is unavailable (builtins, C extensions, partials,
    REPL definitions).  Never anything embedding a memory address: that
    would change every process and make the cache silently never hit.

    Source text is the fingerprint, so state a callable *closes over*
    is invisible here — a factory that bakes different captured values
    into byte-identical function bodies must be distinguished some
    other way (different source, or a cache-disabling run).
    """
    try:
        return inspect.getsource(fn)
    except (OSError, TypeError):
        module = getattr(fn, "__module__", None) or ""
        qualname = getattr(fn, "__qualname__", None)
        if qualname is not None:
            return f"{module}:{qualname}"
        # functools.partial and friends: fingerprint the wrapped
        # callable plus the bound arguments.
        func = getattr(fn, "func", None)
        if func is not None:
            return stable_hash({
                "func": _callable_source(func),
                "args": repr(getattr(fn, "args", ())),
                "keywords": repr(getattr(fn, "keywords", {})),
            })
        return f"{module}:{type(fn).__qualname__}"


def operation_fingerprint(op) -> dict[str, Any]:
    """Everything an operation contributes to an obligation's meaning."""
    return {
        "name": op.name,
        "params": [(p.name, p.sort.value) for p in op.params],
        "result": op.result_sort.value if op.result_sort else None,
        "pre": pretty(op.precondition),
        "post": (pretty(op.postcondition)
                 if op.postcondition is not None else None),
        "mutator": op.mutator,
        "base": op.base_name,
        "semantics": _callable_source(op.semantics),
    }


def spec_fingerprint(spec) -> dict[str, Any]:
    """Fingerprint of a :class:`~repro.specs.interface.DataStructureSpec`.

    Covers the abstract state shape, every operation (including the
    source of its executable semantics), and the state/argument
    enumerators — mutating any of them invalidates cached results.
    """
    return {
        "name": spec.name,
        "state_fields": sorted(
            (f, s.value) for f, s in spec.state_fields.items()),
        "principal": spec.principal_field,
        "initial": repr(spec.initial_state),
        "operations": [operation_fingerprint(op) for op in
                       sorted(spec.operations.values(),
                              key=lambda op: op.name)],
        "invariant": _callable_source(spec.invariant),
        "states": _callable_source(spec.states),
        "arguments": _callable_source(spec.arguments),
    }


def condition_fingerprint(cond) -> dict[str, Any]:
    """Fingerprint of one commutativity condition's formula content."""
    return {
        "family": cond.family,
        "m1": cond.m1,
        "m2": cond.m2,
        "kind": cond.kind.value,
        "text": cond.text,
        "dynamic_text": cond.dynamic_text,
    }


def stability_fingerprint(conditions, has_router: bool) -> dict[str, Any]:
    """Fingerprint of one stability-compilation group.

    Covers the condition formulas (candidates are derived from them),
    whether the structure has a shard router (it gates the footprint
    candidate atoms, so registering one must retire routerless
    verdicts), and the compiler version (candidate generation and the
    quantified check live outside the condition content, so their
    evolution must retire cached verdicts the way
    :data:`ENGINE_VERSION` retires proofs).
    """
    from ..stability.compiler import STABILITY_COMPILER_VERSION
    return {
        "compiler_version": STABILITY_COMPILER_VERSION,
        "has_router": bool(has_router),
        "conditions": [condition_fingerprint(c) for c in conditions],
    }


def symbolic_stability_fingerprint(conditions,
                                   has_router: bool) -> dict[str, Any]:
    """Fingerprint of one symbolic-stability (prover) group.

    The bounded group's ingredients plus the prover identity: version,
    backend name, and external-solver availability
    (:func:`repro.prover.backend.prover_fingerprint`) — so toggling
    ``--prover`` internals or installing z3 retires cached proofs
    instead of serving stale ``.repro-cache`` entries.
    """
    from ..prover.backend import prover_fingerprint
    fingerprint = stability_fingerprint(conditions, has_router)
    fingerprint["prover"] = prover_fingerprint()
    return fingerprint


def abduction_fingerprint(conditions, has_router: bool) -> dict[str, Any]:
    """Fingerprint of one abduction (CEGIS) group.

    The symbolic group's ingredients — condition formulas, router
    presence, compiler version, prover identity (the loop screens
    bounded-armed candidates through the prover, so installing z3 or
    bumping the prover must retire syntheses) — plus the abduction
    version covering the atom alphabet and the lattice walk
    (:data:`repro.abduction.loop.ABDUCTION_VERSION`).  Toggling any
    layer never serves a stale synthesis from ``.repro-cache``.
    """
    from ..abduction.loop import ABDUCTION_VERSION
    fingerprint = symbolic_stability_fingerprint(conditions, has_router)
    fingerprint["abduction_version"] = ABDUCTION_VERSION
    return fingerprint


def compiled_admission_fingerprint(spec_fp: dict[str, Any] | str, cond,
                                   label: str,
                                   ctx) -> dict[str, Any]:
    """The content address of one compiled admission check (the
    per-pair closure cache in :mod:`repro.compiled.cache`).

    ``spec_fp`` is the spec's fingerprint dict or its
    :func:`stable_hash` — arm time passes the pre-computed hash so the
    large spec payload is serialized once per spec, not once per pair.

    Covers the full spec fingerprint — the observer dispatcher every
    spec shares by *source* differs only through the operations it
    closes over, so the spec content is what distinguishes two
    structures' observers (the captured-state blindness contract of
    :func:`_callable_source`, resolved by fingerprinting the captured
    content instead) — plus the formula text actually lowered, the
    pair, a tier/kind label, any explicit quantifier domains on the
    evaluation context, and the compiler versions.  Bumping
    :data:`~repro.compiled.lowering.ADMISSION_COMPILER_VERSION` (or
    :data:`ENGINE_VERSION`) retires every cached closure at once.
    """
    from ..compiled.lowering import ADMISSION_COMPILER_VERSION
    return {
        "engine_version": ENGINE_VERSION,
        "admission_compiler_version": ADMISSION_COMPILER_VERSION,
        "spec": spec_fp,
        "family": cond.family,
        "m1": cond.m1,
        "m2": cond.m2,
        "label": label,
        "text": getattr(cond, "dynamic_text", None) or cond.text,
        "int_domain": repr(ctx.int_domain),
        "obj_domain": repr(ctx.obj_domain),
    }


def inverse_fingerprint(inverse) -> dict[str, Any]:
    """Fingerprint of one inverse catalog entry (its undo program)."""
    return {
        "family": inverse.family,
        "op": inverse.op,
        "guard": inverse.guard.value,
        "program": inverse.render(),
    }


def scope_fingerprint(scope: Scope) -> dict[str, Any]:
    return asdict(scope)


def task_key(*, kind: str, structure: str, backend: str, scope: Scope,
             spec_fp: dict[str, Any], obligations: Any,
             use_dynamic: bool = False,
             engine_version: int = ENGINE_VERSION) -> str:
    """The content address of one verification task."""
    return stable_hash({
        "engine_version": engine_version,
        "kind": kind,
        "structure": structure,
        "backend": backend,
        "use_dynamic": use_dynamic,
        "scope": scope_fingerprint(scope),
        "spec": spec_fp,
        "obligations": obligations,
    })
