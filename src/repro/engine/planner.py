"""Expand verification requests into independent task shards.

The :class:`TaskPlanner` turns ``(structure, condition, backend,
scope)`` into :class:`~repro.engine.tasks.VerifyTask` shards — one per
operation *pair* for commutativity (the pair's before/between/after
conditions share case enumeration) and one per catalog entry for
inverses — each stamped with its content-address key.  The resulting
:class:`TaskPlan` keeps the parent-side payloads (condition and inverse
objects, which are not picklable) so reports can be reassembled in
deterministic catalog order regardless of completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..eval.enumeration import Scope
from .fingerprint import (ENGINE_VERSION, abduction_fingerprint,
                          condition_fingerprint, inverse_fingerprint,
                          spec_fingerprint, stability_fingerprint,
                          symbolic_stability_fingerprint, task_key)
from .tasks import (ABDUCTION, BACKENDS, COMMUTATIVITY, INVERSE,
                    STABILITY, SYMBOLIC_STABILITY, VerifyTask)


@dataclass
class TaskPlan:
    """Tasks plus the parent-side payloads to reassemble results."""

    tasks: list[VerifyTask] = field(default_factory=list)
    #: Task index -> tuple of conditions (commutativity) or the
    #: :class:`~repro.inverses.catalog.InverseSpec` (inverse).
    payloads: dict[int, Any] = field(default_factory=dict)
    #: Structure name -> its task indexes, in catalog order.
    structure_tasks: dict[str, list[int]] = field(default_factory=dict)

    def task(self, index: int) -> VerifyTask:
        return self.tasks[index]


class TaskPlanner:
    """Expand structures into content-addressed verification shards."""

    def __init__(self, registry=None) -> None:
        from ..api import resolve_registry
        self.registry = resolve_registry(registry)
        self._spec_fps: dict[str, dict[str, Any]] = {}

    def _spec_fp(self, name: str) -> dict[str, Any]:
        family = self.registry.family_of(name)
        if family not in self._spec_fps:
            self._spec_fps[family] = spec_fingerprint(
                self.registry.spec(family))
        return self._spec_fps[family]

    # -- commutativity -------------------------------------------------------

    def plan_verification(self, names: Sequence[str], scope: Scope,
                          backend: str,
                          use_dynamic: bool = False) -> TaskPlan:
        """One task per (structure, operation pair)."""
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        plan = TaskPlan()
        for name in dict.fromkeys(names):  # dedupe, preserving order
            indexes = plan.structure_tasks.setdefault(name, [])
            for pair, conditions in self._pair_groups(name).items():
                index = len(plan.tasks)
                key = task_key(
                    kind=COMMUTATIVITY, structure=name, backend=backend,
                    scope=scope, spec_fp=self._spec_fp(name),
                    obligations=[condition_fingerprint(c)
                                 for c in conditions],
                    use_dynamic=use_dynamic,
                    engine_version=ENGINE_VERSION)
                plan.tasks.append(VerifyTask(
                    index=index, kind=COMMUTATIVITY, structure=name,
                    backend=backend, scope=scope, pair=pair,
                    use_dynamic=use_dynamic, key=key))
                plan.payloads[index] = tuple(conditions)
                indexes.append(index)
        return plan

    def _pair_groups(self, name: str) -> dict[tuple[str, str], list]:
        groups: dict[tuple[str, str], list] = {}
        for cond in self.registry.conditions(name):
            groups.setdefault((cond.m1, cond.m2), []).append(cond)
        return groups

    # -- stability compilation -----------------------------------------------

    def plan_stability(self, names: Sequence[str],
                       scope: Scope) -> TaskPlan:
        """One task per (structure, first-operation group) of
        drift-fragile between conditions — grouping by ``m1`` lets a
        task share spec setup across the pairs it compiles, and keeps
        shard counts close to the commutativity plan's."""
        from ..commutativity.conditions import Kind
        plan = TaskPlan()
        for name in dict.fromkeys(names):  # dedupe, preserving order
            indexes = plan.structure_tasks.setdefault(name, [])
            groups: dict[str, list] = {}
            for cond in self.registry.conditions(name):
                if cond.kind is Kind.BETWEEN and cond.drift_fragile:
                    groups.setdefault(cond.m1, []).append(cond)
            has_router = self.registry.has_shard_router(name)
            for group, conditions in groups.items():
                index = len(plan.tasks)
                key = task_key(
                    kind=STABILITY, structure=name, backend="bounded",
                    scope=scope, spec_fp=self._spec_fp(name),
                    obligations=stability_fingerprint(conditions,
                                                      has_router),
                    engine_version=ENGINE_VERSION)
                plan.tasks.append(VerifyTask(
                    index=index, kind=STABILITY, structure=name,
                    backend="bounded", scope=scope, group=group,
                    key=key))
                plan.payloads[index] = tuple(conditions)
                indexes.append(index)
        return plan

    def plan_symbolic_stability(self, names: Sequence[str],
                                scope: Scope) -> TaskPlan:
        """One prover task per (structure, first-operation group) of
        drift-fragile between conditions — mirroring
        :meth:`plan_stability` so bounded verdicts and symbolic proofs
        shard, cache, and reassemble identically."""
        from ..commutativity.conditions import Kind
        plan = TaskPlan()
        for name in dict.fromkeys(names):  # dedupe, preserving order
            indexes = plan.structure_tasks.setdefault(name, [])
            groups: dict[str, list] = {}
            for cond in self.registry.conditions(name):
                if cond.kind is Kind.BETWEEN and cond.drift_fragile:
                    groups.setdefault(cond.m1, []).append(cond)
            has_router = self.registry.has_shard_router(name)
            for group, conditions in groups.items():
                index = len(plan.tasks)
                key = task_key(
                    kind=SYMBOLIC_STABILITY, structure=name,
                    backend="native", scope=scope,
                    spec_fp=self._spec_fp(name),
                    obligations=symbolic_stability_fingerprint(
                        conditions, has_router),
                    engine_version=ENGINE_VERSION)
                plan.tasks.append(VerifyTask(
                    index=index, kind=SYMBOLIC_STABILITY, structure=name,
                    backend="native", scope=scope, group=group,
                    key=key))
                plan.payloads[index] = tuple(conditions)
                indexes.append(index)
        return plan

    def plan_abduction(self, names: Sequence[str],
                       scope: Scope) -> TaskPlan:
        """One CEGIS-synthesis task per (structure, first-operation
        group) of drift-fragile between conditions — mirroring
        :meth:`plan_stability` so bounded verdicts, symbolic proofs,
        and syntheses shard, cache, and reassemble identically."""
        from ..commutativity.conditions import Kind
        plan = TaskPlan()
        for name in dict.fromkeys(names):  # dedupe, preserving order
            indexes = plan.structure_tasks.setdefault(name, [])
            groups: dict[str, list] = {}
            for cond in self.registry.conditions(name):
                if cond.kind is Kind.BETWEEN and cond.drift_fragile:
                    groups.setdefault(cond.m1, []).append(cond)
            has_router = self.registry.has_shard_router(name)
            for group, conditions in groups.items():
                index = len(plan.tasks)
                key = task_key(
                    kind=ABDUCTION, structure=name, backend="bounded",
                    scope=scope, spec_fp=self._spec_fp(name),
                    obligations=abduction_fingerprint(conditions,
                                                      has_router),
                    engine_version=ENGINE_VERSION)
                plan.tasks.append(VerifyTask(
                    index=index, kind=ABDUCTION, structure=name,
                    backend="bounded", scope=scope, group=group,
                    key=key))
                plan.payloads[index] = tuple(conditions)
                indexes.append(index)
        return plan

    # -- inverses ------------------------------------------------------------

    def plan_inverses(self, names: Sequence[str], scope: Scope) -> TaskPlan:
        """One task per registered inverse operation."""
        plan = TaskPlan()
        for name in dict.fromkeys(names):  # dedupe, preserving order
            indexes = plan.structure_tasks.setdefault(name, [])
            for position, inverse in enumerate(self.registry.inverses(name)):
                index = len(plan.tasks)
                key = task_key(
                    kind=INVERSE, structure=name, backend="bounded",
                    scope=scope, spec_fp=self._spec_fp(name),
                    obligations=inverse_fingerprint(inverse),
                    engine_version=ENGINE_VERSION)
                plan.tasks.append(VerifyTask(
                    index=index, kind=INVERSE, structure=name,
                    backend="bounded", scope=scope,
                    inverse_index=position, inverse_op=inverse.op,
                    key=key))
                plan.payloads[index] = inverse
                indexes.append(index)
        return plan
