"""The content-addressed verification result cache.

Already-proven obligations are skipped across runs: a task whose key
(see :mod:`.fingerprint`) appears in the cache is answered from the
persisted entry, restoring the case count and elapsed time recorded
when it was actually proven — so a warm rerun produces byte-identical
reports while paying only for fingerprinting.

Only fully *verified* outcomes are cached.  Failures always re-run:
they are exactly the obligations a developer is iterating on, and
re-running them regenerates fresh counterexamples (which, holding
arbitrary state values, would bloat the JSON anyway).

Persistence is one JSON file, ``.repro-cache/verify.json`` by default.
Corrupt files are treated as empty; entries recorded by a different
:data:`~repro.engine.fingerprint.ENGINE_VERSION` are dropped at load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .fingerprint import ENGINE_VERSION
from .tasks import ObligationOutcome, TaskOutcome, VerifyTask

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk layout version of the cache file itself.
SCHEMA = 1


class ResultCache:
    """A persistent key -> verified-outcome store."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / "verify.json"
        self._entries: dict[str, dict[str, Any]] | None = None
        self._dirty = False

    @classmethod
    def resolve(cls, cache) -> "ResultCache | None":
        """Coerce a user-facing ``cache`` argument.

        ``None``/``False`` disable caching; ``True`` uses the default
        directory; a path selects that directory; a :class:`ResultCache`
        is used as-is.
        """
        if cache is None or cache is False:
            return None
        if cache is True:
            return cls()
        if isinstance(cache, ResultCache):
            return cache
        return cls(cache)

    # -- persistence ---------------------------------------------------------

    def _load(self) -> dict[str, dict[str, Any]]:
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict[str, Any]] = {}
        try:
            with open(self.path, encoding="utf-8") as handle:
                data = json.load(handle)
            if isinstance(data, dict) and data.get("schema") == SCHEMA:
                raw = data.get("entries", {})
                if isinstance(raw, dict):
                    entries = {
                        key: entry for key, entry in raw.items()
                        if isinstance(entry, dict)
                        and entry.get("engine_version") == ENGINE_VERSION}
        except (OSError, ValueError):
            entries = {}
        self._entries = entries
        return entries

    def save(self) -> None:
        """Persist new entries (atomic rename; no-op when clean)."""
        if not self._dirty or self._entries is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"schema": SCHEMA, "entries": self._entries},
                      handle, indent=1, sort_keys=True)
        os.replace(tmp, self.path)
        self._dirty = False

    # -- lookup / store ------------------------------------------------------

    def get(self, task: VerifyTask,
            expected_results: int | None = None) -> TaskOutcome | None:
        """The cached outcome for ``task``, or ``None`` on a miss.

        ``expected_results`` guards reassembly: an entry whose result
        list doesn't match the task's obligation count (truncated write,
        hand edit) is treated as a miss rather than silently shrinking
        the report.
        """
        entry = self._load().get(task.key)
        if entry is None:
            return None
        try:
            results = tuple(
                ObligationOutcome(cases=int(r["cases"]),
                                  elapsed=float(r["elapsed"]),
                                  payload=r.get("payload"))
                for r in entry["results"])
            if expected_results is not None \
                    and len(results) != expected_results:
                return None
            return TaskOutcome(index=task.index,
                               elapsed=float(entry["elapsed"]),
                               results=results, cached=True)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, task: VerifyTask, outcome: TaskOutcome) -> None:
        """Record a fully verified outcome (failures are never cached)."""
        if not outcome.verified or outcome.cached:
            return
        self._load()[task.key] = {
            "engine_version": ENGINE_VERSION,
            "label": task.label,
            "kind": task.kind,
            "backend": task.backend,
            "elapsed": outcome.elapsed,
            "results": [
                {"cases": r.cases, "elapsed": r.elapsed,
                 # Payloads are JSON-shaped by construction (stability
                 # verdicts); omitted entirely for classic proof tasks
                 # so their entries keep the historical shape.
                 **({"payload": r.payload} if r.payload is not None
                    else {})}
                for r in outcome.results],
        }
        self._dirty = True

    def __len__(self) -> int:
        return len(self._load())
