"""The sharded verification engine.

Verification is decomposed into independent, content-addressed proof
obligations: a :class:`TaskPlanner` expands ``(structure, condition,
backend, scope)`` into picklable :class:`VerifyTask` shards, a
:class:`ParallelRunner` fans them out over a process pool (serial and
deterministic at ``--jobs 1``), and a :class:`ResultCache` skips
already-proven obligations across runs, persisting JSON under
``.repro-cache/``.  :func:`run_verification` and
:func:`run_inverse_verification` tie the three together and reassemble
:class:`~repro.commutativity.verifier.VerificationReport` /
:class:`~repro.inverses.verifier.InverseCheckResult` values identical
to a serial uncached run.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .fingerprint import (ENGINE_VERSION, abduction_fingerprint,
                          condition_fingerprint, inverse_fingerprint,
                          spec_fingerprint, stability_fingerprint,
                          symbolic_stability_fingerprint, stable_hash,
                          task_key)
from .pipeline import (run_inverse_verification, run_stability_compilation,
                       run_verification)
from .planner import TaskPlan, TaskPlanner
from .runner import JOBS_ENV_VAR, ParallelRunner, resolve_jobs
from .tasks import (ObligationOutcome, TaskOutcome, TaskTiming, VerifyTask,
                    execute_task)

__all__ = [
    "DEFAULT_CACHE_DIR", "ResultCache",
    "ENGINE_VERSION", "abduction_fingerprint", "condition_fingerprint",
    "inverse_fingerprint",
    "spec_fingerprint", "stability_fingerprint",
    "symbolic_stability_fingerprint", "stable_hash", "task_key",
    "run_inverse_verification", "run_stability_compilation",
    "run_verification",
    "TaskPlan", "TaskPlanner",
    "JOBS_ENV_VAR", "ParallelRunner", "resolve_jobs",
    "ObligationOutcome", "TaskOutcome", "TaskTiming", "VerifyTask",
    "execute_task",
]
