"""Fan tasks out over worker processes (with a serial fallback).

``jobs=1`` runs every task in-process, deterministically, with the
caller's registry object — no pickling anywhere.  ``jobs>1`` uses a
:class:`concurrent.futures.ProcessPoolExecutor`; tasks are plain data
(see :mod:`.tasks`) and workers re-resolve names against a registry:

- the package default registry is rebuilt on import in every worker, so
  default-registry runs parallelize under any start method (note for
  spawn-only platforms: registrations made into ``DEFAULT_REGISTRY`` at
  runtime rather than at import time are not visible to spawned
  workers — the lookup error propagates cleanly; use ``jobs=1`` or a
  custom registry there);
- a custom registry (whose spec builders may be closures) is handed to
  workers by *fork inheritance*: it cannot be pickled, so on platforms
  without ``fork`` such runs silently fall back to serial execution.

``jobs=None`` honours the ``REPRO_JOBS`` environment variable (the CI
matrix leg sets ``REPRO_JOBS=2`` to exercise this path on every PR);
``jobs=0`` means one worker per CPU.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterable, Sequence

from .tasks import TaskOutcome, VerifyTask, execute_task, set_worker_registry

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """An explicit ``jobs``, else ``$REPRO_JOBS``, else 1 (``0`` = all CPUs)."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                jobs = 1
        else:
            jobs = 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ParallelRunner:
    """Execute :class:`VerifyTask` shards serially or across processes."""

    def __init__(self, jobs: int | None = None, registry=None) -> None:
        from ..api import resolve_registry
        self.jobs = resolve_jobs(jobs)
        self.registry = resolve_registry(registry)

    def _parallelizable(self, tasks: Sequence[VerifyTask]) -> bool:
        if self.jobs <= 1 or len(tasks) < 2:
            return False
        from ..api import DEFAULT_REGISTRY
        return self.registry is DEFAULT_REGISTRY or _fork_available()

    def run(self, tasks: Iterable[VerifyTask]) -> list[TaskOutcome]:
        """All outcomes, ordered by task index (deterministic)."""
        tasks = list(tasks)
        if not self._parallelizable(tasks):
            return [execute_task(task, self.registry) for task in tasks]
        return self._run_pool(tasks)

    def _run_pool(self, tasks: list[VerifyTask]) -> list[TaskOutcome]:
        from ..api import DEFAULT_REGISTRY
        context = (multiprocessing.get_context("fork")
                   if _fork_available() else None)
        # Fork-inherited handoff for custom registries (see module doc).
        set_worker_registry(None if self.registry is DEFAULT_REGISTRY
                            else self.registry)
        try:
            workers = min(self.jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=context) as pool:
                futures = [pool.submit(execute_task, task) for task in tasks]
                outcomes = [future.result()
                            for future in as_completed(futures)]
        finally:
            set_worker_registry(None)
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes
