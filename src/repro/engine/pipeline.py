"""Plan -> cache-filter -> fan out -> reassemble reports.

This is the engine's front door, behind
:func:`repro.commutativity.verifier.verify_all`,
:func:`repro.inverses.verifier.check_all_inverses`, and
:meth:`repro.api.Session.verify_all`.

Report determinism: results are appended in catalog order (not worker
completion order) and a report's ``elapsed`` is the *sum* of its task
times rather than host wall-clock.  Cache hits restore the case count
and elapsed recorded when the obligation was proven, so a warm rerun is
byte-identical to the cold run that populated the cache.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..commutativity.bounded import CheckResult
from ..commutativity.verifier import VerificationReport
from ..eval.enumeration import Scope
from ..inverses.verifier import InverseCheckResult
from .cache import ResultCache
from .planner import TaskPlan, TaskPlanner
from .runner import ParallelRunner
from .tasks import TaskOutcome, TaskTiming


def _resolve(registry):
    from ..api import resolve_registry
    return resolve_registry(registry)


def _execute_plan(plan: TaskPlan, registry, jobs, cache) \
        -> dict[int, TaskOutcome]:
    """Serve tasks from the cache, run the misses, persist new proofs."""
    store = ResultCache.resolve(cache)
    outcomes: dict[int, TaskOutcome] = {}
    pending = []
    for task in plan.tasks:
        payload = plan.payloads[task.index]
        expected = len(payload) if isinstance(payload, tuple) else 1
        hit = (store.get(task, expected_results=expected)
               if store is not None else None)
        if hit is not None:
            outcomes[task.index] = hit
        else:
            pending.append(task)
    if pending:
        runner = ParallelRunner(jobs=jobs, registry=registry)
        by_index = {task.index: task for task in pending}
        for outcome in runner.run(pending):
            outcomes[outcome.index] = outcome
            if store is not None:
                store.put(by_index[outcome.index], outcome)
        if store is not None:
            store.save()
    return outcomes


def _timing(plan: TaskPlan, index: int, outcome: TaskOutcome) -> TaskTiming:
    task = plan.task(index)
    return TaskTiming(label=task.label, kind=task.kind, backend=task.backend,
                      elapsed=outcome.elapsed, cached=outcome.cached,
                      key=task.key)


def run_verification(scope: Scope | None = None, backend: str = "bounded",
                     names: Sequence[str] | None = None, registry=None,
                     jobs: int | None = None, cache=False,
                     use_dynamic: bool = False) \
        -> dict[str, VerificationReport]:
    """Verify commutativity conditions as a sharded task graph."""
    registry = _resolve(registry)
    scope = scope or Scope()
    if names is None:
        names = tuple(name for name in registry.names()
                      if registry.has_conditions(name))
    names = tuple(dict.fromkeys(names))  # reports are keyed by name
    planner = TaskPlanner(registry)
    plan = planner.plan_verification(names, scope, backend,
                                     use_dynamic=use_dynamic)
    outcomes = _execute_plan(plan, registry, jobs, cache)
    reports: dict[str, VerificationReport] = {}
    for name in names:
        report = VerificationReport(name=name, backend=backend)
        for index in plan.structure_tasks[name]:
            outcome = outcomes[index]
            for cond, result in zip(plan.payloads[index], outcome.results):
                report.results.append(CheckResult(
                    condition=cond, cases=result.cases,
                    counterexamples=list(result.counterexamples),
                    elapsed=result.elapsed, cached=outcome.cached))
            report.task_timings.append(_timing(plan, index, outcome))
        report.elapsed = math.fsum(t.elapsed for t in report.task_timings)
        reports[name] = report
    return reports


def run_stability_compilation(scope: Scope | None = None,
                              names: Sequence[str] | None = None,
                              registry=None, jobs: int | None = None,
                              cache=False, prover: bool = False,
                              abduce: bool = False):
    """Compile drift-stability verdicts as a sharded task graph.

    Returns ``{structure name: StabilityReport}``.  Verdicts for
    arg/result-only conditions are assembled parent-side (they need no
    computation); only drift-fragile condition groups become tasks, so
    the plan parallelizes and caches exactly the expensive part.

    With ``prover=True`` a second, independently cached task kind
    (``SYMBOLIC_STABILITY``) discharges each group's candidate
    obligations through :mod:`repro.prover`; proofs are folded into the
    bounded verdicts parent-side
    (:func:`repro.stability.compiler.merge_proofs`), arming proved
    state-reading candidates and promoting fully-proved pairs to the
    ``proved`` verdict.

    With ``abduce=True`` a third cached task kind (``ABDUCTION``) runs
    the CEGIS synthesis loop of :mod:`repro.abduction` per group;
    syntheses merge parent-side after the proofs
    (:func:`repro.stability.compiler.merge_synthesis`), appending
    armed abduced candidates and promoting pairs that gained one to
    the ``synthesized`` tier.
    """
    from ..commutativity.conditions import Kind
    from ..stability.compiler import (merge_proofs, merge_synthesis,
                                      pair_from_payload)
    from ..stability.quantified import PairStability
    from ..stability.report import StabilityReport
    registry = _resolve(registry)
    scope = scope or Scope()
    if names is None:
        names = tuple(name for name in registry.names()
                      if registry.has_conditions(name))
    names = tuple(dict.fromkeys(names))
    planner = TaskPlanner(registry)
    plan = planner.plan_stability(names, scope)
    outcomes = _execute_plan(plan, registry, jobs, cache)
    proof_plan = proof_outcomes = None
    if prover:
        from ..prover.backend import proof_from_payload
        proof_plan = planner.plan_symbolic_stability(names, scope)
        proof_outcomes = _execute_plan(proof_plan, registry, jobs, cache)
    synth_plan = synth_outcomes = None
    if abduce:
        synth_plan = planner.plan_abduction(names, scope)
        synth_outcomes = _execute_plan(synth_plan, registry, jobs, cache)
    reports: dict[str, "StabilityReport"] = {}
    for name in names:
        report = StabilityReport(name=name,
                                 family=registry.family_of(name))
        compiled: dict[tuple[str, str], PairStability] = {}
        for index in plan.structure_tasks[name]:
            outcome = outcomes[index]
            for cond, result in zip(plan.payloads[index],
                                    outcome.results):
                compiled[(cond.m1, cond.m2)] = pair_from_payload(
                    result.payload, elapsed=result.elapsed)
            report.task_timings.append(_timing(plan, index, outcome))
        if prover:
            for index in proof_plan.structure_tasks[name]:
                outcome = proof_outcomes[index]
                for cond, result in zip(proof_plan.payloads[index],
                                        outcome.results):
                    pair = (cond.m1, cond.m2)
                    compiled[pair] = merge_proofs(
                        compiled[pair],
                        proof_from_payload(result.payload,
                                           elapsed=result.elapsed))
                report.task_timings.append(
                    _timing(proof_plan, index, outcome))
        if abduce:
            from ..abduction.loop import synthesis_from_payload
            for index in synth_plan.structure_tasks[name]:
                outcome = synth_outcomes[index]
                for cond, result in zip(synth_plan.payloads[index],
                                        outcome.results):
                    pair = (cond.m1, cond.m2)
                    compiled[pair] = merge_synthesis(
                        compiled[pair],
                        synthesis_from_payload(result.payload,
                                               elapsed=result.elapsed))
                report.task_timings.append(
                    _timing(synth_plan, index, outcome))
        # Report entries follow catalog order, fragile or not.
        for cond in registry.conditions(name):
            if cond.kind is not Kind.BETWEEN:
                continue
            if cond.drift_fragile:
                report.pairs.append(compiled[(cond.m1, cond.m2)])
            else:
                report.pairs.append(PairStability(
                    m1=cond.m1, m2=cond.m2, verdict="stable"))
        report.elapsed = math.fsum(t.elapsed
                                   for t in report.task_timings)
        reports[name] = report
    return reports


def run_inverse_verification(scope: Scope | None = None,
                             names: Sequence[str] | None = None,
                             registry=None, jobs: int | None = None,
                             cache=False) -> list[InverseCheckResult]:
    """Check Property 3 for registered inverses as a sharded task graph."""
    registry = _resolve(registry)
    scope = scope or Scope()
    if names is None:
        names = registry.families()
    names = tuple(dict.fromkeys(names))
    planner = TaskPlanner(registry)
    plan = planner.plan_inverses(names, scope)
    outcomes = _execute_plan(plan, registry, jobs, cache)
    results: list[InverseCheckResult] = []
    for name in names:
        for index in plan.structure_tasks[name]:
            outcome = outcomes[index]
            (obligation,) = outcome.results
            results.append(InverseCheckResult(
                inverse=plan.payloads[index], cases=obligation.cases,
                counterexamples=list(obligation.counterexamples),
                elapsed=obligation.elapsed, cached=outcome.cached))
    return results
