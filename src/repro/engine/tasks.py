"""Picklable verification tasks and their worker-side execution.

A :class:`VerifyTask` carries only plain data — names, a
:class:`~repro.eval.enumeration.Scope` (a frozen dataclass of tuples),
and a content-address key — never a spec, condition, or registry, whose
executable semantics (closures, lambdas) do not survive pickling.  The
worker re-resolves names against a registry on its side of the process
boundary and returns an equally plain :class:`TaskOutcome`; the parent
reattaches conditions and inverse specs when assembling reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..eval.enumeration import Scope

#: Task kinds.
COMMUTATIVITY = "commutativity"
INVERSE = "inverse"
STABILITY = "stability"
SYMBOLIC_STABILITY = "symbolic_stability"
ABDUCTION = "abduction"

#: Verification backends for commutativity tasks.
BACKENDS = ("bounded", "symbolic")

#: Registry used by pool workers (fork-inherited); ``None`` means the
#: package default.  See :class:`~repro.engine.runner.ParallelRunner`.
_WORKER_REGISTRY = None


def set_worker_registry(registry) -> None:
    global _WORKER_REGISTRY
    _WORKER_REGISTRY = registry


@dataclass(frozen=True)
class VerifyTask:
    """One independent proof obligation shard.

    Commutativity tasks cover every condition of one operation pair
    (before/between/after share case enumeration, tripling throughput);
    inverse tasks cover one Property-3 obligation.
    """

    index: int
    kind: str
    structure: str
    backend: str
    scope: Scope
    #: Commutativity: the ``(m1, m2)`` operation pair.
    pair: tuple[str, str] | None = None
    #: Inverse: position within the family's inverse catalog, plus the
    #: operation name for display.
    inverse_index: int | None = None
    inverse_op: str | None = None
    #: Stability: the first operation of the compiled condition group
    #: (one task covers every fragile pair sharing it).
    group: str | None = None
    use_dynamic: bool = False
    #: Content-address of the obligation (see :mod:`.fingerprint`).
    key: str = ""

    @property
    def label(self) -> str:
        if self.kind == COMMUTATIVITY:
            return f"{self.structure} {self.pair[0]};{self.pair[1]}"
        if self.kind == STABILITY:
            return f"{self.structure} {self.group};* stability"
        if self.kind == SYMBOLIC_STABILITY:
            return f"{self.structure} {self.group};* prover"
        if self.kind == ABDUCTION:
            return f"{self.structure} {self.group};* abduce"
        return f"{self.structure} {self.inverse_op}^-1"


@dataclass(frozen=True)
class ObligationOutcome:
    """Per-condition (or per-inverse) result, stripped to picklable data."""

    cases: int
    elapsed: float
    counterexamples: tuple = ()
    #: Kind-specific plain data (stability: the compiled verdict, see
    #: :func:`repro.stability.compiler.pair_payload`).  JSON-shaped so
    #: the result cache can persist it verbatim.
    payload: Any = None

    @property
    def verified(self) -> bool:
        return not self.counterexamples


@dataclass(frozen=True)
class TaskOutcome:
    """What a worker (or the cache) returns for one task."""

    index: int
    #: Shared enumeration wall time of the task (not the per-condition sum).
    elapsed: float
    results: tuple[ObligationOutcome, ...]
    cached: bool = False

    @property
    def verified(self) -> bool:
        return all(r.verified for r in self.results)


@dataclass(frozen=True)
class TaskTiming:
    """One row of a report's per-task timing breakdown."""

    label: str
    kind: str
    backend: str
    elapsed: float
    cached: bool
    key: str


def _resolve(registry):
    from ..api import resolve_registry
    return resolve_registry(registry if registry is not None
                            else _WORKER_REGISTRY)


def execute_task(task: VerifyTask, registry=None) -> TaskOutcome:
    """Run one task against a registry (the worker entry point)."""
    registry = _resolve(registry)
    if task.kind == COMMUTATIVITY:
        return _execute_commutativity(task, registry)
    if task.kind == INVERSE:
        return _execute_inverse(task, registry)
    if task.kind == STABILITY:
        return _execute_stability(task, registry)
    if task.kind == SYMBOLIC_STABILITY:
        return _execute_symbolic_stability(task, registry)
    if task.kind == ABDUCTION:
        return _execute_abduction(task, registry)
    raise ValueError(f"unknown task kind {task.kind!r}")


def _execute_commutativity(task: VerifyTask, registry) -> TaskOutcome:
    spec = registry.spec(task.structure)
    conditions = [c for c in registry.conditions(task.structure)
                  if (c.m1, c.m2) == task.pair]
    if not conditions:
        raise ValueError(f"no conditions for pair {task.pair!r} "
                         f"of {task.structure!r}")
    if task.backend == "bounded":
        from ..commutativity.bounded import check_conditions
        results = check_conditions(spec, conditions, task.scope,
                                   use_dynamic=task.use_dynamic)
    elif task.backend == "symbolic":
        from ..solver.engine import check_conditions_symbolic
        results = check_conditions_symbolic(spec, conditions, task.scope)
    else:
        raise ValueError(f"unknown backend {task.backend!r}")
    return TaskOutcome(
        index=task.index, elapsed=results[0].elapsed,
        results=tuple(ObligationOutcome(r.cases, r.elapsed,
                                        tuple(r.counterexamples))
                      for r in results))


def _execute_stability(task: VerifyTask, registry) -> TaskOutcome:
    """Compile the drift-stability verdicts of one condition group."""
    from ..commutativity.conditions import Kind
    from ..stability.compiler import compile_group, pair_payload
    spec = registry.spec(task.structure)
    conditions = [c for c in registry.conditions(task.structure)
                  if c.kind is Kind.BETWEEN and c.m1 == task.group
                  and c.drift_fragile]
    if not conditions:
        raise ValueError(f"no fragile between conditions in group "
                         f"{task.group!r} of {task.structure!r}")
    pairs = compile_group(spec, conditions, task.scope,
                          registry.has_shard_router(task.structure))
    return TaskOutcome(
        index=task.index,
        elapsed=sum(pair.elapsed for pair in pairs),
        results=tuple(ObligationOutcome(cases=pair.cases,
                                        elapsed=pair.elapsed,
                                        payload=pair_payload(pair))
                      for pair in pairs))


def _execute_symbolic_stability(task: VerifyTask, registry) -> TaskOutcome:
    """Discharge the symbolic proof obligations of one condition group
    (``--prover`` runs; same grouping as the bounded stability task)."""
    from ..commutativity.conditions import Kind
    from ..prover.backend import discharge_pair, proof_payload
    from ..stability.compiler import candidate_texts
    spec = registry.spec(task.structure)
    conditions = [c for c in registry.conditions(task.structure)
                  if c.kind is Kind.BETWEEN and c.m1 == task.group
                  and c.drift_fragile]
    if not conditions:
        raise ValueError(f"no fragile between conditions in group "
                         f"{task.group!r} of {task.structure!r}")
    has_router = registry.has_shard_router(task.structure)
    proofs = [discharge_pair(spec, cond,
                             candidate_texts(cond, has_router),
                             task.scope)
              for cond in conditions]
    return TaskOutcome(
        index=task.index,
        elapsed=sum(proof.elapsed for proof in proofs),
        results=tuple(ObligationOutcome(cases=proof.cases,
                                        elapsed=proof.elapsed,
                                        payload=proof_payload(proof))
                      for proof in proofs))


def _execute_abduction(task: VerifyTask, registry) -> TaskOutcome:
    """Run the CEGIS synthesis loop for one condition group
    (``--abduce`` runs; same grouping as the bounded stability task)."""
    from ..abduction.loop import synthesis_payload, synthesize_pair
    from ..commutativity.conditions import Kind
    spec = registry.spec(task.structure)
    conditions = [c for c in registry.conditions(task.structure)
                  if c.kind is Kind.BETWEEN and c.m1 == task.group
                  and c.drift_fragile]
    if not conditions:
        raise ValueError(f"no fragile between conditions in group "
                         f"{task.group!r} of {task.structure!r}")
    syntheses = [synthesize_pair(spec, cond, task.scope)
                 for cond in conditions]
    return TaskOutcome(
        index=task.index,
        elapsed=sum(synth.elapsed for synth in syntheses),
        results=tuple(ObligationOutcome(cases=synth.cases,
                                        elapsed=synth.elapsed,
                                        payload=synthesis_payload(synth))
                      for synth in syntheses))


def _execute_inverse(task: VerifyTask, registry) -> TaskOutcome:
    from ..inverses.verifier import check_inverse
    inverse = registry.inverses(task.structure)[task.inverse_index]
    result = check_inverse(task.structure, inverse, task.scope,
                           registry=registry)
    outcome = ObligationOutcome(result.cases, result.elapsed,
                                tuple(result.counterexamples))
    return TaskOutcome(index=task.index, elapsed=result.elapsed,
                       results=(outcome,))
