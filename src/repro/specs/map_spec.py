"""Specification of the map interface shared by AssociationList and
HashTable.

Abstract state: ``contents`` (a partial map from keys to values) and
``size``.  Operations per Chapter 5: ``containsKey``, ``get``, ``put``,
``remove``, ``size``; ``put`` and ``remove`` have return-value and
discard variants (``put_``, ``remove_``), giving 7 operations and
3 * 7^2 = 147 commutativity conditions per data structure.

``get``/``put``/``remove`` return ``null`` when the key is unmapped;
values are non-null by precondition, so ``null`` unambiguously means
"absent", which is exactly the property the inverse operation for ``put``
relies on (Figure 2-4).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..eval.enumeration import Scope, partial_maps
from ..eval.values import FMap, Record
from ..logic.sorts import Sort
from .interface import (DataStructureSpec, Operation, Param, parse_post,
                        parse_pre)

STATE_FIELDS = {"contents": Sort.MAP, "size": Sort.INT}
PRINCIPAL = "contents"
_OBSERVERS = {
    "containsKey": ((Sort.OBJ,), Sort.BOOL),
    "get": ((Sort.OBJ,), Sort.OBJ),
    "size": ((), Sort.INT),
}


def _contains_key(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (k,) = args
    return state, k in state["contents"]


def _get(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (k,) = args
    return state, state["contents"].lookup(k)


def _put(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    k, v = args
    contents: FMap = state["contents"]
    previous = contents.lookup(k)
    new_size = state["size"] + (0 if k in contents else 1)
    return state.replace(contents=contents.put(k, v), size=new_size), previous


def _put_discard(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    new_state, _ = _put(state, args)
    return new_state, None


def _remove(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (k,) = args
    contents: FMap = state["contents"]
    previous = contents.lookup(k)
    new_size = state["size"] - (1 if k in contents else 0)
    return state.replace(contents=contents.remove(k), size=new_size), previous


def _remove_discard(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    new_state, _ = _remove(state, args)
    return new_state, None


def _size(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["size"]


def _pre(text: str, params: tuple[Param, ...]):
    return parse_pre(text, STATE_FIELDS, params, _OBSERVERS, PRINCIPAL)


def _post(text: str, params: tuple[Param, ...], result: Sort | None):
    return parse_post(text, STATE_FIELDS, params, result, _OBSERVERS,
                      PRINCIPAL)


def _states(scope: Scope) -> Iterator[Record]:
    for contents in partial_maps(scope.objects, scope.values):
        yield Record(contents=contents, size=len(contents))


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    if op.name in ("put", "put_"):
        for k in scope.objects:
            for v in scope.values:
                yield (k, v)
    elif op.params:
        for k in scope.objects:
            yield (k,)
    else:
        yield ()


_K = (Param("k", Sort.OBJ),)
_KV = (Param("k", Sort.OBJ), Param("v", Sort.OBJ))

_PUT_POST = (
    "lookup(contents, k) = v & result = lookup(old_contents, k) & "
    "(haskey(old_contents, k) --> size = old_size) & "
    "(~haskey(old_contents, k) --> size = old_size + 1) & "
    "contents = mput(old_contents, k, v)"
)
_REMOVE_POST = (
    "result = lookup(old_contents, k) & contents = mdel(old_contents, k) & "
    "(haskey(old_contents, k) --> size = old_size - 1) & "
    "(~haskey(old_contents, k) --> size = old_size)"
)


def make_spec(name: str = "Map") -> DataStructureSpec:
    """Build the map specification (shared by AssociationList/HashTable)."""
    operations = {
        "containsKey": Operation(
            name="containsKey", params=_K, result_sort=Sort.BOOL,
            precondition=_pre("k ~= null", _K),
            semantics=_contains_key, mutator=False,
            postcondition=_post(
                "contents = old_contents & size = old_size & "
                "(result <-> haskey(old_contents, k))", _K, Sort.BOOL),
        ),
        "get": Operation(
            name="get", params=_K, result_sort=Sort.OBJ,
            precondition=_pre("k ~= null", _K),
            semantics=_get, mutator=False,
            postcondition=_post(
                "contents = old_contents & size = old_size & "
                "result = lookup(old_contents, k)", _K, Sort.OBJ),
        ),
        "put": Operation(
            name="put", params=_KV, result_sort=Sort.OBJ,
            precondition=_pre("k ~= null & v ~= null", _KV),
            semantics=_put, mutator=True,
            postcondition=_post(_PUT_POST, _KV, Sort.OBJ),
        ),
        "put_": Operation(
            name="put_", params=_KV, result_sort=None,
            precondition=_pre("k ~= null & v ~= null", _KV),
            semantics=_put_discard, mutator=True,
            base_name="put",
        ),
        "remove": Operation(
            name="remove", params=_K, result_sort=Sort.OBJ,
            precondition=_pre("k ~= null", _K),
            semantics=_remove, mutator=True,
            postcondition=_post(_REMOVE_POST, _K, Sort.OBJ),
        ),
        "remove_": Operation(
            name="remove_", params=_K, result_sort=None,
            precondition=_pre("k ~= null", _K),
            semantics=_remove_discard, mutator=True,
            base_name="remove",
        ),
        "size": Operation(
            name="size", params=(), result_sort=Sort.INT,
            precondition=_pre("true", ()),
            semantics=_size, mutator=False,
            postcondition=_post(
                "contents = old_contents & size = old_size & "
                "result = old_size", (), Sort.INT),
        ),
    }
    return DataStructureSpec(
        name=name,
        state_fields=dict(STATE_FIELDS),
        principal_field=PRINCIPAL,
        operations=operations,
        initial_state=Record(contents=FMap(), size=0),
        invariant=lambda state: state["size"] == len(state["contents"]),
        states=_states,
        arguments=_arguments,
    )
