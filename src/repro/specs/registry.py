"""Back-compat spec resolution over :data:`repro.api.DEFAULT_REGISTRY`.

ListSet/HashSet share the set specification and AssociationList/HashTable
share the map specification (Chapter 5: "Because they implement the same
specification, they have the same commutativity conditions and inverse
operations").

The name -> spec mapping itself now lives in the pluggable registry
(:mod:`repro.api`); this module keeps the historical entry points and the
paper's family tables for callers that predate the registry.
"""

from __future__ import annotations

from .interface import DataStructureSpec

#: Data structure name -> specification family name (the paper's six).
SPEC_FAMILIES = {
    "Accumulator": "Accumulator",
    "ListSet": "Set",
    "HashSet": "Set",
    "AssociationList": "Map",
    "HashTable": "Map",
    "ArrayList": "ArrayList",
}

#: All specification family names, in the paper's presentation order.
FAMILY_NAMES = ("Accumulator", "Set", "Map", "ArrayList")


def get_spec(family: str) -> DataStructureSpec:
    """The (cached) specification for a family or data structure name."""
    from ..api import DEFAULT_REGISTRY
    return DEFAULT_REGISTRY.spec(family)


def all_specs() -> dict[str, DataStructureSpec]:
    """All four built-in specification families."""
    return {name: get_spec(name) for name in FAMILY_NAMES}
