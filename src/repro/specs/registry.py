"""Registry of the paper's data-structure specifications.

ListSet/HashSet share the set specification and AssociationList/HashTable
share the map specification (Chapter 5: "Because they implement the same
specification, they have the same commutativity conditions and inverse
operations").
"""

from __future__ import annotations

from functools import lru_cache

from . import accumulator, arraylist_spec, map_spec, set_spec
from .interface import DataStructureSpec

#: Data structure name -> specification family name.
SPEC_FAMILIES = {
    "Accumulator": "Accumulator",
    "ListSet": "Set",
    "HashSet": "Set",
    "AssociationList": "Map",
    "HashTable": "Map",
    "ArrayList": "ArrayList",
}

#: All specification family names, in the paper's presentation order.
FAMILY_NAMES = ("Accumulator", "Set", "Map", "ArrayList")


def get_spec(family: str) -> DataStructureSpec:
    """The (cached) specification for a family or data structure name."""
    return _build_spec(SPEC_FAMILIES.get(family, family))


@lru_cache(maxsize=None)
def _build_spec(family: str) -> DataStructureSpec:
    if family == "Accumulator":
        return accumulator.make_spec()
    if family == "Set":
        return set_spec.make_spec()
    if family == "Map":
        return map_spec.make_spec()
    if family == "ArrayList":
        return arraylist_spec.make_spec()
    raise KeyError(f"unknown data structure or family: {family!r}")


def all_specs() -> dict[str, DataStructureSpec]:
    """All four specification families."""
    return {name: get_spec(name) for name in FAMILY_NAMES}
