"""Abstract data-structure specifications (the Jahob interfaces)."""

from .interface import (DataStructureSpec, Operation, Param,
                        PreconditionError, Semantics)
from .registry import SPEC_FAMILIES, FAMILY_NAMES, all_specs, get_spec

__all__ = [
    "DataStructureSpec", "Operation", "Param", "PreconditionError",
    "Semantics", "SPEC_FAMILIES", "FAMILY_NAMES", "all_specs", "get_spec",
]
