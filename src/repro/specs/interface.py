"""Abstract data-structure specifications.

A :class:`DataStructureSpec` is the Python analogue of a Jahob interface
(Figure 2-1): named abstract state fields, and operations with a
precondition formula, an executable abstract semantics, and a
postcondition formula relating old state, new state, and result.

The executable semantics is the ground truth used by the bounded
verification backend; the postcondition formulas are checked against the
semantics (and against the concrete linked implementations) by the test
suite, mirroring the paper's reliance on *verified* implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..eval.enumeration import Scope
from ..eval.values import Record
from ..logic import parse_formula
from ..logic.sorts import Sort
from ..logic.symbols import SymbolTable
from ..logic import terms as t

#: Executable abstract semantics: (state, args) -> (new_state, result).
Semantics = Callable[[Record, tuple[Any, ...]], tuple[Record, Any]]


class PreconditionError(ValueError):
    """Raised when an operation is applied outside its precondition."""


@dataclass(frozen=True)
class Param:
    name: str
    sort: Sort


@dataclass
class Operation:
    """One specified operation of a data structure."""

    name: str
    params: tuple[Param, ...]
    result_sort: Sort | None
    precondition: t.Term
    semantics: Semantics
    mutator: bool
    postcondition: t.Term | None = None
    #: The operation this one is the discard variant of (``add_`` -> ``add``).
    base_name: str | None = None

    @property
    def discards_result(self) -> bool:
        return self.base_name is not None

    @property
    def has_result(self) -> bool:
        return self.result_sort is not None


@dataclass
class DataStructureSpec:
    """A specified abstract data structure."""

    name: str
    state_fields: dict[str, Sort]
    principal_field: str
    operations: dict[str, Operation]
    initial_state: Record
    #: Representation invariant over the abstract state (e.g. ``size``
    #: equals the cardinality of ``contents``).
    invariant: Callable[[Record], bool]
    #: Enumerate all abstract states within a scope.
    states: Callable[[Scope], Iterator[Record]]
    #: Enumerate all argument tuples for an operation within a scope.
    arguments: Callable[[Operation, Scope], Iterator[tuple[Any, ...]]]

    # -- symbol tables -------------------------------------------------------

    def observer_signatures(self) -> dict[str, tuple[tuple[Sort, ...], Sort]]:
        """Signatures of the pure operations, usable as observers."""
        sigs: dict[str, tuple[tuple[Sort, ...], Sort]] = {}
        for op in self.operations.values():
            if not op.mutator and op.result_sort is not None:
                sigs[op.name] = (tuple(p.sort for p in op.params),
                                 op.result_sort)
        return sigs

    def symbols(self, extra_vars: dict[str, Sort] | None = None) -> SymbolTable:
        """A symbol table for parsing formulas against this spec."""
        return SymbolTable(
            vars=dict(extra_vars or {}),
            state_fields=dict(self.state_fields),
            observers=self.observer_signatures(),
            principal_field=self.principal_field,
        )

    # -- execution -----------------------------------------------------------

    def precondition_holds(self, op: Operation, state: Record,
                           args: tuple[Any, ...]) -> bool:
        """Evaluate ``op``'s precondition on ``state`` and ``args``."""
        from ..eval.interpreter import EvalContext, evaluate
        env: dict[str, Any] = {"s": state}
        for param, value in zip(op.params, args):
            env[param.name] = value
        return bool(evaluate(op.precondition, env,
                             EvalContext(observe=self.observe)))

    def execute(self, op: Operation, state: Record,
                args: tuple[Any, ...]) -> tuple[Record, Any]:
        """Run ``op``; raises :class:`PreconditionError` outside its pre."""
        if not self.precondition_holds(op, state, args):
            raise PreconditionError(
                f"{self.name}.{op.name}{args!r} precondition violated")
        new_state, result = op.semantics(state, args)
        return new_state, result

    def observe(self, state: Record, method: str,
                args: tuple[Any, ...]) -> Any:
        """Dispatch a pure observer call (used by the interpreter)."""
        op = self.operations[method]
        if op.mutator:
            raise ValueError(f"{method} is a mutator, not an observer")
        _, result = op.semantics(state, args)
        return result


def parse_pre(text: str, state_fields: dict[str, Sort],
              params: tuple[Param, ...],
              observers: dict[str, tuple[tuple[Sort, ...], Sort]],
              principal_field: str) -> t.Term:
    """Parse a precondition over state var ``s`` and the parameters."""
    table = SymbolTable(
        vars={"s": Sort.STATE, **{p.name: p.sort for p in params}},
        state_fields=state_fields,
        observers=observers,
        principal_field=principal_field,
    )
    return parse_formula(text, table)


def parse_post(text: str, state_fields: dict[str, Sort],
               params: tuple[Param, ...], result_sort: Sort | None,
               observers: dict[str, tuple[tuple[Sort, ...], Sort]],
               principal_field: str) -> t.Term:
    """Parse a postcondition.

    Vocabulary: ``old_<field>`` for the pre-state fields, ``<field>`` for
    the post-state fields, the parameters, and ``result``.
    """
    variables: dict[str, Sort] = {p.name: p.sort for p in params}
    for fname, fsort in state_fields.items():
        variables[fname] = fsort
        variables[f"old_{fname}"] = fsort
    if result_sort is not None:
        variables["result"] = result_sort
    table = SymbolTable(vars=variables, state_fields=state_fields,
                        observers=observers, principal_field=principal_field)
    return parse_formula(text, table)
