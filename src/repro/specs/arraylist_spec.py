"""Specification of the ArrayList (dense map from integers to objects).

Abstract state: ``elems`` (a sequence of objects) and ``size``.
Operations per Chapter 5: ``add_at``, ``get``, ``indexOf``,
``lastIndexOf``, ``remove_at``, ``set``, ``size``; ``remove_at`` and
``set`` have return-value and discard variants, giving 9 operations and
3 * 9^2 = 243 commutativity conditions.

``add_at(i, v)`` shifts all elements at indices >= i up one position;
``remove_at(i)`` shifts all elements above i down one position.  These
shifts are what make the ArrayList conditions (Tables 5.6/5.7) and their
verification (Section 5.2.1) substantially harder than the other data
structures.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..eval.enumeration import Scope, sequences
from ..eval.values import (Record, seq_index_of, seq_insert,
                           seq_last_index_of, seq_remove, seq_update)
from ..logic.sorts import Sort
from .interface import (DataStructureSpec, Operation, Param, parse_post,
                        parse_pre)

STATE_FIELDS = {"elems": Sort.SEQ, "size": Sort.INT}
PRINCIPAL = "elems"
_OBSERVERS = {
    "get": ((Sort.INT,), Sort.OBJ),
    "indexOf": ((Sort.OBJ,), Sort.INT),
    "lastIndexOf": ((Sort.OBJ,), Sort.INT),
    "size": ((), Sort.INT),
}


def _add_at(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    i, v = args
    return state.replace(elems=seq_insert(state["elems"], i, v),
                         size=state["size"] + 1), None


def _get(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (i,) = args
    return state, state["elems"][i]


def _index_of(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return state, seq_index_of(state["elems"], v)


def _last_index_of(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return state, seq_last_index_of(state["elems"], v)


def _remove_at(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (i,) = args
    removed = state["elems"][i]
    return state.replace(elems=seq_remove(state["elems"], i),
                         size=state["size"] - 1), removed


def _remove_at_discard(state: Record,
                       args: tuple[Any, ...]) -> tuple[Record, Any]:
    new_state, _ = _remove_at(state, args)
    return new_state, None


def _set(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    i, v = args
    replaced = state["elems"][i]
    return state.replace(elems=seq_update(state["elems"], i, v)), replaced


def _set_discard(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    new_state, _ = _set(state, args)
    return new_state, None


def _size(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["size"]


def _pre(text: str, params: tuple[Param, ...]):
    return parse_pre(text, STATE_FIELDS, params, _OBSERVERS, PRINCIPAL)


def _post(text: str, params: tuple[Param, ...], result: Sort | None):
    return parse_post(text, STATE_FIELDS, params, result, _OBSERVERS,
                      PRINCIPAL)


def _states(scope: Scope) -> Iterator[Record]:
    for elems in sequences(scope.objects, scope.max_seq_len):
        yield Record(elems=elems, size=len(elems))


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    indices = tuple(range(scope.max_seq_len + 1))
    if op.name == "add_at":
        for i in indices:
            for v in scope.objects:
                yield (i, v)
    elif op.name in ("set", "set_"):
        for i in indices[:-1]:
            for v in scope.objects:
                yield (i, v)
    elif op.name in ("get", "remove_at", "remove_at_"):
        for i in indices[:-1]:
            yield (i,)
    elif op.name in ("indexOf", "lastIndexOf"):
        for v in scope.objects:
            yield (v,)
    else:
        yield ()


_IV = (Param("i", Sort.INT), Param("v", Sort.OBJ))
_I = (Param("i", Sort.INT),)
_V = (Param("v", Sort.OBJ),)


def make_spec(name: str = "ArrayList") -> DataStructureSpec:
    """Build the ArrayList specification."""
    operations = {
        "add_at": Operation(
            name="add_at", params=_IV, result_sort=None,
            precondition=_pre("0 <= i & i <= s.size & v ~= null", _IV),
            semantics=_add_at, mutator=True,
            postcondition=_post(
                "elems = ins(old_elems, i, v) & size = old_size + 1",
                _IV, None),
        ),
        "get": Operation(
            name="get", params=_I, result_sort=Sort.OBJ,
            precondition=_pre("0 <= i & i < s.size", _I),
            semantics=_get, mutator=False,
            postcondition=_post(
                "elems = old_elems & size = old_size & "
                "result = at(old_elems, i)", _I, Sort.OBJ),
        ),
        "indexOf": Operation(
            name="indexOf", params=_V, result_sort=Sort.INT,
            precondition=_pre("v ~= null", _V),
            semantics=_index_of, mutator=False,
            postcondition=_post(
                "elems = old_elems & size = old_size & "
                "result = idx(old_elems, v)", _V, Sort.INT),
        ),
        "lastIndexOf": Operation(
            name="lastIndexOf", params=_V, result_sort=Sort.INT,
            precondition=_pre("v ~= null", _V),
            semantics=_last_index_of, mutator=False,
            postcondition=_post(
                "elems = old_elems & size = old_size & "
                "result = lidx(old_elems, v)", _V, Sort.INT),
        ),
        "remove_at": Operation(
            name="remove_at", params=_I, result_sort=Sort.OBJ,
            precondition=_pre("0 <= i & i < s.size", _I),
            semantics=_remove_at, mutator=True,
            postcondition=_post(
                "elems = del_(old_elems, i) & size = old_size - 1 & "
                "result = at(old_elems, i)", _I, Sort.OBJ),
        ),
        "remove_at_": Operation(
            name="remove_at_", params=_I, result_sort=None,
            precondition=_pre("0 <= i & i < s.size", _I),
            semantics=_remove_at_discard, mutator=True,
            base_name="remove_at",
        ),
        "set": Operation(
            name="set", params=_IV, result_sort=Sort.OBJ,
            precondition=_pre("0 <= i & i < s.size & v ~= null", _IV),
            semantics=_set, mutator=True,
            postcondition=_post(
                "elems = upd(old_elems, i, v) & size = old_size & "
                "result = at(old_elems, i)", _IV, Sort.OBJ),
        ),
        "set_": Operation(
            name="set_", params=_IV, result_sort=None,
            precondition=_pre("0 <= i & i < s.size & v ~= null", _IV),
            semantics=_set_discard, mutator=True,
            base_name="set",
        ),
        "size": Operation(
            name="size", params=(), result_sort=Sort.INT,
            precondition=_pre("true", ()),
            semantics=_size, mutator=False,
            postcondition=_post(
                "elems = old_elems & size = old_size & result = old_size",
                (), Sort.INT),
        ),
    }
    return DataStructureSpec(
        name=name,
        state_fields=dict(STATE_FIELDS),
        principal_field=PRINCIPAL,
        operations=operations,
        initial_state=Record(elems=(), size=0),
        invariant=lambda state: state["size"] == len(state["elems"]),
        states=_states,
        arguments=_arguments,
    )
