"""Specification of the Accumulator (Chapter 5).

The Accumulator maintains an integer counter with two operations:
``increase(v)`` adds ``v`` to the counter (void), and ``read()`` returns
the current value.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..eval.enumeration import Scope
from ..eval.values import Record
from ..logic.sorts import Sort
from .interface import (DataStructureSpec, Operation, Param, parse_post,
                        parse_pre)

STATE_FIELDS = {"value": Sort.INT}
_OBSERVERS = {"read": ((), Sort.INT)}


def _increase(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return state.replace(value=state["value"] + v), None


def _read(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["value"]


def _pre(text: str, params: tuple[Param, ...]):
    return parse_pre(text, STATE_FIELDS, params, _OBSERVERS, None)


def _post(text: str, params: tuple[Param, ...], result: Sort | None):
    return parse_post(text, STATE_FIELDS, params, result, _OBSERVERS, None)


def _states(scope: Scope) -> Iterator[Record]:
    for value in scope.ints:
        yield Record(value=value)


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    if op.name == "increase":
        for v in scope.ints:
            yield (v,)
    else:
        yield ()


def make_spec() -> DataStructureSpec:
    """Build the Accumulator specification."""
    increase_params = (Param("v", Sort.INT),)
    operations = {
        "increase": Operation(
            name="increase",
            params=increase_params,
            result_sort=None,
            precondition=_pre("true", increase_params),
            semantics=_increase,
            mutator=True,
            postcondition=_post("value = old_value + v",
                                increase_params, None),
        ),
        "read": Operation(
            name="read",
            params=(),
            result_sort=Sort.INT,
            precondition=_pre("true", ()),
            semantics=_read,
            mutator=False,
            postcondition=_post("value = old_value & result = old_value",
                                (), Sort.INT),
        ),
    }
    return DataStructureSpec(
        name="Accumulator",
        state_fields=dict(STATE_FIELDS),
        principal_field=None,
        operations=operations,
        initial_state=Record(value=0),
        invariant=lambda state: isinstance(state["value"], int),
        states=_states,
        arguments=_arguments,
    )
