"""Specification of the set interface shared by ListSet and HashSet.

This is Figure 2-1 of the paper: abstract state ``contents`` (a set of
objects) and ``size``; operations ``add``, ``contains``, ``remove``,
``size``.  Per Chapter 5, the update operations come in two variants —
one whose client records the return value (``add``, ``remove``) and one
whose client discards it (``add_``, ``remove_``) — giving six operations
and hence 3 * 6^2 = 108 commutativity conditions per data structure.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..eval.enumeration import Scope, subsets
from ..eval.values import Record
from ..logic.sorts import Sort
from .interface import (DataStructureSpec, Operation, Param, parse_post,
                        parse_pre)

STATE_FIELDS = {"contents": Sort.SET, "size": Sort.INT}
PRINCIPAL = "contents"
_OBSERVERS = {
    "contains": ((Sort.OBJ,), Sort.BOOL),
    "size": ((), Sort.INT),
}


def _add(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    contents = state["contents"]
    if v in contents:
        return state, False
    return state.replace(contents=contents | {v},
                         size=state["size"] + 1), True


def _add_discard(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    new_state, _ = _add(state, args)
    return new_state, None


def _contains(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return state, v in state["contents"]


def _remove(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    contents = state["contents"]
    if v not in contents:
        return state, False
    return state.replace(contents=contents - {v},
                         size=state["size"] - 1), True


def _remove_discard(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    new_state, _ = _remove(state, args)
    return new_state, None


def _size(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["size"]


def _pre(text: str, params: tuple[Param, ...]):
    return parse_pre(text, STATE_FIELDS, params, _OBSERVERS, PRINCIPAL)


def _post(text: str, params: tuple[Param, ...], result: Sort | None):
    return parse_post(text, STATE_FIELDS, params, result, _OBSERVERS,
                      PRINCIPAL)


def _states(scope: Scope) -> Iterator[Record]:
    for contents in subsets(scope.objects):
        yield Record(contents=contents, size=len(contents))


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    if op.params:
        for obj in scope.objects:
            yield (obj,)
    else:
        yield ()


_V = (Param("v", Sort.OBJ),)

_ADD_POST = (
    "(v ~: old_contents --> contents = old_contents Un {v} & "
    "size = old_size + 1 & result) & "
    "(v : old_contents --> contents = old_contents & "
    "size = old_size & ~result)"
)
_REMOVE_POST = (
    "(v : old_contents --> contents = old_contents - {v} & "
    "size = old_size - 1 & result) & "
    "(v ~: old_contents --> contents = old_contents & "
    "size = old_size & ~result)"
)


def make_spec(name: str = "Set") -> DataStructureSpec:
    """Build the set specification (shared by ListSet and HashSet)."""
    operations = {
        "add": Operation(
            name="add", params=_V, result_sort=Sort.BOOL,
            precondition=_pre("v ~= null", _V),
            semantics=_add, mutator=True,
            postcondition=_post(_ADD_POST, _V, Sort.BOOL),
        ),
        "add_": Operation(
            name="add_", params=_V, result_sort=None,
            precondition=_pre("v ~= null", _V),
            semantics=_add_discard, mutator=True,
            base_name="add",
        ),
        "contains": Operation(
            name="contains", params=_V, result_sort=Sort.BOOL,
            precondition=_pre("v ~= null", _V),
            semantics=_contains, mutator=False,
            postcondition=_post(
                "contents = old_contents & size = old_size & "
                "(result <-> v : old_contents)", _V, Sort.BOOL),
        ),
        "remove": Operation(
            name="remove", params=_V, result_sort=Sort.BOOL,
            precondition=_pre("v ~= null", _V),
            semantics=_remove, mutator=True,
            postcondition=_post(_REMOVE_POST, _V, Sort.BOOL),
        ),
        "remove_": Operation(
            name="remove_", params=_V, result_sort=None,
            precondition=_pre("v ~= null", _V),
            semantics=_remove_discard, mutator=True,
            base_name="remove",
        ),
        "size": Operation(
            name="size", params=(), result_sort=Sort.INT,
            precondition=_pre("true", ()),
            semantics=_size, mutator=False,
            postcondition=_post(
                "contents = old_contents & size = old_size & "
                "result = old_size", (), Sort.INT),
        ),
    }
    return DataStructureSpec(
        name=name,
        state_fields=dict(STATE_FIELDS),
        principal_field=PRINCIPAL,
        operations=operations,
        initial_state=Record(contents=frozenset(), size=0),
        invariant=lambda state: state["size"] == len(state["contents"]),
        states=_states,
        arguments=_arguments,
    )
