"""Free-variable computation, used to enforce the *kind* restrictions of
Section 4.1.2 (before conditions may reference only the arguments and the
initial abstract state, between conditions additionally the first return
value and intermediate state, after conditions anything)."""

from __future__ import annotations

from . import terms as t


def free_vars(term: t.Term) -> frozenset[str]:
    """Names of free variables in ``term``."""

    def go(node: t.Term, bound: frozenset[str]) -> frozenset[str]:
        if isinstance(node, t.Var):
            if node.name in bound:
                return frozenset()
            return frozenset({node.name})
        if isinstance(node, (t.Forall, t.Exists)):
            return go(node.body, bound | {node.var.name})
        result: frozenset[str] = frozenset()
        for child in node.children():
            result |= go(child, bound)
        return result

    return go(term, frozenset())
