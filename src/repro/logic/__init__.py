"""The Jahob-flavoured specification logic.

Public surface:

- :mod:`repro.logic.sorts` — the sort system.
- :mod:`repro.logic.terms` — the term/formula AST and smart constructors.
- :mod:`repro.logic.parser` — :func:`parse_formula` / :func:`parse_term`.
- :mod:`repro.logic.printer` — :func:`pretty`.
- :mod:`repro.logic.substitution` — :func:`substitute`, :func:`transform`.
- :mod:`repro.logic.simplify` — :func:`nnf`, :func:`simplify`.
- :mod:`repro.logic.free_vars` — :func:`free_vars`.
"""

from .sorts import Sort, SortError
from .symbols import SymbolTable, BUILTIN_FUNCTIONS
from .parser import ParseError, parse_formula, parse_term
from .printer import pretty
from .substitution import substitute, transform
from .simplify import nnf, simplify
from .free_vars import free_vars
from . import terms

__all__ = [
    "Sort", "SortError", "SymbolTable", "BUILTIN_FUNCTIONS",
    "ParseError", "parse_formula", "parse_term", "pretty",
    "substitute", "transform", "nnf", "simplify", "free_vars", "terms",
]
