"""Lexer for the Jahob-flavoured specification syntax.

The surface syntax follows the paper's figures and tables: ``&``, ``|``,
``-->``, ``<->``, ``~`` (negation), ``~=`` (disequality), ``:`` and ``~:``
(set membership), ``ALL``/``EX`` quantifiers, ``s1.contents`` field access,
``s1.contains(v1)`` observer calls, and ``s2[i]`` sequence indexing.
"""

from __future__ import annotations

from dataclasses import dataclass


class LexError(ValueError):
    """Raised on an unrecognized character."""


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: int


_SYMBOLS = [
    # Longest-match first.
    ("-->", "ARROW"),
    ("<->", "IFF"),
    ("~=", "NEQ"),
    ("~:", "NOTIN"),
    ("<=", "LE"),
    (">=", "GE"),
    ("::", "DCOLON"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("[", "LBRACK"),
    ("]", "RBRACK"),
    ("{", "LBRACE"),
    ("}", "RBRACE"),
    (",", "COMMA"),
    (".", "DOT"),
    ("|", "OR"),
    ("&", "AND"),
    ("~", "NOT"),
    ("=", "EQ"),
    ("<", "LT"),
    (">", "GT"),
    ("+", "PLUS"),
    ("-", "MINUS"),
    (":", "IN"),
]

_KEYWORDS = {
    "true": "TRUE",
    "false": "FALSE",
    "null": "NULL",
    "ALL": "ALL",
    "EX": "EX",
    "Un": "UN",
}


def tokenize(text: str) -> list[Token]:
    """Convert ``text`` into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("INT", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            tokens.append(Token(_KEYWORDS.get(word, "IDENT"), word, i))
            i = j
            continue
        for sym, kind in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(kind, sym, i))
                i += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
