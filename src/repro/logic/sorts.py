"""Sort (type) system for the Jahob-flavoured specification language.

The paper's specifications are written in Jahob's higher-order logic; the
fragment actually used by the commutativity conditions and testing methods
(Chapter 4) is first-order and uses booleans, integers, object references,
sets of objects, partial maps from objects to objects, and sequences of
objects.  ``STATE`` is the sort of an entire abstract data-structure state
(a record of the other sorts), mirroring ``sa..contents``-style field
access in the paper's figures.
"""

from __future__ import annotations

import enum


class Sort(enum.Enum):
    """The sorts of the specification logic."""

    BOOL = "bool"
    INT = "int"
    OBJ = "obj"
    SET = "obj set"
    MAP = "obj => obj"
    SEQ = "obj seq"
    STATE = "state"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class SortError(TypeError):
    """Raised when a term is built or parsed with inconsistent sorts."""


def require(actual: Sort, expected: Sort, context: str) -> None:
    """Raise :class:`SortError` unless ``actual`` is ``expected``."""
    if actual is not expected:
        raise SortError(f"{context}: expected {expected}, got {actual}")
