"""Term and formula AST for the specification logic.

Every node is an immutable dataclass.  Formulas are simply terms of sort
``BOOL``.  The node set covers the first-order fragment used by the paper's
commutativity conditions and testing methods (Chapter 4): boolean
connectives, equality, linear integer arithmetic, finite sets, partial maps,
sequences, field access on abstract states, semantic observer calls
(``s1.contains(v1)`` in the dynamically-checkable conditions of Tables
5.1-5.7), and quantifiers over integers or objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .sorts import Sort, SortError, require

__all__ = [
    "Term", "Var", "BoolConst", "IntConst", "ObjConst", "Null",
    "Not", "And", "Or", "Implies", "Iff", "Ite",
    "Eq", "Lt", "Le",
    "Add", "Sub", "Neg",
    "Member", "Union", "Inter", "Diff", "FiniteSet", "Card", "SubsetEq",
    "MapGet", "MapHasKey", "MapPut", "MapRemoveKey", "MapSize", "MapKeys",
    "SeqLen", "SeqGet", "SeqInsert", "SeqRemove", "SeqUpdate",
    "SeqIndexOf", "SeqLastIndexOf", "SeqContains",
    "Field", "ObserverCall",
    "Forall", "Exists",
    "TRUE", "FALSE", "NULL",
    "conj", "disj", "neg", "implies", "eq", "ne",
]


@dataclass(frozen=True)
class Term:
    """Base class of all AST nodes."""

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    def children(self) -> tuple["Term", ...]:
        return ()

    def walk(self) -> Iterator["Term"]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Var(Term):
    """A variable with an explicit sort (resolved at parse time)."""

    name: str
    var_sort: Sort

    @property
    def sort(self) -> Sort:
        return self.var_sort


@dataclass(frozen=True)
class BoolConst(Term):
    value: bool

    @property
    def sort(self) -> Sort:
        return Sort.BOOL


@dataclass(frozen=True)
class IntConst(Term):
    value: int

    @property
    def sort(self) -> Sort:
        return Sort.INT


@dataclass(frozen=True)
class ObjConst(Term):
    """A named object constant; distinct names denote distinct objects."""

    name: str

    @property
    def sort(self) -> Sort:
        return Sort.OBJ


@dataclass(frozen=True)
class Null(Term):
    """The ``null`` reference."""

    @property
    def sort(self) -> Sort:
        return Sort.OBJ


TRUE = BoolConst(True)
FALSE = BoolConst(False)
NULL = Null()


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------

def _require_bool(args: tuple[Term, ...], who: str) -> None:
    for a in args:
        require(a.sort, Sort.BOOL, who)


@dataclass(frozen=True)
class Not(Term):
    arg: Term

    def __post_init__(self) -> None:
        _require_bool((self.arg,), "Not")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.arg,)


@dataclass(frozen=True)
class And(Term):
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        _require_bool(self.args, "And")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return self.args


@dataclass(frozen=True)
class Or(Term):
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        _require_bool(self.args, "Or")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return self.args


@dataclass(frozen=True)
class Implies(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        _require_bool((self.lhs, self.rhs), "Implies")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Iff(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        _require_bool((self.lhs, self.rhs), "Iff")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Ite(Term):
    """If-then-else over terms of any (matching) sort."""

    cond: Term
    then: Term
    els: Term

    def __post_init__(self) -> None:
        require(self.cond.sort, Sort.BOOL, "Ite condition")
        if self.then.sort is not self.els.sort:
            raise SortError(
                f"Ite branches disagree: {self.then.sort} vs {self.els.sort}")

    @property
    def sort(self) -> Sort:
        return self.then.sort

    def children(self) -> tuple[Term, ...]:
        return (self.cond, self.then, self.els)


# ---------------------------------------------------------------------------
# Equality and integer comparisons
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Eq(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        if self.lhs.sort is not self.rhs.sort:
            raise SortError(
                f"Eq operands disagree: {self.lhs.sort} vs {self.rhs.sort}")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Lt(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        require(self.lhs.sort, Sort.INT, "Lt lhs")
        require(self.rhs.sort, Sort.INT, "Lt rhs")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Le(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        require(self.lhs.sort, Sort.INT, "Le lhs")
        require(self.rhs.sort, Sort.INT, "Le rhs")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


# ---------------------------------------------------------------------------
# Integer arithmetic
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Add(Term):
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        for a in self.args:
            require(a.sort, Sort.INT, "Add")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return self.args


@dataclass(frozen=True)
class Sub(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        require(self.lhs.sort, Sort.INT, "Sub lhs")
        require(self.rhs.sort, Sort.INT, "Sub rhs")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Neg(Term):
    arg: Term

    def __post_init__(self) -> None:
        require(self.arg.sort, Sort.INT, "Neg")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return (self.arg,)


# ---------------------------------------------------------------------------
# Finite sets of objects
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Member(Term):
    elem: Term
    set_: Term

    def __post_init__(self) -> None:
        require(self.elem.sort, Sort.OBJ, "Member elem")
        require(self.set_.sort, Sort.SET, "Member set")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.elem, self.set_)


@dataclass(frozen=True)
class Union(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        require(self.lhs.sort, Sort.SET, "Union lhs")
        require(self.rhs.sort, Sort.SET, "Union rhs")

    @property
    def sort(self) -> Sort:
        return Sort.SET

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Inter(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        require(self.lhs.sort, Sort.SET, "Inter lhs")
        require(self.rhs.sort, Sort.SET, "Inter rhs")

    @property
    def sort(self) -> Sort:
        return Sort.SET

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class Diff(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        require(self.lhs.sort, Sort.SET, "Diff lhs")
        require(self.rhs.sort, Sort.SET, "Diff rhs")

    @property
    def sort(self) -> Sort:
        return Sort.SET

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class FiniteSet(Term):
    """A set literal ``{e1, ..., en}`` (possibly empty)."""

    elems: tuple[Term, ...] = field(default=())

    def __post_init__(self) -> None:
        for e in self.elems:
            require(e.sort, Sort.OBJ, "FiniteSet element")

    @property
    def sort(self) -> Sort:
        return Sort.SET

    def children(self) -> tuple[Term, ...]:
        return self.elems


@dataclass(frozen=True)
class Card(Term):
    set_: Term

    def __post_init__(self) -> None:
        require(self.set_.sort, Sort.SET, "Card")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return (self.set_,)


@dataclass(frozen=True)
class SubsetEq(Term):
    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        require(self.lhs.sort, Sort.SET, "SubsetEq lhs")
        require(self.rhs.sort, Sort.SET, "SubsetEq rhs")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.lhs, self.rhs)


# ---------------------------------------------------------------------------
# Partial maps from objects to objects
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MapGet(Term):
    """``m[k]``; evaluates to ``null`` when ``k`` is not mapped."""

    map_: Term
    key: Term

    def __post_init__(self) -> None:
        require(self.map_.sort, Sort.MAP, "MapGet map")
        require(self.key.sort, Sort.OBJ, "MapGet key")

    @property
    def sort(self) -> Sort:
        return Sort.OBJ

    def children(self) -> tuple[Term, ...]:
        return (self.map_, self.key)


@dataclass(frozen=True)
class MapHasKey(Term):
    map_: Term
    key: Term

    def __post_init__(self) -> None:
        require(self.map_.sort, Sort.MAP, "MapHasKey map")
        require(self.key.sort, Sort.OBJ, "MapHasKey key")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.map_, self.key)


@dataclass(frozen=True)
class MapPut(Term):
    map_: Term
    key: Term
    value: Term

    def __post_init__(self) -> None:
        require(self.map_.sort, Sort.MAP, "MapPut map")
        require(self.key.sort, Sort.OBJ, "MapPut key")
        require(self.value.sort, Sort.OBJ, "MapPut value")

    @property
    def sort(self) -> Sort:
        return Sort.MAP

    def children(self) -> tuple[Term, ...]:
        return (self.map_, self.key, self.value)


@dataclass(frozen=True)
class MapRemoveKey(Term):
    map_: Term
    key: Term

    def __post_init__(self) -> None:
        require(self.map_.sort, Sort.MAP, "MapRemoveKey map")
        require(self.key.sort, Sort.OBJ, "MapRemoveKey key")

    @property
    def sort(self) -> Sort:
        return Sort.MAP

    def children(self) -> tuple[Term, ...]:
        return (self.map_, self.key)


@dataclass(frozen=True)
class MapSize(Term):
    map_: Term

    def __post_init__(self) -> None:
        require(self.map_.sort, Sort.MAP, "MapSize")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return (self.map_,)


@dataclass(frozen=True)
class MapKeys(Term):
    map_: Term

    def __post_init__(self) -> None:
        require(self.map_.sort, Sort.MAP, "MapKeys")

    @property
    def sort(self) -> Sort:
        return Sort.SET

    def children(self) -> tuple[Term, ...]:
        return (self.map_,)


# ---------------------------------------------------------------------------
# Sequences of objects (the ArrayList abstract state)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SeqLen(Term):
    seq: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqLen")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return (self.seq,)


@dataclass(frozen=True)
class SeqGet(Term):
    seq: Term
    index: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqGet seq")
        require(self.index.sort, Sort.INT, "SeqGet index")

    @property
    def sort(self) -> Sort:
        return Sort.OBJ

    def children(self) -> tuple[Term, ...]:
        return (self.seq, self.index)


@dataclass(frozen=True)
class SeqInsert(Term):
    """``ins(s, i, v)`` — the sequence after an ``add_at(i, v)``."""

    seq: Term
    index: Term
    value: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqInsert seq")
        require(self.index.sort, Sort.INT, "SeqInsert index")
        require(self.value.sort, Sort.OBJ, "SeqInsert value")

    @property
    def sort(self) -> Sort:
        return Sort.SEQ

    def children(self) -> tuple[Term, ...]:
        return (self.seq, self.index, self.value)


@dataclass(frozen=True)
class SeqRemove(Term):
    """``del(s, i)`` — the sequence after a ``remove_at(i)``."""

    seq: Term
    index: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqRemove seq")
        require(self.index.sort, Sort.INT, "SeqRemove index")

    @property
    def sort(self) -> Sort:
        return Sort.SEQ

    def children(self) -> tuple[Term, ...]:
        return (self.seq, self.index)


@dataclass(frozen=True)
class SeqUpdate(Term):
    """``upd(s, i, v)`` — the sequence after a ``set(i, v)``."""

    seq: Term
    index: Term
    value: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqUpdate seq")
        require(self.index.sort, Sort.INT, "SeqUpdate index")
        require(self.value.sort, Sort.OBJ, "SeqUpdate value")

    @property
    def sort(self) -> Sort:
        return Sort.SEQ

    def children(self) -> tuple[Term, ...]:
        return (self.seq, self.index, self.value)


@dataclass(frozen=True)
class SeqIndexOf(Term):
    """Index of the first occurrence of ``value``, or -1."""

    seq: Term
    value: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqIndexOf seq")
        require(self.value.sort, Sort.OBJ, "SeqIndexOf value")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return (self.seq, self.value)


@dataclass(frozen=True)
class SeqLastIndexOf(Term):
    """Index of the last occurrence of ``value``, or -1."""

    seq: Term
    value: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqLastIndexOf seq")
        require(self.value.sort, Sort.OBJ, "SeqLastIndexOf value")

    @property
    def sort(self) -> Sort:
        return Sort.INT

    def children(self) -> tuple[Term, ...]:
        return (self.seq, self.value)


@dataclass(frozen=True)
class SeqContains(Term):
    seq: Term
    value: Term

    def __post_init__(self) -> None:
        require(self.seq.sort, Sort.SEQ, "SeqContains seq")
        require(self.value.sort, Sort.OBJ, "SeqContains value")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.seq, self.value)


# ---------------------------------------------------------------------------
# Abstract-state access
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Field(Term):
    """Access a field of an abstract state, e.g. ``s1.contents``.

    Mirrors Jahob's ``sa..contents`` notation from Figure 2-2.
    """

    state: Term
    name: str
    field_sort: Sort

    def __post_init__(self) -> None:
        require(self.state.sort, Sort.STATE, "Field state")

    @property
    def sort(self) -> Sort:
        return self.field_sort

    def children(self) -> tuple[Term, ...]:
        return (self.state,)


@dataclass(frozen=True)
class ObserverCall(Term):
    """A semantic observer applied to a state, e.g. ``s1.contains(v1)``.

    These appear in the dynamically-checkable column of Tables 5.1-5.7;
    the interpreter dispatches them either to the abstract specification
    (during verification) or to a concrete linked implementation (during
    dynamic commutativity checking at run time).
    """

    state: Term
    method: str
    args: tuple[Term, ...]
    result_sort: Sort

    def __post_init__(self) -> None:
        require(self.state.sort, Sort.STATE, "ObserverCall state")

    @property
    def sort(self) -> Sort:
        return self.result_sort

    def children(self) -> tuple[Term, ...]:
        return (self.state,) + self.args


# ---------------------------------------------------------------------------
# Quantifiers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Forall(Term):
    var: Var
    body: Term

    def __post_init__(self) -> None:
        require(self.body.sort, Sort.BOOL, "Forall body")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Exists(Term):
    var: Var
    body: Term

    def __post_init__(self) -> None:
        require(self.body.sort, Sort.BOOL, "Exists body")

    @property
    def sort(self) -> Sort:
        return Sort.BOOL

    def children(self) -> tuple[Term, ...]:
        return (self.body,)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def conj(*args: Term) -> Term:
    """N-ary conjunction with unit simplification."""
    flat: list[Term] = []
    for a in args:
        if isinstance(a, And):
            flat.extend(a.args)
        elif a == FALSE:
            return FALSE
        elif a != TRUE:
            flat.append(a)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*args: Term) -> Term:
    """N-ary disjunction with unit simplification."""
    flat: list[Term] = []
    for a in args:
        if isinstance(a, Or):
            flat.extend(a.args)
        elif a == TRUE:
            return TRUE
        elif a != FALSE:
            flat.append(a)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(a: Term) -> Term:
    if isinstance(a, Not):
        return a.arg
    if a == TRUE:
        return FALSE
    if a == FALSE:
        return TRUE
    return Not(a)


def implies(a: Term, b: Term) -> Term:
    if a == TRUE:
        return b
    if a == FALSE or b == TRUE:
        return TRUE
    return Implies(a, b)


def eq(a: Term, b: Term) -> Term:
    return Eq(a, b)


def ne(a: Term, b: Term) -> Term:
    return neg(Eq(a, b))
