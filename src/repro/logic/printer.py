"""Pretty-printer: AST back to the Jahob-flavoured surface syntax.

``parse(pretty(f))`` is structurally equal to ``f`` for every formula the
parser accepts (round-trip property, tested with hypothesis).
"""

from __future__ import annotations

from . import terms as t

# Binding strengths; larger binds tighter.
_PREC_IFF = 1
_PREC_IMPL = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_NOT = 5
_PREC_CMP = 6
_PREC_ADD = 7
_PREC_NEG = 8
_PREC_POSTFIX = 9
_PREC_ATOM = 10


def pretty(term: t.Term) -> str:
    """Render ``term`` in the surface syntax."""
    text, _ = _render(term)
    return text


def _paren(text: str, prec: int, minimum: int) -> str:
    if prec < minimum:
        return f"({text})"
    return text


def _sub(term: t.Term, minimum: int) -> str:
    text, prec = _render(term)
    return _paren(text, prec, minimum)


def _render(term: t.Term) -> tuple[str, int]:
    if isinstance(term, t.Var):
        return term.name, _PREC_ATOM
    if isinstance(term, t.BoolConst):
        return ("true" if term.value else "false"), _PREC_ATOM
    if isinstance(term, t.IntConst):
        if term.value < 0:
            return f"-{-term.value}", _PREC_NEG
        return str(term.value), _PREC_ATOM
    if isinstance(term, t.ObjConst):
        return term.name, _PREC_ATOM
    if isinstance(term, t.Null):
        return "null", _PREC_ATOM
    if isinstance(term, t.Not):
        if isinstance(term.arg, t.Eq):
            lhs = _sub(term.arg.lhs, _PREC_ADD)
            rhs = _sub(term.arg.rhs, _PREC_ADD)
            return f"{lhs} ~= {rhs}", _PREC_CMP
        if isinstance(term.arg, t.Member):
            lhs = _sub(term.arg.elem, _PREC_ADD)
            rhs = _sub(term.arg.set_, _PREC_ADD)
            return f"{lhs} ~: {rhs}", _PREC_CMP
        return f"~{_sub(term.arg, _PREC_NOT)}", _PREC_NOT
    if isinstance(term, t.And):
        return " & ".join(_sub(a, _PREC_NOT) for a in term.args), _PREC_AND
    if isinstance(term, t.Or):
        return " | ".join(_sub(a, _PREC_AND) for a in term.args), _PREC_OR
    if isinstance(term, t.Implies):
        lhs = _sub(term.lhs, _PREC_OR)
        rhs = _sub(term.rhs, _PREC_IMPL)
        return f"{lhs} --> {rhs}", _PREC_IMPL
    if isinstance(term, t.Iff):
        lhs = _sub(term.lhs, _PREC_IMPL)
        rhs = _sub(term.rhs, _PREC_IMPL)
        return f"{lhs} <-> {rhs}", _PREC_IFF
    if isinstance(term, t.Ite):
        cond = pretty(term.cond)
        then = pretty(term.then)
        els = pretty(term.els)
        return f"(({cond}) --> {then}) & (~({cond}) --> {els})", _PREC_ATOM
    if isinstance(term, t.Eq):
        lhs = _sub(term.lhs, _PREC_ADD)
        rhs = _sub(term.rhs, _PREC_ADD)
        return f"{lhs} = {rhs}", _PREC_CMP
    if isinstance(term, t.Lt):
        return (f"{_sub(term.lhs, _PREC_ADD)} < {_sub(term.rhs, _PREC_ADD)}",
                _PREC_CMP)
    if isinstance(term, t.Le):
        return (f"{_sub(term.lhs, _PREC_ADD)} <= {_sub(term.rhs, _PREC_ADD)}",
                _PREC_CMP)
    if isinstance(term, t.Add):
        return " + ".join(_sub(a, _PREC_NEG) for a in term.args), _PREC_ADD
    if isinstance(term, t.Sub):
        lhs = _sub(term.lhs, _PREC_ADD)
        rhs = _sub(term.rhs, _PREC_NEG)
        return f"{lhs} - {rhs}", _PREC_ADD
    if isinstance(term, t.Neg):
        return f"-{_sub(term.arg, _PREC_NEG)}", _PREC_NEG
    if isinstance(term, t.Member):
        lhs = _sub(term.elem, _PREC_ADD)
        rhs = _sub(term.set_, _PREC_ADD)
        return f"{lhs} : {rhs}", _PREC_CMP
    if isinstance(term, t.Union):
        lhs = _sub(term.lhs, _PREC_NEG)
        rhs = _sub(term.rhs, _PREC_NEG)
        return f"{lhs} Un {rhs}", _PREC_ADD
    if isinstance(term, t.Diff):
        lhs = _sub(term.lhs, _PREC_ADD)
        rhs = _sub(term.rhs, _PREC_NEG)
        return f"{lhs} - {rhs}", _PREC_ADD
    if isinstance(term, t.Inter):
        return f"inter({pretty(term.lhs)}, {pretty(term.rhs)})", _PREC_ATOM
    if isinstance(term, t.FiniteSet):
        inner = ", ".join(pretty(e) for e in term.elems)
        return "{" + inner + "}", _PREC_ATOM
    if isinstance(term, t.Card):
        return f"card({pretty(term.set_)})", _PREC_ATOM
    if isinstance(term, t.SubsetEq):
        return f"subset({pretty(term.lhs)}, {pretty(term.rhs)})", _PREC_ATOM
    if isinstance(term, t.MapGet):
        return f"lookup({pretty(term.map_)}, {pretty(term.key)})", _PREC_ATOM
    if isinstance(term, t.MapHasKey):
        return f"haskey({pretty(term.map_)}, {pretty(term.key)})", _PREC_ATOM
    if isinstance(term, t.MapPut):
        args = f"{pretty(term.map_)}, {pretty(term.key)}, {pretty(term.value)}"
        return f"mput({args})", _PREC_ATOM
    if isinstance(term, t.MapRemoveKey):
        return f"mdel({pretty(term.map_)}, {pretty(term.key)})", _PREC_ATOM
    if isinstance(term, t.MapSize):
        return f"msize({pretty(term.map_)})", _PREC_ATOM
    if isinstance(term, t.MapKeys):
        return f"keys({pretty(term.map_)})", _PREC_ATOM
    if isinstance(term, t.SeqLen):
        return f"len({pretty(term.seq)})", _PREC_ATOM
    if isinstance(term, t.SeqGet):
        return f"at({pretty(term.seq)}, {pretty(term.index)})", _PREC_ATOM
    if isinstance(term, t.SeqInsert):
        args = f"{pretty(term.seq)}, {pretty(term.index)}, {pretty(term.value)}"
        return f"ins({args})", _PREC_ATOM
    if isinstance(term, t.SeqRemove):
        return f"del_({pretty(term.seq)}, {pretty(term.index)})", _PREC_ATOM
    if isinstance(term, t.SeqUpdate):
        args = f"{pretty(term.seq)}, {pretty(term.index)}, {pretty(term.value)}"
        return f"upd({args})", _PREC_ATOM
    if isinstance(term, t.SeqIndexOf):
        return f"idx({pretty(term.seq)}, {pretty(term.value)})", _PREC_ATOM
    if isinstance(term, t.SeqLastIndexOf):
        return f"lidx({pretty(term.seq)}, {pretty(term.value)})", _PREC_ATOM
    if isinstance(term, t.SeqContains):
        return f"has({pretty(term.seq)}, {pretty(term.value)})", _PREC_ATOM
    if isinstance(term, t.Field):
        return f"{_sub(term.state, _PREC_POSTFIX)}.{term.name}", _PREC_POSTFIX
    if isinstance(term, t.ObserverCall):
        args = ", ".join(pretty(a) for a in term.args)
        base = _sub(term.state, _PREC_POSTFIX)
        return f"{base}.{term.method}({args})", _PREC_POSTFIX
    if isinstance(term, t.Forall):
        ann = "" if term.var.var_sort.name == "INT" else "::obj"
        return f"ALL {term.var.name}{ann}. {pretty(term.body)}", _PREC_IFF
    if isinstance(term, t.Exists):
        ann = "" if term.var.var_sort.name == "INT" else "::obj"
        return f"EX {term.var.name}{ann}. {pretty(term.body)}", _PREC_IFF
    raise TypeError(f"cannot pretty-print {type(term).__name__}")
