"""Symbol tables used to sort-resolve parsed formulas.

A :class:`SymbolTable` tells the parser the sort of every free variable,
the fields and observers available on abstract-state variables, and which
field is the *principal* collection of a data structure (so that, e.g.,
``v : s1`` elaborates to ``v : s1.contents``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sorts import Sort

#: Observer signature: (argument sorts, result sort).
Signature = tuple[tuple[Sort, ...], Sort]


@dataclass
class SymbolTable:
    """Sort environment for parsing a formula."""

    vars: dict[str, Sort] = field(default_factory=dict)
    state_fields: dict[str, Sort] = field(default_factory=dict)
    observers: dict[str, Signature] = field(default_factory=dict)
    #: Field substituted when a STATE value appears where a collection
    #: sort is required (e.g. ``v : s1``).
    principal_field: str | None = None

    def with_vars(self, extra: dict[str, Sort]) -> "SymbolTable":
        merged = dict(self.vars)
        merged.update(extra)
        return SymbolTable(
            vars=merged,
            state_fields=self.state_fields,
            observers=self.observers,
            principal_field=self.principal_field,
        )


#: Builtin function signatures usable in any formula.  The sequence
#: constructors (``ins``/``del_``/``upd``) let *before* conditions describe
#: would-be intermediate states as pure terms over the initial state.
BUILTIN_FUNCTIONS: dict[str, Signature] = {
    "ins": ((Sort.SEQ, Sort.INT, Sort.OBJ), Sort.SEQ),
    "del_": ((Sort.SEQ, Sort.INT), Sort.SEQ),
    "upd": ((Sort.SEQ, Sort.INT, Sort.OBJ), Sort.SEQ),
    "idx": ((Sort.SEQ, Sort.OBJ), Sort.INT),
    "lidx": ((Sort.SEQ, Sort.OBJ), Sort.INT),
    "len": ((Sort.SEQ,), Sort.INT),
    "at": ((Sort.SEQ, Sort.INT), Sort.OBJ),
    "has": ((Sort.SEQ, Sort.OBJ), Sort.BOOL),
    "card": ((Sort.SET,), Sort.INT),
    "keys": ((Sort.MAP,), Sort.SET),
    "lookup": ((Sort.MAP, Sort.OBJ), Sort.OBJ),
    "haskey": ((Sort.MAP, Sort.OBJ), Sort.BOOL),
    "mput": ((Sort.MAP, Sort.OBJ, Sort.OBJ), Sort.MAP),
    "mdel": ((Sort.MAP, Sort.OBJ), Sort.MAP),
    "msize": ((Sort.MAP,), Sort.INT),
}
