"""Recursive-descent parser for the Jahob-flavoured condition syntax.

Grammar (loosest binding first)::

    formula := quantified
    quantified := ('ALL' | 'EX') binder '.' quantified | iff
    iff     := impl ('<->' impl)*
    impl    := disj ('-->' impl)?          (right associative)
    disj    := conj ('|' conj)*
    conj    := unary ('&' unary)*
    unary   := '~' unary | cmp
    cmp     := additive (cmpop additive)?
    cmpop   := '=' | '~=' | '<' | '<=' | '>' | '>=' | ':' | '~:'
    additive:= unary_minus (('+' | '-' | 'Un') unary_minus)*
    postfix := atom ('.' name args? | '[' formula ']')*
    atom    := IDENT | IDENT '(' args ')' | INT | 'true' | 'false'
             | 'null' | '(' formula ')' | '{' args? '}'

The parser is sort-directed: a :class:`~repro.logic.symbols.SymbolTable`
supplies variable sorts, abstract-state fields, and observer signatures,
and STATE-sorted expressions silently coerce to their principal collection
field where a collection is expected (``v : s1`` == ``v : s1.contents``).
"""

from __future__ import annotations

from .lexer import Token, tokenize
from .sorts import Sort, SortError
from .symbols import BUILTIN_FUNCTIONS, SymbolTable
from . import terms as t


class ParseError(ValueError):
    """Raised on malformed input or sort mismatches."""


_BUILTIN_NODES = {
    "ins": t.SeqInsert,
    "del_": t.SeqRemove,
    "upd": t.SeqUpdate,
    "idx": t.SeqIndexOf,
    "lidx": t.SeqLastIndexOf,
    "len": t.SeqLen,
    "at": t.SeqGet,
    "has": t.SeqContains,
    "card": t.Card,
    "keys": t.MapKeys,
    "lookup": t.MapGet,
    "haskey": t.MapHasKey,
    "mput": t.MapPut,
    "mdel": t.MapRemoveKey,
    "msize": t.MapSize,
}


class Parser:
    """Parses one formula string against a symbol table."""

    def __init__(self, text: str, symbols: SymbolTable) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._pos = 0
        self._symbols = symbols

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, kind: str) -> Token:
        tok = self._next()
        if tok.kind != kind:
            raise ParseError(
                f"expected {kind}, got {tok.kind} ({tok.text!r}) at "
                f"position {tok.pos} in {self._text!r}")
        return tok

    def _at(self, kind: str) -> bool:
        return self._peek().kind == kind

    # -- elaboration helpers -----------------------------------------------

    def _coerce(self, term: t.Term, expected: Sort) -> t.Term:
        """Insert principal-field access when a STATE meets a collection."""
        if term.sort is expected:
            return term
        if term.sort is Sort.STATE and self._symbols.principal_field:
            name = self._symbols.principal_field
            fsort = self._symbols.state_fields.get(name)
            if fsort is expected:
                return t.Field(term, name, fsort)
        raise ParseError(
            f"cannot use {term.sort} where {expected} is required "
            f"in {self._text!r}")

    # -- grammar -----------------------------------------------------------

    def parse(self) -> t.Term:
        result = self._formula()
        self._expect("EOF")
        if result.sort is not Sort.BOOL:
            raise ParseError(f"formula has sort {result.sort}, not bool")
        return result

    def parse_term(self) -> t.Term:
        """Parse a single term of any sort (used for argument expressions)."""
        result = self._formula()
        self._expect("EOF")
        return result

    def _formula(self) -> t.Term:
        if self._at("ALL") or self._at("EX"):
            kind = self._next().kind
            name = self._expect("IDENT").text
            var_sort = Sort.INT
            if self._at("DCOLON"):
                self._next()
                ann = self._expect("IDENT").text
                try:
                    var_sort = {"obj": Sort.OBJ, "int": Sort.INT}[ann]
                except KeyError:
                    raise ParseError(f"unknown binder sort {ann!r}") from None
            self._expect("DOT")
            var = t.Var(name, var_sort)
            saved = self._symbols
            self._symbols = saved.with_vars({name: var_sort})
            try:
                body = self._formula()
            finally:
                self._symbols = saved
            node = t.Forall if kind == "ALL" else t.Exists
            return node(var, body)
        return self._iff()

    def _iff(self) -> t.Term:
        lhs = self._impl()
        while self._at("IFF"):
            self._next()
            rhs = self._impl()
            lhs = t.Iff(lhs, rhs)
        return lhs

    def _impl(self) -> t.Term:
        lhs = self._disj()
        if self._at("ARROW"):
            self._next()
            rhs = self._impl()
            return t.Implies(lhs, rhs)
        return lhs

    def _disj(self) -> t.Term:
        args = [self._conj()]
        while self._at("OR"):
            self._next()
            args.append(self._conj())
        if len(args) == 1:
            return args[0]
        return t.Or(tuple(args))

    def _conj(self) -> t.Term:
        args = [self._unary()]
        while self._at("AND"):
            self._next()
            args.append(self._unary())
        if len(args) == 1:
            return args[0]
        return t.And(tuple(args))

    def _unary(self) -> t.Term:
        if self._at("NOT"):
            self._next()
            arg = self._unary()
            if arg.sort is not Sort.BOOL:
                raise ParseError(f"~ applied to {arg.sort} in {self._text!r}")
            return t.neg(arg)
        return self._cmp()

    def _cmp(self) -> t.Term:
        lhs = self._additive()
        kind = self._peek().kind
        if kind in ("EQ", "NEQ"):
            self._next()
            rhs = self._additive()
            lhs, rhs = self._unify(lhs, rhs)
            node: t.Term = t.Eq(lhs, rhs)
            return t.neg(node) if kind == "NEQ" else node
        if kind in ("LT", "LE", "GT", "GE"):
            self._next()
            rhs = self._additive()
            if kind == "LT":
                return t.Lt(lhs, rhs)
            if kind == "LE":
                return t.Le(lhs, rhs)
            if kind == "GT":
                return t.Lt(rhs, lhs)
            return t.Le(rhs, lhs)
        if kind in ("IN", "NOTIN"):
            self._next()
            rhs = self._coerce(self._additive(), Sort.SET)
            node = t.Member(lhs, rhs)
            return t.neg(node) if kind == "NOTIN" else node
        return lhs

    def _unify(self, lhs: t.Term, rhs: t.Term) -> tuple[t.Term, t.Term]:
        """Coerce STATE operands of ``=`` to their principal collections."""
        if lhs.sort is rhs.sort:
            return lhs, rhs
        if lhs.sort is Sort.STATE:
            return self._coerce(lhs, rhs.sort), rhs
        if rhs.sort is Sort.STATE:
            return lhs, self._coerce(rhs, lhs.sort)
        raise ParseError(
            f"= operands disagree ({lhs.sort} vs {rhs.sort}) "
            f"in {self._text!r}")

    def _additive(self) -> t.Term:
        lhs = self._unary_minus()
        while self._peek().kind in ("PLUS", "MINUS", "UN"):
            op = self._next().kind
            rhs = self._unary_minus()
            if op == "UN":
                lhs = t.Union(self._coerce(lhs, Sort.SET),
                              self._coerce(rhs, Sort.SET))
            elif lhs.sort is Sort.SET or rhs.sort is Sort.SET:
                if op != "MINUS":
                    raise ParseError("sets support only Un and - operators")
                lhs = t.Diff(self._coerce(lhs, Sort.SET),
                             self._coerce(rhs, Sort.SET))
            elif op == "PLUS":
                lhs = t.Add((lhs, rhs))
            else:
                lhs = t.Sub(lhs, rhs)
        return lhs

    def _unary_minus(self) -> t.Term:
        if self._at("MINUS"):
            self._next()
            arg = self._unary_minus()
            if isinstance(arg, t.IntConst):
                return t.IntConst(-arg.value)
            return t.Neg(arg)
        return self._postfix()

    def _postfix(self) -> t.Term:
        term = self._atom()
        while True:
            if self._at("DOT"):
                self._next()
                name = self._expect("IDENT").text
                term = self._member_access(term, name)
            elif self._at("LBRACK"):
                self._next()
                index = self._formula_or_term()
                self._expect("RBRACK")
                term = t.SeqGet(self._coerce(term, Sort.SEQ), index)
            else:
                return term

    def _member_access(self, term: t.Term, name: str) -> t.Term:
        if self._at("LPAREN"):
            self._next()
            args = self._args("RPAREN")
            sig = self._symbols.observers.get(name)
            if sig is None:
                raise ParseError(f"unknown observer {name!r} in {self._text!r}")
            arg_sorts, result = sig
            if len(args) != len(arg_sorts):
                raise ParseError(
                    f"observer {name} takes {len(arg_sorts)} args, "
                    f"got {len(args)}")
            for a, s in zip(args, arg_sorts):
                if a.sort is not s:
                    raise ParseError(
                        f"observer {name} arg sort {a.sort}, expected {s}")
            return t.ObserverCall(term, name, tuple(args), result)
        fsort = self._symbols.state_fields.get(name)
        if fsort is None:
            raise ParseError(f"unknown field {name!r} in {self._text!r}")
        return t.Field(term, name, fsort)

    def _args(self, closer: str) -> tuple[t.Term, ...]:
        args: list[t.Term] = []
        if not self._at(closer):
            args.append(self._formula_or_term())
            while self._at("COMMA"):
                self._next()
                args.append(self._formula_or_term())
        self._expect(closer)
        return tuple(args)

    def _formula_or_term(self) -> t.Term:
        """Parse a sub-expression that may be a formula or a plain term."""
        return self._iff()

    def _atom(self) -> t.Term:
        tok = self._next()
        if tok.kind == "INT":
            return t.IntConst(int(tok.text))
        if tok.kind == "TRUE":
            return t.TRUE
        if tok.kind == "FALSE":
            return t.FALSE
        if tok.kind == "NULL":
            return t.NULL
        if tok.kind == "LPAREN":
            inner = self._formula()
            self._expect("RPAREN")
            return inner
        if tok.kind == "LBRACE":
            elems = self._args("RBRACE")
            return t.FiniteSet(elems)
        if tok.kind == "IDENT":
            if self._at("LPAREN") and tok.text in BUILTIN_FUNCTIONS:
                self._next()
                args = list(self._args("RPAREN"))
                arg_sorts, _ = BUILTIN_FUNCTIONS[tok.text]
                if len(args) != len(arg_sorts):
                    raise ParseError(
                        f"{tok.text} takes {len(arg_sorts)} args, "
                        f"got {len(args)}")
                coerced = [self._coerce(a, s) if a.sort is not s else a
                           for a, s in zip(args, arg_sorts)]
                try:
                    return _BUILTIN_NODES[tok.text](*coerced)
                except SortError as exc:
                    raise ParseError(str(exc)) from exc
            var_sort = self._symbols.vars.get(tok.text)
            if var_sort is None:
                raise ParseError(
                    f"unknown identifier {tok.text!r} in {self._text!r}")
            return t.Var(tok.text, var_sort)
        raise ParseError(
            f"unexpected token {tok.text!r} at position {tok.pos} "
            f"in {self._text!r}")


def parse_formula(text: str, symbols: SymbolTable) -> t.Term:
    """Parse ``text`` as a boolean formula."""
    return Parser(text, symbols).parse()


def parse_term(text: str, symbols: SymbolTable) -> t.Term:
    """Parse ``text`` as a term of any sort."""
    return Parser(text, symbols).parse_term()
