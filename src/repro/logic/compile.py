"""Compile formulas to Python closures.

The bounded backend evaluates each condition formula millions of times
across a scope sweep; compiling the AST once into nested closures
removes the interpretation overhead (typically 3-6x on the ArrayList
sweep).  Compiled semantics match :func:`repro.eval.interpreter.evaluate`
exactly — a property the test suite checks by differential testing.

Quantifiers compile against explicit domain thunks: integers range over
``-1 .. max(sequence lengths) + 1`` derived from the environment (or the
context's explicit domains), mirroring the interpreter.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..eval.interpreter import EvalContext, EvalError
from ..eval.values import (seq_index_of, seq_insert,
                           seq_last_index_of, seq_remove, seq_update)
from . import terms as t
from .sorts import Sort

Compiled = Callable[[Mapping[str, Any]], Any]


def compile_term(term: t.Term, ctx: EvalContext | None = None) -> Compiled:
    """Compile ``term`` into a closure over environments."""
    if ctx is None:
        ctx = EvalContext()
    return _compile(term, ctx)


def _compile(term: t.Term, ctx: EvalContext) -> Compiled:
    if isinstance(term, t.Var):
        name = term.name
        def var(env, _name=name):
            try:
                return env[_name]
            except KeyError:
                raise EvalError(f"unbound variable {_name!r}") from None
        return var
    if isinstance(term, t.BoolConst):
        value = term.value
        return lambda env: value
    if isinstance(term, t.IntConst):
        value = term.value
        return lambda env: value
    if isinstance(term, t.ObjConst):
        name = term.name
        return lambda env: name
    if isinstance(term, t.Null):
        return lambda env: None
    if isinstance(term, t.Not):
        arg = _compile(term.arg, ctx)
        return lambda env: not arg(env)
    if isinstance(term, t.And):
        parts = [_compile(a, ctx) for a in term.args]
        return lambda env: all(p(env) for p in parts)
    if isinstance(term, t.Or):
        parts = [_compile(a, ctx) for a in term.args]
        return lambda env: any(p(env) for p in parts)
    if isinstance(term, t.Implies):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: (not lhs(env)) or rhs(env)
    if isinstance(term, t.Iff):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) == rhs(env)
    if isinstance(term, t.Ite):
        cond = _compile(term.cond, ctx)
        then = _compile(term.then, ctx)
        els = _compile(term.els, ctx)
        return lambda env: then(env) if cond(env) else els(env)
    if isinstance(term, t.Eq):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) == rhs(env)
    if isinstance(term, t.Lt):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) < rhs(env)
    if isinstance(term, t.Le):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) <= rhs(env)
    if isinstance(term, t.Add):
        parts = [_compile(a, ctx) for a in term.args]
        return lambda env: sum(p(env) for p in parts)
    if isinstance(term, t.Sub):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) - rhs(env)
    if isinstance(term, t.Neg):
        arg = _compile(term.arg, ctx)
        return lambda env: -arg(env)
    if isinstance(term, t.Member):
        elem = _compile(term.elem, ctx)
        set_ = _compile(term.set_, ctx)
        return lambda env: elem(env) in set_(env)
    if isinstance(term, t.Union):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) | rhs(env)
    if isinstance(term, t.Inter):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) & rhs(env)
    if isinstance(term, t.Diff):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) - rhs(env)
    if isinstance(term, t.FiniteSet):
        parts = [_compile(e, ctx) for e in term.elems]
        return lambda env: frozenset(p(env) for p in parts)
    if isinstance(term, t.Card):
        set_ = _compile(term.set_, ctx)
        return lambda env: len(set_(env))
    if isinstance(term, t.SubsetEq):
        lhs = _compile(term.lhs, ctx)
        rhs = _compile(term.rhs, ctx)
        return lambda env: lhs(env) <= rhs(env)
    if isinstance(term, t.MapGet):
        map_ = _compile(term.map_, ctx)
        key = _compile(term.key, ctx)
        return lambda env: map_(env).lookup(key(env))
    if isinstance(term, t.MapHasKey):
        map_ = _compile(term.map_, ctx)
        key = _compile(term.key, ctx)
        return lambda env: key(env) in map_(env)
    if isinstance(term, t.MapPut):
        map_ = _compile(term.map_, ctx)
        key = _compile(term.key, ctx)
        value = _compile(term.value, ctx)
        return lambda env: map_(env).put(key(env), value(env))
    if isinstance(term, t.MapRemoveKey):
        map_ = _compile(term.map_, ctx)
        key = _compile(term.key, ctx)
        return lambda env: map_(env).remove(key(env))
    if isinstance(term, t.MapSize):
        map_ = _compile(term.map_, ctx)
        return lambda env: len(map_(env))
    if isinstance(term, t.MapKeys):
        map_ = _compile(term.map_, ctx)
        return lambda env: frozenset(map_(env))
    if isinstance(term, t.SeqLen):
        seq = _compile(term.seq, ctx)
        return lambda env: len(seq(env))
    if isinstance(term, t.SeqGet):
        seq = _compile(term.seq, ctx)
        index = _compile(term.index, ctx)
        def seq_get(env):
            s = seq(env)
            i = index(env)
            if not 0 <= i < len(s):
                raise EvalError(f"sequence index {i} out of range")
            return s[i]
        return seq_get
    if isinstance(term, t.SeqInsert):
        seq = _compile(term.seq, ctx)
        index = _compile(term.index, ctx)
        value = _compile(term.value, ctx)
        def seq_ins(env):
            s = seq(env)
            i = index(env)
            if not 0 <= i <= len(s):
                raise EvalError(f"insert index {i} out of range")
            return seq_insert(s, i, value(env))
        return seq_ins
    if isinstance(term, t.SeqRemove):
        seq = _compile(term.seq, ctx)
        index = _compile(term.index, ctx)
        def seq_del(env):
            s = seq(env)
            i = index(env)
            if not 0 <= i < len(s):
                raise EvalError(f"remove index {i} out of range")
            return seq_remove(s, i)
        return seq_del
    if isinstance(term, t.SeqUpdate):
        seq = _compile(term.seq, ctx)
        index = _compile(term.index, ctx)
        value = _compile(term.value, ctx)
        def seq_upd(env):
            s = seq(env)
            i = index(env)
            if not 0 <= i < len(s):
                raise EvalError(f"update index {i} out of range")
            return seq_update(s, i, value(env))
        return seq_upd
    if isinstance(term, t.SeqIndexOf):
        seq = _compile(term.seq, ctx)
        value = _compile(term.value, ctx)
        return lambda env: seq_index_of(seq(env), value(env))
    if isinstance(term, t.SeqLastIndexOf):
        seq = _compile(term.seq, ctx)
        value = _compile(term.value, ctx)
        return lambda env: seq_last_index_of(seq(env), value(env))
    if isinstance(term, t.SeqContains):
        seq = _compile(term.seq, ctx)
        value = _compile(term.value, ctx)
        return lambda env: value(env) in seq(env)
    if isinstance(term, t.Field):
        state = _compile(term.state, ctx)
        name = term.name
        return lambda env: state(env)[name]
    if isinstance(term, t.ObserverCall):
        state = _compile(term.state, ctx)
        args = [_compile(a, ctx) for a in term.args]
        method = term.method
        observe = ctx.observe
        def call(env):
            if observe is None:
                raise EvalError(
                    f"observer {method!r} used without a dispatcher")
            return observe(state(env), method,
                           tuple(a(env) for a in args))
        return call
    if isinstance(term, (t.Forall, t.Exists)):
        body = _compile(term.body, ctx)
        name = term.var.name
        is_int = term.var.var_sort is Sort.INT
        is_forall = isinstance(term, t.Forall)
        def quantified(env):
            ints, objs = ctx.domains_for(env)
            domain = ints if is_int else objs
            inner = dict(env)
            for value in domain:
                inner[name] = value
                truth = body(inner)
                if is_forall and not truth:
                    return False
                if not is_forall and truth:
                    return True
            return is_forall
        return quantified
    raise EvalError(f"cannot compile {type(term).__name__}")
