"""Formula normalization: negation normal form and light simplification."""

from __future__ import annotations

from . import terms as t
from .substitution import transform


def nnf(formula: t.Term) -> t.Term:
    """Negation normal form: negations pushed to atoms, no Implies/Iff."""
    return _nnf(formula, positive=True)


def _nnf(f: t.Term, positive: bool) -> t.Term:
    if isinstance(f, t.Not):
        return _nnf(f.arg, not positive)
    if isinstance(f, t.And):
        parts = tuple(_nnf(a, positive) for a in f.args)
        return t.And(parts) if positive else t.Or(parts)
    if isinstance(f, t.Or):
        parts = tuple(_nnf(a, positive) for a in f.args)
        return t.Or(parts) if positive else t.And(parts)
    if isinstance(f, t.Implies):
        lhs = _nnf(f.lhs, not positive)
        rhs = _nnf(f.rhs, positive)
        return t.Or((lhs, rhs)) if positive else t.And((lhs, rhs))
    if isinstance(f, t.Iff):
        if positive:
            both = t.And((_nnf(f.lhs, True), _nnf(f.rhs, True)))
            neither = t.And((_nnf(f.lhs, False), _nnf(f.rhs, False)))
            return t.Or((both, neither))
        one = t.Or((_nnf(f.lhs, True), _nnf(f.rhs, True)))
        not_both = t.Or((_nnf(f.lhs, False), _nnf(f.rhs, False)))
        return t.And((one, not_both))
    if isinstance(f, t.Forall):
        body = _nnf(f.body, positive)
        return t.Forall(f.var, body) if positive else t.Exists(f.var, body)
    if isinstance(f, t.Exists):
        body = _nnf(f.body, positive)
        return t.Exists(f.var, body) if positive else t.Forall(f.var, body)
    if isinstance(f, t.BoolConst):
        return f if positive else t.BoolConst(not f.value)
    return f if positive else t.Not(f)


def simplify(formula: t.Term) -> t.Term:
    """Constant folding and unit laws; preserves semantics."""

    def step(node: t.Term) -> t.Term | None:
        if isinstance(node, t.Not):
            return t.neg(node.arg) if not isinstance(node.arg, t.Not) \
                else node.arg.arg
        if isinstance(node, t.And):
            return t.conj(*node.args)
        if isinstance(node, t.Or):
            return t.disj(*node.args)
        if isinstance(node, t.Implies):
            return t.implies(node.lhs, node.rhs)
        if isinstance(node, t.Iff):
            if node.lhs == t.TRUE:
                return node.rhs
            if node.rhs == t.TRUE:
                return node.lhs
            if node.lhs == t.FALSE:
                return t.neg(node.rhs)
            if node.rhs == t.FALSE:
                return t.neg(node.lhs)
            if node.lhs == node.rhs:
                return t.TRUE
            return None
        if isinstance(node, t.Eq):
            if node.lhs == node.rhs:
                return t.TRUE
            if (isinstance(node.lhs, t.IntConst)
                    and isinstance(node.rhs, t.IntConst)):
                return t.BoolConst(node.lhs.value == node.rhs.value)
            if (isinstance(node.lhs, t.BoolConst)
                    and isinstance(node.rhs, t.BoolConst)):
                return t.BoolConst(node.lhs.value == node.rhs.value)
            if (isinstance(node.lhs, t.ObjConst)
                    and isinstance(node.rhs, t.ObjConst)):
                return t.BoolConst(node.lhs.name == node.rhs.name)
            if isinstance(node.rhs, t.BoolConst):
                return node.lhs if node.rhs.value else t.neg(node.lhs)
            if isinstance(node.lhs, t.BoolConst):
                return node.rhs if node.lhs.value else t.neg(node.rhs)
            return None
        if isinstance(node, t.Lt):
            if (isinstance(node.lhs, t.IntConst)
                    and isinstance(node.rhs, t.IntConst)):
                return t.BoolConst(node.lhs.value < node.rhs.value)
            return None
        if isinstance(node, t.Le):
            if (isinstance(node.lhs, t.IntConst)
                    and isinstance(node.rhs, t.IntConst)):
                return t.BoolConst(node.lhs.value <= node.rhs.value)
            return None
        if isinstance(node, t.Add):
            const = 0
            rest: list[t.Term] = []
            for a in node.args:
                if isinstance(a, t.IntConst):
                    const += a.value
                else:
                    rest.append(a)
            if not rest:
                return t.IntConst(const)
            if const:
                rest.append(t.IntConst(const))
            if len(rest) == 1:
                return rest[0]
            return t.Add(tuple(rest))
        if isinstance(node, t.Sub):
            if (isinstance(node.lhs, t.IntConst)
                    and isinstance(node.rhs, t.IntConst)):
                return t.IntConst(node.lhs.value - node.rhs.value)
            if isinstance(node.rhs, t.IntConst) and node.rhs.value == 0:
                return node.lhs
            return None
        if isinstance(node, t.Ite):
            if node.cond == t.TRUE:
                return node.then
            if node.cond == t.FALSE:
                return node.els
            if node.then == node.els:
                return node.then
            return None
        return None

    return transform(formula, step)
