"""Capture-avoiding substitution and structural rewriting over terms."""

from __future__ import annotations

import dataclasses
from typing import Callable

from . import terms as t


def _rebuild(term: t.Term, new_children: tuple[t.Term, ...]) -> t.Term:
    """Rebuild ``term`` with replaced child subterms (same shape)."""
    if isinstance(term, (t.Forall, t.Exists)):
        (body,) = new_children
        return type(term)(term.var, body)
    fields = dataclasses.fields(term)
    values = []
    idx = 0
    for f in fields:
        value = getattr(term, f.name)
        if isinstance(value, t.Term):
            values.append(new_children[idx])
            idx += 1
        elif isinstance(value, tuple) and value and isinstance(value[0], t.Term):
            values.append(tuple(new_children[idx:idx + len(value)]))
            idx += len(value)
        elif isinstance(value, tuple) and not value:
            values.append(value)
        else:
            values.append(value)
    return type(term)(*values)


def transform(term: t.Term,
              fn: Callable[[t.Term], t.Term | None]) -> t.Term:
    """Bottom-up rewrite: apply ``fn`` to each node after its children.

    ``fn`` returns a replacement node or ``None`` to keep the node.
    """
    children = term.children()
    if children:
        new_children = tuple(transform(c, fn) for c in children)
        if new_children != children:
            term = _rebuild(term, new_children)
    replacement = fn(term)
    return term if replacement is None else replacement


def substitute(term: t.Term, mapping: dict[str, t.Term]) -> t.Term:
    """Substitute free variables by name.

    Bound variables shadow the mapping; substituting a term with free
    variables under a binder of the same name raises ``ValueError``
    (the catalog never needs alpha-renaming, so we fail loudly instead).
    """
    def go(node: t.Term, shadowed: frozenset[str]) -> t.Term:
        if isinstance(node, t.Var):
            if node.name in shadowed:
                return node
            replacement = mapping.get(node.name)
            if replacement is None:
                return node
            if replacement.sort is not node.var_sort:
                raise ValueError(
                    f"substituting {replacement.sort} term for "
                    f"{node.var_sort} variable {node.name!r}")
            return replacement
        if isinstance(node, (t.Forall, t.Exists)):
            for repl in mapping.values():
                for sub in repl.walk():
                    if isinstance(sub, t.Var) and sub.name == node.var.name:
                        raise ValueError(
                            f"substitution would capture {node.var.name!r}")
            body = go(node.body, shadowed | {node.var.name})
            return type(node)(node.var, body)
        children = node.children()
        if not children:
            return node
        new_children = tuple(go(c, shadowed) for c in children)
        if new_children == children:
            return node
        return _rebuild(node, new_children)

    return go(term, frozenset())


def rename_states(term: t.Term, mapping: dict[str, str]) -> t.Term:
    """Rename STATE-sorted variables, e.g. ``s2 -> s1`` when specializing a
    between condition into a before condition."""
    subst = {
        old: t.Var(new, t.Var(old, _state_sort()).var_sort)
        for old, new in mapping.items()
    }
    return substitute(term, subst)


def _state_sort():
    from .sorts import Sort
    return Sort.STATE
