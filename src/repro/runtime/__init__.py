"""Speculative parallel execution built on verified commutativity
conditions and inverse operations (the paper's motivating systems)."""

from .adaptive import (ADAPTIVE_POLICIES, AdaptiveController,
                       BackoffController, HybridController,
                       WaitDieController, make_controller)
from .backend import (AdmissionBackend, LocalAdmissionBackend,
                      resolve_backend)
from .gatekeeper import (ConflictManager, Gatekeeper, LoggedOperation,
                         POLICIES, ShardedGatekeeper, conflict_manager)
from .sharding import (FAMILY_ROUTERS, ShardRouter, single_region_router,
                       stable_hash)
from .transaction import Transaction, TxnStatus, UndoEntry, rollback
from .executor import ExecutionReport, RoundsExhausted, SpeculativeExecutor

__all__ = [
    "ConflictManager", "Gatekeeper", "ShardedGatekeeper",
    "conflict_manager", "LoggedOperation", "POLICIES",
    "AdmissionBackend", "LocalAdmissionBackend", "resolve_backend",
    "ADAPTIVE_POLICIES", "AdaptiveController", "BackoffController",
    "WaitDieController", "HybridController", "make_controller",
    "FAMILY_ROUTERS", "ShardRouter", "single_region_router",
    "stable_hash",
    "Transaction", "TxnStatus", "UndoEntry", "rollback",
    "ExecutionReport", "RoundsExhausted", "SpeculativeExecutor",
]
