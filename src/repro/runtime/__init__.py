"""Speculative parallel execution built on verified commutativity
conditions and inverse operations (the paper's motivating systems)."""

from .gatekeeper import Gatekeeper, LoggedOperation, POLICIES
from .transaction import Transaction, TxnStatus, UndoEntry, rollback
from .executor import ExecutionReport, SpeculativeExecutor

__all__ = [
    "Gatekeeper", "LoggedOperation", "POLICIES",
    "Transaction", "TxnStatus", "UndoEntry", "rollback",
    "ExecutionReport", "SpeculativeExecutor",
]
