"""Transport-neutral admission backends.

The speculative executor never cared *where* admission decisions come
from — it needs ``shards_for`` / ``check_many`` / ``record`` /
``release`` and, at the end of a run, the admission counters.  This
module names that contract: an :class:`AdmissionBackend` builds one
admission manager per execution, and the historical in-process path
(:func:`~repro.runtime.gatekeeper.conflict_manager`) becomes one
implementation behind it.  :class:`repro.service.client.ServiceBackend`
is the other: the same executor, the same workloads, but every
admission decision made by a remote asyncio server over the wire.

Decision identity is the invariant: for the same (structure, workload,
policy, seed) a served execution must produce a byte-identical
:meth:`~repro.runtime.executor.ExecutionReport.decision_digest` to the
in-process one.
"""

from __future__ import annotations

from .gatekeeper import ConflictManager, conflict_manager


class AdmissionBackend:
    """Factory for per-execution admission managers.

    ``kind`` labels the backend on reports; ``supports_threads`` gates
    the executor's threaded modes (a remote manager cannot hand out
    its shard locks, so served executions are per-process serial —
    cross-process parallelism comes from running many client
    processes, which is the deployment shape the service exists for).
    """

    kind = "abstract"
    supports_threads = False

    def conflict_manager(self, ds_name: str, *,
                         policy: str = "commutativity", shards: int = 1,
                         stable: bool = False,
                         compiled: bool = False) -> ConflictManager:
        """A fresh admission manager for one execution."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any long-lived resources (connections)."""


class LocalAdmissionBackend(AdmissionBackend):
    """The in-process path: admission managers over this process's
    registry, exactly the pre-service behaviour."""

    kind = "local"
    supports_threads = True

    def __init__(self, registry=None) -> None:
        self.registry = registry

    def conflict_manager(self, ds_name: str, *,
                         policy: str = "commutativity", shards: int = 1,
                         stable: bool = False,
                         compiled: bool = False) -> ConflictManager:
        return conflict_manager(ds_name, policy, shards=shards,
                                registry=self.registry, stable=stable,
                                compiled=compiled)


def resolve_backend(backend: AdmissionBackend | None,
                    registry=None) -> AdmissionBackend:
    """``None`` means the in-process backend over ``registry``."""
    if backend is None:
        return LocalAdmissionBackend(registry)
    return backend
