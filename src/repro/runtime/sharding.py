"""Shard routing: mapping operations to the log regions they can touch.

The verified between conditions tell us statically *which* operations
interact: a Set ``add(v)`` only ever conflicts with operations on the
same element ``v``, a Map ``put(k, _)`` with operations on the same key
``k``, an ArrayList mutation at index ``i`` with operations at indices
``>= i``.  A shard router turns that interaction structure into a
partition of the gatekeeper log: each operation is routed to the shards
it can interact with, and admission checks skip every shard the
incoming operation provably cannot conflict with.

Soundness contract: a router may only keep two operations in disjoint
shard sets when their between condition holds in *every* state — i.e.
when they unconditionally commute.  The built-in family routers below
satisfy this by construction; custom structures fall back to a single
region (everything in shard 0, flat-log behaviour) unless they register
their own router via :meth:`repro.api.Registry.register_shard_router`.

A router is a callable ``router(op_name, args, num_shards)`` returning
a sequence of shard ids, or ``None`` meaning "all shards" (the
operation can interact with anything — e.g. ``size``).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Optional, Sequence

#: Router signature: (op_name, args, num_shards) -> shard ids or None
#: (None = the operation may interact with every shard).
ShardRouter = Callable[[str, tuple, int], Optional[Sequence[int]]]

#: The granularity at which routers act as a *universal-commutation
#: oracle* inside the pair check itself: two operations whose routes at
#: this granularity are disjoint commute in every state, so their pair
#: check is skipped without evaluating the condition.  Physical shard
#: counts are restricted to powers of two (dividing this), which makes
#: physical scan-pruning a refinement of the virtual test — the
#: property behind flat-vs-sharded decision equivalence.
VIRTUAL_REGIONS = 64


def stable_hash(value: Any) -> int:
    """A process-stable hash (``hash(str)`` is randomized per process;
    shard assignment must be deterministic across runs and workers)."""
    return zlib.crc32(repr(value).encode("utf-8"))


def single_region_router(op_name: str, args: tuple,
                         num_shards: int) -> Sequence[int]:
    """The conservative fallback: every operation in one region, so a
    sharded gatekeeper behaves exactly like the flat log."""
    return (0,)


def keyed_router(op_name: str, args: tuple,
                 num_shards: int) -> Sequence[int] | None:
    """Key-argument hashing for the Set and Map families.

    Every Set/Map operation with arguments is keyed by its first
    argument (the element or map key), and two operations on distinct
    keys unconditionally commute (Tables 5.2-5.5: every non-trivial
    between condition is conditioned on key equality).  Argument-less
    operations (``size``) observe the whole structure and route to every
    shard.
    """
    if not args:
        return None
    return (stable_hash(args[0]) % num_shards,)


def accumulator_router(op_name: str, args: tuple,
                       num_shards: int) -> Sequence[int] | None:
    """Amount-hashing for the Accumulator family.

    ``increase(n); increase(m)`` commutes unconditionally (Table 5.1),
    so increases may be spread across shards by amount; ``read``
    interacts with every increase and routes to all shards.
    """
    if not args:
        return None  # read (and any other observer) sees everything
    return (stable_hash(args[0]) % num_shards,)


#: ArrayList operations that scan the whole list.
_ARRAYLIST_GLOBAL = ("indexOf", "lastIndexOf", "size")
#: ArrayList operations that shift every index >= their argument.
_ARRAYLIST_SHIFTING = ("add_at", "remove_at")
#: Indices per band (coarser bands = fewer shards touched per shift;
#: sized so small lists collapse into band 0 — flat-log behaviour with
#: no routing overhead — while preloaded lists spread across shards).
ARRAYLIST_BAND_WIDTH = 8


def arraylist_router(op_name: str, args: tuple,
                     num_shards: int) -> Sequence[int] | None:
    """Index-range banding for the ArrayList family.

    Indices are grouped into bands of :data:`ARRAYLIST_BAND_WIDTH`;
    band ``b`` maps to shard ``min(b, num_shards - 1)``.  ``get``/``set``
    touch exactly their index's band.  ``add_at``/``remove_at`` shift
    every element at an index >= their argument, so they route to their
    band *and every higher band* — any operation at a lower band is at a
    strictly smaller index and unconditionally commutes (Tables
    5.6-5.7: the conditions compare indices).  Value searches and
    ``size`` scan the whole list and route everywhere.
    """
    if op_name.startswith(_ARRAYLIST_GLOBAL) or not args:
        return None
    band = min(args[0] // ARRAYLIST_BAND_WIDTH, num_shards - 1)
    if op_name.startswith(_ARRAYLIST_SHIFTING):
        return tuple(range(band, num_shards))
    return (band,)  # get / set / set_: exactly one index


#: The built-in family routers, keyed by specification-family name
#: (:func:`repro.api.default.populate_builtins` registers these).
FAMILY_ROUTERS: dict[str, ShardRouter] = {
    "Set": keyed_router,
    "Map": keyed_router,
    "Accumulator": accumulator_router,
    "ArrayList": arraylist_router,
}


def normalize_route(ids: Sequence[int] | None,
                    num_shards: int) -> tuple[int, ...]:
    """Clamp a router's answer to valid, sorted, deduplicated shard ids
    (``None`` -> all shards)."""
    if ids is None:
        return tuple(range(num_shards))
    return tuple(sorted({i % num_shards for i in ids}))
