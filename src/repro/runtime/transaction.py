"""Speculative transactions with inverse-based rollback (Section 1.3).

A transaction executes operations against the shared concrete structure
and keeps an undo log of (operation, arguments, return value).  On abort
the log is replayed backwards through the verified inverse operations:
the abstract state is restored exactly, even though the concrete state
may differ (the property Table 5.10 verifies)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from ..impls import invoke
from ..inverses.catalog import ArgKind, Guard, InverseSpec


class TxnStatus(enum.Enum):
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class UndoEntry:
    op_name: str
    args: tuple[Any, ...]
    result: Any


@dataclass
class Transaction:
    """One speculative transaction over a shared structure."""

    txn_id: int
    ops: list[tuple[str, tuple[Any, ...]]]
    status: TxnStatus = TxnStatus.RUNNING
    next_op: int = 0
    undo_log: list[UndoEntry] = field(default_factory=list)
    aborts: int = 0
    results: list[Any] = field(default_factory=list)
    #: Earliest time this transaction may be rescheduled (scheduling
    #: rounds when serial, ``time.monotonic()`` when threaded); set by
    #: the backoff contention controller, ignored otherwise.
    backoff_until: float = 0.0

    @property
    def finished(self) -> bool:
        return self.next_op >= len(self.ops)

    @property
    def age(self) -> int:
        """Priority for wait-die ordering: transactions are numbered in
        submission order, so a lower id is an older transaction."""
        return self.txn_id

    def current_op(self) -> tuple[str, tuple[Any, ...]]:
        return self.ops[self.next_op]

    @property
    def ever_aborted(self) -> bool:
        return self.aborts > 0

    def record(self, op: Any, args: tuple[Any, ...], raw_result: Any,
               visible_result: Any) -> None:
        """Log one executed operation and advance the program counter.

        The undo log keys entries by the operation's *base* name
        (``add_`` logs as ``add``) so :func:`rollback`'s inverse lookup
        matches Table 5.10, and stores the raw concrete return value the
        inverse needs even when the client discards it.
        """
        self.results.append(visible_result)
        if op.mutator:
            self.undo_log.append(
                UndoEntry(op.base_name or op.name, args, raw_result))
        self.next_op += 1

    def mark_aborted(self) -> None:
        """Discard all speculative progress and flag the transaction
        :data:`TxnStatus.ABORTED` until the scheduler restarts it."""
        self.aborts += 1
        self.next_op = 0
        self.undo_log.clear()
        self.results.clear()
        self.status = TxnStatus.ABORTED

    def restart(self) -> None:
        """Begin the retry of an aborted transaction."""
        self.status = TxnStatus.RUNNING

    def reset_for_retry(self) -> None:
        """Abort and immediately restart (back-compat single step)."""
        self.mark_aborted()
        self.restart()


def rollback(impl: Any, family: str, undo_log: list[UndoEntry],
             registry=None) -> None:
    """Undo all logged mutations, most recent first, using the verified
    inverse operations of Table 5.10."""
    from ..api import resolve_registry
    registry = resolve_registry(registry)
    spec = registry.spec(family)
    for entry in reversed(undo_log):
        op = spec.operations[entry.op_name]
        base = op.base_name or op.name
        inverse = registry.inverse(family, base)
        _apply_inverse_concrete(impl, inverse, op, entry)
    undo_log.clear()


def resolve_inverse_calls(inverse: InverseSpec, op: Any,
                          args: tuple[Any, ...],
                          result: Any) -> list[tuple[str, tuple[Any, ...]]]:
    """The concrete ``(operation, arguments)`` calls an abort would make
    to undo one execution of ``op(args) -> result`` — the inverse
    program with its guard decided and its arguments bound.  Shared by
    :func:`rollback` and by the gatekeeper's undo-commutation guard
    (which must reason about these exact calls *before* any abort
    happens)."""
    params = {p.name: v for p, v in zip(op.params, args)}
    if inverse.guard is Guard.NONE:
        selected = inverse.then
    elif inverse.guard is Guard.RESULT_TRUE:
        selected = inverse.then if result else ()
    else:
        selected = inverse.then if result is not None else inverse.els
    calls: list[tuple[str, tuple[Any, ...]]] = []
    for call in selected:
        call_args = []
        for arg in call.args:
            if arg.kind is ArgKind.PARAM:
                call_args.append(params[arg.name])
            elif arg.kind is ArgKind.NEG_PARAM:
                call_args.append(-params[arg.name])
            else:
                call_args.append(result)
        calls.append((call.op, tuple(call_args)))
    return calls


def _apply_inverse_concrete(impl: Any, inverse: InverseSpec, op: Any,
                            entry: UndoEntry) -> None:
    for op_name, args in resolve_inverse_calls(inverse, op, entry.args,
                                               entry.result):
        invoke(impl, op_name, args)
