"""Deterministic speculative executor (the usage scenario of Chapter 1).

Transactions execute operations on a shared concrete linked structure.
Before each operation the gatekeeper checks the between commutativity
conditions against every outstanding operation of other transactions; on
conflict the requesting transaction aborts, rolls back through the
verified inverses, and retries.  With ``workers=1`` (the default) the
scheduler interleaves transactions deterministically from a seed, so
every run is reproducible.

With ``workers > 1`` the executor runs a batched multi-worker mode:
transactions are partitioned round-robin across worker threads that
share the concrete structure and a lock-protected gatekeeper.  Each
worker admits and applies up to ``batch`` consecutive operations of one
transaction per lock hold.  Thread scheduling makes the interleaving
nondeterministic, but the commutativity conditions and inverses make
every interleaving serializable — which the executor still validates.

The executor also validates serializability on the fly: at commit time
of the final transaction, the abstract state must equal the state
produced by replaying the committed transactions serially in commit
order — which is exactly what the soundness of the commutativity
conditions guarantees.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..eval.values import Record
from ..impls import invoke, invoke_concrete
from .gatekeeper import Gatekeeper, LoggedOperation
from .transaction import Transaction, TxnStatus, rollback

#: Statuses of transactions that still have work to do: ABORTED
#: transactions restart from scratch the next time they are scheduled.
ACTIVE_STATUSES = (TxnStatus.RUNNING, TxnStatus.ABORTED)


@dataclass
class ExecutionReport:
    """Statistics and outcome of one speculative execution."""

    ds_name: str
    policy: str
    conflict_mode: str = "abort"
    workers: int = 1
    commits: int = 0
    aborts: int = 0
    operations: int = 0
    conflict_checks: int = 0
    conflicts: int = 0
    wall_seconds: float = 0.0
    commit_order: list[int] = field(default_factory=list)
    #: Per-transaction abort counts and final statuses (txn_id keyed),
    #: so post-run inspection can distinguish ever-aborted transactions.
    txn_aborts: dict[int, int] = field(default_factory=dict)
    txn_statuses: dict[int, TxnStatus] = field(default_factory=dict)
    final_state: Record | None = None
    serial_state: Record | None = None

    @property
    def serializable(self) -> bool:
        return self.final_state == self.serial_state

    @property
    def conflict_rate(self) -> float:
        """Fraction of admission checks that found a conflict."""
        if not self.conflict_checks:
            return 0.0
        return self.conflicts / self.conflict_checks

    @property
    def ops_per_second(self) -> float:
        """Executed-operation throughput (committed and speculative)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.operations / self.wall_seconds

    @property
    def ever_aborted(self) -> list[int]:
        """IDs of transactions that aborted at least once."""
        return [txn_id for txn_id, count in sorted(self.txn_aborts.items())
                if count > 0]

    def summary(self) -> str:
        return (f"{self.ds_name}/{self.policy}: {self.commits} commits, "
                f"{self.aborts} aborts, {self.operations} ops, "
                f"{self.conflicts}/{self.conflict_checks} conflicts, "
                f"serializable={self.serializable}")


class SpeculativeExecutor:
    """Runs transactions speculatively over one shared structure."""

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 seed: int = 0, max_rounds: int = 10000,
                 conflict_mode: str = "abort", registry=None,
                 workers: int = 1, batch: int = 1) -> None:
        if conflict_mode not in ("abort", "block"):
            raise ValueError(f"unknown conflict mode {conflict_mode!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        from ..api import resolve_registry
        registry = resolve_registry(registry)
        self.ds_name = ds_name
        self.registry = registry
        self.spec = registry.spec(ds_name)
        self.policy = policy
        self.seed = seed
        self.max_rounds = max_rounds
        #: "abort" rolls the requester back immediately; "block" lets it
        #: wait for the conflicting transaction, aborting only to break
        #: a deadlock (the waits-for cycle fallback of real systems).
        self.conflict_mode = conflict_mode
        self.workers = workers
        self.batch = batch

    def run(self, programs: list[list[tuple[str, tuple[Any, ...]]]]) \
            -> ExecutionReport:
        """Execute the transaction ``programs`` to completion."""
        start = time.perf_counter()
        impl = self.registry.new_instance(self.ds_name)
        gatekeeper = Gatekeeper(self.ds_name, self.policy,
                                registry=self.registry)
        transactions = [Transaction(i, list(ops))
                        for i, ops in enumerate(programs)]
        report = ExecutionReport(ds_name=self.ds_name, policy=self.policy,
                                 conflict_mode=self.conflict_mode,
                                 workers=self.workers)
        if self.workers == 1 or len(transactions) <= 1:
            self._run_serial(transactions, impl, gatekeeper, report)
        else:
            self._run_threaded(transactions, impl, gatekeeper, report)
        # Throughput covers execution only; the serial-replay
        # serializability validation below is diagnostics, not work.
        report.wall_seconds = time.perf_counter() - start
        report.conflict_checks = gatekeeper.checks
        report.conflicts = gatekeeper.conflicts
        report.txn_aborts = {t.txn_id: t.aborts for t in transactions}
        report.txn_statuses = {t.txn_id: t.status for t in transactions}
        report.final_state = impl.abstract_state()
        report.serial_state = self._serial_replay(programs,
                                                  report.commit_order)
        return report

    # -- deterministic serial scheduler --------------------------------------

    def _run_serial(self, transactions: list[Transaction], impl: Any,
                    gatekeeper: Gatekeeper,
                    report: ExecutionReport) -> None:
        rng = random.Random(self.seed)
        rounds = 0
        blocked: set[int] = set()
        while any(t.status in ACTIVE_STATUSES for t in transactions):
            rounds += 1
            if rounds > self.max_rounds:
                raise RuntimeError("executor failed to converge")
            runnable = [t for t in transactions
                        if t.status in ACTIVE_STATUSES
                        and t.txn_id not in blocked]
            if not runnable:
                self._break_deadlock(transactions, blocked, impl,
                                     gatekeeper, report)
                continue
            self._step(rng.choice(runnable), impl, gatekeeper, report,
                       blocked)

    # -- batched multi-worker scheduler ---------------------------------------

    def _run_threaded(self, transactions: list[Transaction], impl: Any,
                      gatekeeper: Gatekeeper,
                      report: ExecutionReport) -> None:
        """Thread workers over the lock-protected shared state.

        One condition variable guards the structure, the gatekeeper, and
        every transaction; workers hold it for up to ``batch`` operations
        of one of their transactions, wait on it while all their
        transactions are blocked, and are notified on every commit,
        abort, or deadlock break.
        """
        cond = threading.Condition()
        blocked: set[int] = set()
        errors: list[BaseException] = []
        budget = [self.max_rounds * self.workers]

        def drive(wid: int) -> None:
            rng = random.Random(f"{self.seed}:{wid}")
            mine = transactions[wid::self.workers]
            while True:
                with cond:
                    if errors:
                        return
                    active = [t for t in mine
                              if t.status in ACTIVE_STATUSES]
                    if not active:
                        cond.notify_all()
                        return
                    runnable = [t for t in active
                                if t.txn_id not in blocked]
                    if not runnable:
                        globally_active = [
                            t for t in transactions
                            if t.status in ACTIVE_STATUSES]
                        if all(t.txn_id in blocked
                               for t in globally_active):
                            self._spend_budget(budget)
                            self._break_deadlock(transactions, blocked,
                                                 impl, gatekeeper, report)
                            cond.notify_all()
                        else:
                            # Another worker's transaction can still run;
                            # wake on its commit/abort (timeout is a
                            # liveness belt-and-braces only).  Idle waits
                            # spend no convergence budget: only batch
                            # attempts and deadlock breaks do, so a slow
                            # but progressing peer never fails the run.
                            cond.wait(timeout=0.01)
                        continue
                    self._spend_budget(budget)
                    txn = rng.choice(runnable)
                    progressed = False
                    for _ in range(self.batch):
                        if not self._step(txn, impl, gatekeeper, report,
                                          blocked):
                            break
                        progressed = True
                        if txn.status is not TxnStatus.RUNNING:
                            break  # committed
                    if progressed:
                        cond.notify_all()

        def worker(wid: int) -> None:
            try:
                drive(wid)
            except BaseException as exc:  # propagate to the caller
                with cond:
                    errors.append(exc)
                    cond.notify_all()

        threads = [threading.Thread(target=worker, args=(wid,),
                                    name=f"repro-exec-{wid}")
                   for wid in range(min(self.workers, len(transactions)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    @staticmethod
    def _spend_budget(budget: list[int]) -> None:
        budget[0] -= 1
        if budget[0] < 0:
            raise RuntimeError("executor failed to converge")

    # -- one scheduling step ---------------------------------------------------

    def _step(self, txn: Transaction, impl: Any, gatekeeper: Gatekeeper,
              report: ExecutionReport, blocked: set[int]) -> bool:
        """Advance ``txn`` by one operation (or commit it if finished).

        Returns True when the transaction made progress, False when it
        hit a conflict (and was aborted or blocked per the conflict
        mode).
        """
        if txn.status is TxnStatus.ABORTED:
            txn.restart()
        if txn.finished:
            txn.status = TxnStatus.COMMITTED
            gatekeeper.release(txn.txn_id)
            report.commits += 1
            report.commit_order.append(txn.txn_id)
            blocked.clear()  # waiters may be admissible now
            return True
        op_name, args = txn.current_op()
        op = self.spec.operations[op_name]
        before = impl.abstract_state()
        if not gatekeeper.admits(txn.txn_id, op_name, args, before):
            if self.conflict_mode == "block":
                blocked.add(txn.txn_id)
            else:
                self._abort(txn, impl, gatekeeper, report)
            return False
        # Execute through the canonical concrete dispatch; keep the raw
        # return value for the undo log even when the client discards it
        # (the paper: "any system that applies such inverse operations
        # must therefore store the return value").
        raw_result, visible = invoke_concrete(impl, op, args)
        after = impl.abstract_state()
        gatekeeper.record(LoggedOperation(
            txn_id=txn.txn_id, op_name=op_name, args=args,
            result=visible, before=before, after=after))
        txn.record(op, args, raw_result, visible)
        report.operations += 1
        return True

    def _break_deadlock(self, transactions: list[Transaction],
                        blocked: set[int], impl: Any,
                        gatekeeper: Gatekeeper,
                        report: ExecutionReport) -> Transaction:
        """Every active transaction is blocked: break the deadlock by
        keeping the most-advanced transaction as the sole survivor
        (lowest txn_id on ties) and aborting the rest.  With no other
        holders left, the survivor's admission checks succeed trivially,
        so it runs to commit — guaranteeing global progress on every
        deadlock episode.  Returns the survivor."""
        active = [t for t in transactions if t.status in ACTIVE_STATUSES]
        survivor = max(active, key=lambda t: (t.next_op, -t.txn_id))
        for txn in active:
            if txn is not survivor and txn.next_op > 0:
                self._abort(txn, impl, gatekeeper, report)
        blocked.clear()
        blocked.update(t.txn_id for t in active if t is not survivor)
        return survivor

    def _abort(self, txn: Transaction, impl: Any, gatekeeper: Gatekeeper,
               report: ExecutionReport) -> None:
        """Roll back a transaction's speculative effects; it retries from
        scratch the next time the scheduler picks it."""
        rollback(impl, self.ds_name, txn.undo_log, registry=self.registry)
        gatekeeper.release(txn.txn_id)
        txn.mark_aborted()
        report.aborts += 1

    def _serial_replay(self, programs: list[list[tuple[str, tuple]]],
                       order: list[int]) -> Record:
        """Replay committed transactions serially in commit order."""
        impl = self.registry.new_instance(self.ds_name)
        for txn_id in order:
            for op_name, args in programs[txn_id]:
                invoke(impl, self.spec.operations[op_name], args)
        return impl.abstract_state()
