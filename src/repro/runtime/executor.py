"""Deterministic speculative executor (the usage scenario of Chapter 1).

Transactions execute operations on a shared concrete linked structure.
Before each operation the gatekeeper checks the between commutativity
conditions against every outstanding operation of other transactions; on
conflict the requesting transaction aborts, rolls back through the
verified inverses, and retries.  The scheduler interleaves transactions
deterministically from a seed, so every run is reproducible.

The executor also validates serializability on the fly: at commit time
of the final transaction, the abstract state must equal the state
produced by replaying the committed transactions serially in commit
order — which is exactly what the soundness of the commutativity
conditions guarantees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..eval.values import Record
from ..impls import invoke
from .gatekeeper import Gatekeeper, LoggedOperation
from .transaction import Transaction, TxnStatus, UndoEntry, rollback


@dataclass
class ExecutionReport:
    """Statistics and outcome of one speculative execution."""

    ds_name: str
    policy: str
    commits: int = 0
    aborts: int = 0
    operations: int = 0
    conflict_checks: int = 0
    conflicts: int = 0
    commit_order: list[int] = field(default_factory=list)
    final_state: Record | None = None
    serial_state: Record | None = None

    @property
    def serializable(self) -> bool:
        return self.final_state == self.serial_state

    def summary(self) -> str:
        return (f"{self.ds_name}/{self.policy}: {self.commits} commits, "
                f"{self.aborts} aborts, {self.operations} ops, "
                f"{self.conflicts}/{self.conflict_checks} conflicts, "
                f"serializable={self.serializable}")


class SpeculativeExecutor:
    """Runs transactions speculatively over one shared structure."""

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 seed: int = 0, max_rounds: int = 10000,
                 conflict_mode: str = "abort", registry=None) -> None:
        if conflict_mode not in ("abort", "block"):
            raise ValueError(f"unknown conflict mode {conflict_mode!r}")
        from ..api import resolve_registry
        registry = resolve_registry(registry)
        self.ds_name = ds_name
        self.registry = registry
        self.spec = registry.spec(ds_name)
        self.policy = policy
        self.seed = seed
        self.max_rounds = max_rounds
        #: "abort" rolls the requester back immediately; "block" lets it
        #: wait for the conflicting transaction, aborting only to break
        #: a deadlock (the waits-for cycle fallback of real systems).
        self.conflict_mode = conflict_mode

    def run(self, programs: list[list[tuple[str, tuple[Any, ...]]]]) \
            -> ExecutionReport:
        """Execute the transaction ``programs`` to completion."""
        rng = random.Random(self.seed)
        impl = self.registry.new_instance(self.ds_name)
        gatekeeper = Gatekeeper(self.ds_name, self.policy,
                                registry=self.registry)
        transactions = [Transaction(i, list(ops))
                        for i, ops in enumerate(programs)]
        report = ExecutionReport(ds_name=self.ds_name, policy=self.policy)
        rounds = 0
        blocked: set[int] = set()
        while any(t.status is TxnStatus.RUNNING for t in transactions):
            rounds += 1
            if rounds > self.max_rounds:
                raise RuntimeError("executor failed to converge")
            runnable = [t for t in transactions
                        if t.status is TxnStatus.RUNNING
                        and t.txn_id not in blocked]
            if not runnable:
                # Every running transaction is blocked: break the
                # deadlock by keeping the most-advanced transaction as
                # the sole survivor and aborting the rest.  With no other
                # holders left, the survivor's admission checks succeed
                # trivially, so it runs to commit — guaranteeing global
                # progress on every deadlock episode.
                running = [t for t in transactions
                           if t.status is TxnStatus.RUNNING]
                survivor = max(running,
                               key=lambda t: (t.next_op, -t.txn_id))
                for txn in running:
                    if txn is not survivor and txn.next_op > 0:
                        self._abort(txn, impl, gatekeeper, report)
                blocked = {t.txn_id for t in running
                           if t is not survivor}
                continue
            txn = rng.choice(runnable)
            if txn.finished:
                txn.status = TxnStatus.COMMITTED
                gatekeeper.release(txn.txn_id)
                report.commits += 1
                report.commit_order.append(txn.txn_id)
                blocked.clear()  # waiters may be admissible now
                continue
            op_name, args = txn.current_op()
            op = self.spec.operations[op_name]
            before = impl.abstract_state()
            if not gatekeeper.admits(txn.txn_id, op_name, args, before):
                if self.conflict_mode == "block":
                    blocked.add(txn.txn_id)
                else:
                    self._abort(txn, impl, gatekeeper, report)
                continue
            # Execute the base operation; keep the real return value for
            # the undo log even when the client discards it (the paper:
            # "any system that applies such inverse operations must
            # therefore store the return value").
            raw_result = getattr(impl, op_name.rstrip("_"))(*args)
            visible = None if op.discards_result else raw_result
            after = impl.abstract_state()
            gatekeeper.record(LoggedOperation(
                txn_id=txn.txn_id, op_name=op_name, args=args,
                result=visible, before=before, after=after))
            txn.results.append(visible)
            if op.mutator:
                base = op.base_name or op.name
                txn.undo_log.append(UndoEntry(base, args, raw_result))
            txn.next_op += 1
            report.operations += 1
        report.conflict_checks = gatekeeper.checks
        report.conflicts = gatekeeper.conflicts
        report.final_state = impl.abstract_state()
        report.serial_state = self._serial_replay(programs,
                                                  report.commit_order)
        return report

    def _abort(self, txn: Transaction, impl: Any, gatekeeper: Gatekeeper,
               report: ExecutionReport) -> None:
        """Roll back a transaction's speculative effects and retry it."""
        rollback(impl, self.ds_name, txn.undo_log, registry=self.registry)
        gatekeeper.release(txn.txn_id)
        txn.reset_for_retry()
        report.aborts += 1

    def _serial_replay(self, programs: list[list[tuple[str, tuple]]],
                       order: list[int]) -> Record:
        """Replay committed transactions serially in commit order."""
        impl = self.registry.new_instance(self.ds_name)
        for txn_id in order:
            for op_name, args in programs[txn_id]:
                invoke(impl, op_name, args)
        return impl.abstract_state()
