"""Deterministic speculative executor (the usage scenario of Chapter 1).

Transactions execute operations on a shared concrete linked structure.
Before each operation the conflict manager checks the between
commutativity conditions against every outstanding operation of other
transactions; on conflict the requesting transaction aborts, rolls back
through the verified inverses, and retries.  With ``workers=1`` (the
default) the scheduler interleaves transactions deterministically from a
seed, so every run is reproducible.

With ``workers > 1`` the executor runs one of two threaded modes:

- ``shards=1`` — the batched single-lock mode: worker threads share the
  concrete structure and a lock-protected flat-log gatekeeper, each
  admitting and applying up to ``batch`` consecutive operations of one
  transaction per lock hold.
- ``shards > 1`` — the fine-grained sharded mode: the gatekeeper log is
  partitioned into region shards (see :mod:`~repro.runtime.sharding`),
  each with its own lock.  A worker acquires only the shards its
  operation can interact with (plus the shards its transaction already
  touched, so an abort can always roll back under locks it holds), in
  deterministic ascending order — so operations in disjoint regions
  admit and apply concurrently instead of serializing on one lock.
  The global condition variable is reduced to scheduling bookkeeping
  (blocked transactions, deadlock detection) and is never acquired
  while shard locks are held.

Thread scheduling makes the interleaving nondeterministic, but the
commutativity conditions and inverses make every interleaving
serializable — which the executor still validates: at commit time of
the final transaction, the abstract state must equal the state produced
by replaying the committed transactions serially in commit order.

``adaptive=`` wraps the conflict *response* with a contention
controller (:mod:`~repro.runtime.adaptive`): exponential backoff,
wait-die ordering, or the per-shard hybrid fallback to blocking.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..eval.values import Record
from ..impls import invoke, invoke_concrete
from .adaptive import AdaptiveController, make_controller
from .backend import AdmissionBackend, resolve_backend
from .gatekeeper import ConflictManager, LoggedOperation
from .sharding import VIRTUAL_REGIONS
from .transaction import Transaction, TxnStatus, rollback

#: Statuses of transactions that still have work to do: ABORTED
#: transactions restart from scratch the next time they are scheduled.
ACTIVE_STATUSES = (TxnStatus.RUNNING, TxnStatus.ABORTED)


class RoundsExhausted(RuntimeError):
    """The scheduling budget (``max_rounds``) ran out before every
    transaction finished.  Raised internally and resolved by
    :meth:`SpeculativeExecutor.run` into a liveness *report* — the
    still-active transactions are rolled back, the committed prefix
    stays serializable, and ``ExecutionReport.rounds_exhausted``
    surfaces the episode — instead of crashing the run (ROADMAP 3b:
    extreme write-heavy hot-key mixes can starve under liberal
    admission; a server must degrade, not die)."""


@dataclass
class ExecutionReport:
    """Statistics and outcome of one speculative execution."""

    ds_name: str
    policy: str
    conflict_mode: str = "abort"
    workers: int = 1
    shards: int = 1
    adaptive: str | None = None
    stable: bool = False
    #: Whether admission ran through arm-time-compiled closures
    #: (:mod:`repro.compiled`); never decision-changing.
    compiled: bool = False
    commits: int = 0
    aborts: int = 0
    operations: int = 0
    conflict_checks: int = 0
    conflicts: int = 0
    #: Drift-guard traffic: checks that hit the guard, the subset a
    #: compiled drift-stable condition admitted, the conservative
    #: resolutions that consulted the router oracle, and the subset of
    #: those the oracle admitted (conservative-fallback admissions).
    drift_checks: int = 0
    stable_hits: int = 0
    #: The subset of drift-guard admissions certified at the ``proved``
    #: tier (symbolically proved conditions, ``--prover`` compilations).
    proved_hits: int = 0
    #: The subset certified at the ``synthesized`` tier (conditions the
    #: abduction loop discovered, ``--abduce`` compilations).
    synthesized_hits: int = 0
    drift_fallbacks: int = 0
    fallback_admits: int = 0
    #: Would-be admissions refused because the incoming operation does
    #: not commute with a logged operation's pending undo.
    undo_refusals: int = 0
    #: Pair checks decided by a compiled closure (0 when
    #: ``compiled=False``); purely observational, like the tier split.
    compiled_hits: int = 0
    #: Condition evaluations that raised EvalError and resolved
    #: conservatively, with a bounded diagnostic sample of
    #: (structure, m1, m2, condition, error, stable) dicts.
    eval_errors: int = 0
    eval_error_sample: list = field(default_factory=list)
    #: Diagnostics evicted from the bounded sample rings (exact count).
    eval_errors_dropped: int = 0
    #: Which admission backend decided the run ("local" in-process,
    #: "service" over the wire); never decision-changing.
    backend: str = "local"
    #: 1 when the run hit ``max_rounds`` and was quenched — the
    #: committed prefix is kept (and still replay-validated), every
    #: still-active transaction is rolled back (ROADMAP 3b liveness).
    rounds_exhausted: int = 0
    #: Round-trip seconds of each admission RPC (service backend only;
    #: empty for in-process runs) — the client half of the service
    #: latency story.
    admission_latencies: list = field(default_factory=list)
    wall_seconds: float = 0.0
    commit_order: list[int] = field(default_factory=list)
    #: Per-transaction abort counts and final statuses (txn_id keyed),
    #: so post-run inspection can distinguish ever-aborted transactions.
    txn_aborts: dict[int, int] = field(default_factory=dict)
    txn_statuses: dict[int, TxnStatus] = field(default_factory=dict)
    #: Per-shard admission statistics (one dict per shard: shard id,
    #: checks, conflicts, outstanding), from the conflict manager.
    shard_stats: list[dict[str, int]] = field(default_factory=list)
    final_state: Record | None = None
    serial_state: Record | None = None

    @property
    def serializable(self) -> bool:
        """Whether the execution matched its serial replay.  ``False``
        until both states are populated by a run — an un-run report must
        never read as vacuously serializable."""
        if self.final_state is None or self.serial_state is None:
            return False
        return self.final_state == self.serial_state

    @property
    def conflict_rate(self) -> float:
        """Fraction of admission checks that found a conflict."""
        if not self.conflict_checks:
            return 0.0
        return self.conflicts / self.conflict_checks

    @property
    def ops_per_second(self) -> float:
        """Executed-operation throughput (committed and speculative)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.operations / self.wall_seconds

    #: Operations of committed transactions (set by :meth:`run`).
    committed_operations: int = 0

    @property
    def committed_ops_per_second(self) -> float:
        """Committed-operation throughput: retried (speculative) work
        does not count, so this is the honest wall-clock metric for
        comparing configurations that abort different amounts."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.committed_operations / self.wall_seconds

    @property
    def ever_aborted(self) -> list[int]:
        """IDs of transactions that aborted at least once."""
        return [txn_id for txn_id, count in sorted(self.txn_aborts.items())
                if count > 0]

    @property
    def admission_rpcs(self) -> int:
        """Admission round-trips the service backend made (0 locally)."""
        return len(self.admission_latencies)

    def admission_latency_ms(self, q: float) -> float:
        """The ``q``-th percentile admission RPC latency in
        milliseconds (nearest-rank; 0.0 when the run was in-process)."""
        if not self.admission_latencies:
            return 0.0
        ordered = sorted(self.admission_latencies)
        rank = max(0, min(len(ordered) - 1,
                          round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank] * 1000.0

    def summary(self) -> str:
        return (f"{self.ds_name}/{self.policy}: {self.commits} commits, "
                f"{self.aborts} aborts, {self.operations} ops, "
                f"{self.conflicts}/{self.conflict_checks} conflicts, "
                f"serializable={self.serializable}")

    def decision_digest(self) -> str:
        """A stable hash of everything the admission *decisions*
        determined: commits, aborts, operation counts, commit order,
        per-transaction outcomes, and both final states.

        Deliberately excludes how the decisions were reached — check
        counts (flat and sharded managers scan different volumes),
        ``compiled_hits``, wall time — so the digest is the equality
        the invariants demand: compiled == interpreted and
        flat == sharded must produce byte-identical digests for the
        same (structure, workload, policy, seed) at ``workers=1``.
        """
        from ..engine.fingerprint import stable_hash
        return stable_hash({
            "ds_name": self.ds_name,
            "policy": self.policy,
            "conflict_mode": self.conflict_mode,
            "commits": self.commits,
            "aborts": self.aborts,
            "operations": self.operations,
            "committed_operations": self.committed_operations,
            "commit_order": self.commit_order,
            "txn_aborts": sorted(self.txn_aborts.items()),
            "txn_statuses": sorted(
                (txn_id, status.name)
                for txn_id, status in self.txn_statuses.items()),
            "final_state": repr(self.final_state),
            "serial_state": repr(self.serial_state),
        })


class SpeculativeExecutor:
    """Runs transactions speculatively over one shared structure."""

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 seed: int = 0, max_rounds: int = 10000,
                 conflict_mode: str = "abort", registry=None,
                 workers: int = 1, batch: int = 1, shards: int = 1,
                 adaptive: str | None = None,
                 stable: bool = False, compiled: bool = False,
                 backend: AdmissionBackend | None = None) -> None:
        if conflict_mode not in ("abort", "block"):
            raise ValueError(f"unknown conflict mode {conflict_mode!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        backend = resolve_backend(backend, registry)
        if workers > 1 and not backend.supports_threads:
            raise ValueError(
                f"backend {backend.kind!r} cannot share its admission "
                f"manager across threads; run workers=1 per process and "
                f"scale with more client processes")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if shards < 1 or shards > VIRTUAL_REGIONS \
                or shards & (shards - 1):
            raise ValueError(
                f"shards must be a power of two in "
                f"[1, {VIRTUAL_REGIONS}], got {shards}")
        if adaptive == "none":
            adaptive = None
        make_controller(adaptive)  # validate the name eagerly
        from ..api import resolve_registry
        registry = resolve_registry(registry)
        self.ds_name = ds_name
        self.registry = registry
        #: Where admission decisions come from (local or service);
        #: decision identity across backends is the service invariant.
        self.backend = backend
        self.spec = registry.spec(ds_name)
        self.policy = policy
        self.seed = seed
        self.max_rounds = max_rounds
        #: "abort" rolls the requester back immediately; "block" lets it
        #: wait for the conflicting transaction, aborting only to break
        #: a deadlock (the waits-for cycle fallback of real systems).
        self.conflict_mode = conflict_mode
        self.workers = workers
        self.batch = batch
        self.shards = shards
        self.adaptive = adaptive
        #: Arm the drift guard with compiled drift-stable conditions
        #: (requires a prior Session.compile_stable / CLI `stability`).
        self.stable = stable
        #: Lower every armed condition into slot-specialized closures
        #: at arm time (:mod:`repro.compiled`); decisions identical.
        self.compiled = compiled

    def run(self, programs: list[list[tuple[str, tuple[Any, ...]]]],
            setup: list[tuple[str, tuple[Any, ...]]] | None = None) \
            -> ExecutionReport:
        """Execute the transaction ``programs`` to completion.

        ``setup`` is an optional load-phase program: applied to the
        fresh structure before speculation starts, outside any
        transaction — never logged, never rolled back, and excluded
        from the timed window and the operation counts.
        """
        impl = self.registry.new_instance(self.ds_name)
        for op_name, args in (setup or ()):
            invoke(impl, self.spec.operations[op_name], args)
        start = time.perf_counter()
        manager = self.backend.conflict_manager(self.ds_name,
                                                policy=self.policy,
                                                shards=self.shards,
                                                stable=self.stable,
                                                compiled=self.compiled)
        transactions = [Transaction(i, list(ops))
                        for i, ops in enumerate(programs)]
        report = ExecutionReport(ds_name=self.ds_name, policy=self.policy,
                                 conflict_mode=self.conflict_mode,
                                 workers=self.workers, shards=self.shards,
                                 adaptive=self.adaptive,
                                 stable=self.stable,
                                 compiled=self.compiled,
                                 backend=self.backend.kind)
        try:
            try:
                if self.workers == 1 or len(transactions) <= 1:
                    self._run_serial(transactions, impl, manager, report)
                elif self.shards > 1:
                    self._run_threaded_sharded(transactions, impl,
                                               manager, report)
                else:
                    self._run_threaded(transactions, impl, manager, report)
            except RoundsExhausted:
                self._quench(transactions, impl, manager, report)
            # Throughput covers execution only; the serial-replay
            # serializability validation below is diagnostics, not work.
            report.wall_seconds = time.perf_counter() - start
            report.conflict_checks = manager.checks
            report.conflicts = manager.conflicts
            report.drift_checks = manager.drift_checks
            report.stable_hits = manager.stable_hits
            report.proved_hits = manager.proved_hits
            report.synthesized_hits = manager.synthesized_hits
            report.drift_fallbacks = manager.fallbacks
            report.fallback_admits = manager.fallback_admits
            report.undo_refusals = manager.undo_refusals
            report.compiled_hits = manager.compiled_hits
            report.eval_errors = manager.eval_errors
            report.eval_error_sample = manager.eval_error_samples()
            report.eval_errors_dropped = manager.eval_errors_dropped
            report.admission_latencies = list(
                getattr(manager, "admission_latencies", ()))
            report.shard_stats = manager.shard_stats()
        finally:
            manager.close()
        report.txn_aborts = {t.txn_id: t.aborts for t in transactions}
        report.txn_statuses = {t.txn_id: t.status for t in transactions}
        report.committed_operations = sum(
            len(programs[txn_id]) for txn_id in report.commit_order)
        report.final_state = impl.abstract_state()
        report.serial_state = self._serial_replay(programs,
                                                  report.commit_order,
                                                  setup)
        return report

    # -- deterministic serial scheduler --------------------------------------

    def _run_serial(self, transactions: list[Transaction], impl: Any,
                    manager: ConflictManager,
                    report: ExecutionReport) -> None:
        rng = random.Random(self.seed)
        controller = make_controller(self.adaptive, seed=self.seed)
        rounds = 0
        blocked: set[int] = set()
        while any(t.status in ACTIVE_STATUSES for t in transactions):
            rounds += 1
            if rounds > self.max_rounds:
                raise RoundsExhausted(
                    f"scheduling budget exhausted after "
                    f"{self.max_rounds} rounds")
            candidates = [t for t in transactions
                          if t.status in ACTIVE_STATUSES
                          and t.txn_id not in blocked]
            if controller is not None:
                runnable = [t for t in candidates
                            if not controller.deferred(t, rounds)]
                if candidates and not runnable:
                    continue  # everyone is backing off: let rounds tick
            else:
                runnable = candidates
            if not runnable:
                self._break_deadlock(transactions, blocked, impl,
                                     manager, report)
                continue
            self._step(rng.choice(runnable), impl, manager, report,
                       blocked, controller=controller, now=rounds)

    # -- batched multi-worker scheduler ---------------------------------------

    def _run_threaded(self, transactions: list[Transaction], impl: Any,
                      manager: ConflictManager,
                      report: ExecutionReport) -> None:
        """Thread workers over the lock-protected shared state.

        One condition variable guards the structure, the conflict
        manager, and every transaction; workers hold it for up to
        ``batch`` operations of one of their transactions, wait on it
        while all their transactions are blocked, and are notified on
        every commit, abort, or deadlock break.
        """
        cond = threading.Condition()
        blocked: set[int] = set()
        errors: list[BaseException] = []
        controller = make_controller(self.adaptive, seed=self.seed,
                                     wall_clock=True)

        def attempt(txn: Transaction) -> None:
            # Runs with ``cond`` held: the whole batch is one lock hold.
            progressed = False
            for _ in range(self.batch):
                if not self._step(txn, impl, manager, report, blocked,
                                  controller=controller,
                                  now=time.monotonic()):
                    break
                progressed = True
                if txn.status is not TxnStatus.RUNNING:
                    break  # committed
            if progressed:
                cond.notify_all()

        self._run_workers(transactions, impl, manager, report, cond,
                          blocked, errors, controller, attempt,
                          step_inside_cond=True)

    # -- fine-grained sharded scheduler ----------------------------------------

    def _run_threaded_sharded(self, transactions: list[Transaction],
                              impl: Any, manager: ConflictManager,
                              report: ExecutionReport) -> None:
        """Per-shard lock acquisition in deterministic (ascending) shard
        order; the global condition variable only coordinates blocked
        transactions and deadlock breaks.

        Lock order is ``cond > shard locks (ascending) > state lock``:
        the deadlock breaker acquires shard locks *under* ``cond`` (its
        victims are provably quiescent — a transaction being stepped is
        never in ``blocked``, and the breaker only fires when every
        active transaction is), while the step path acquires ``cond``
        only *after* releasing its shard locks, so no cycle can form.
        """
        cond = threading.Condition()
        #: Innermost lock: the concrete structure and report counters.
        state_lock = threading.Lock()
        blocked: set[int] = set()
        errors: list[BaseException] = []
        controller = make_controller(self.adaptive, seed=self.seed,
                                     wall_clock=True)

        def attempt(txn: Transaction) -> None:
            # Runs outside ``cond``: admission and application only
            # hold the shards the operation (and its transaction's
            # history) can interact with.
            self._step_sharded(txn, impl, manager, report, blocked,
                               cond, state_lock, controller)

        self._run_workers(transactions, impl, manager, report, cond,
                          blocked, errors, controller, attempt,
                          step_inside_cond=False)

    def _run_workers(self, transactions: list[Transaction], impl: Any,
                     manager: ConflictManager, report: ExecutionReport,
                     cond: threading.Condition, blocked: set[int],
                     errors: list[BaseException],
                     controller: AdaptiveController | None,
                     attempt, step_inside_cond: bool) -> None:
        """The scheduling loop shared by both threaded modes: pick a
        runnable owned transaction under ``cond``, detect global
        deadlock, and hand the transaction to ``attempt`` — with
        ``cond`` still held (flat batched mode) or after releasing it
        (fine-grained sharded mode)."""
        budget = [self.max_rounds * self.workers]

        def drive(wid: int) -> None:
            rng = random.Random(f"{self.seed}:{wid}")
            mine = transactions[wid::self.workers]
            while True:
                with cond:
                    if errors:
                        return
                    active = [t for t in mine
                              if t.status in ACTIVE_STATUSES]
                    if not active:
                        cond.notify_all()
                        return
                    runnable = [t for t in active
                                if t.txn_id not in blocked]
                    if controller is not None:
                        runnable = [t for t in runnable
                                    if not controller.deferred(
                                        t, time.monotonic())]
                    if not runnable:
                        globally_active = [
                            t for t in transactions
                            if t.status in ACTIVE_STATUSES]
                        if all(t.txn_id in blocked
                               for t in globally_active):
                            self._spend_budget(budget)
                            self._break_deadlock(transactions, blocked,
                                                 impl, manager, report)
                            cond.notify_all()
                        else:
                            # Another worker's transaction can still run;
                            # wake on its commit/abort (timeout is a
                            # liveness belt-and-braces only).  Idle waits
                            # spend no convergence budget: only step
                            # attempts and deadlock breaks do, so a slow
                            # but progressing peer never fails the run.
                            cond.wait(timeout=0.01)
                        continue
                    self._spend_budget(budget)
                    txn = rng.choice(runnable)
                    if step_inside_cond:
                        attempt(txn)
                        continue
                attempt(txn)

        def worker(wid: int) -> None:
            try:
                drive(wid)
            except BaseException as exc:  # propagate to the caller
                with cond:
                    errors.append(exc)
                    cond.notify_all()

        threads = [threading.Thread(target=worker, args=(wid,),
                                    name=f"repro-exec-{wid}")
                   for wid in range(min(self.workers,
                                        len(transactions)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    @staticmethod
    def _spend_budget(budget: list[int]) -> None:
        budget[0] -= 1
        if budget[0] < 0:
            raise RoundsExhausted("scheduling budget exhausted")

    # -- one scheduling step ---------------------------------------------------

    def _step(self, txn: Transaction, impl: Any,
              manager: ConflictManager, report: ExecutionReport,
              blocked: set[int],
              controller: AdaptiveController | None = None,
              now: float = 0.0) -> bool:
        """Advance ``txn`` by one operation (or commit it if finished).

        Returns True when the transaction made progress, False when it
        hit a conflict (and was aborted or blocked per the conflict
        mode and the adaptive controller).
        """
        if txn.status is TxnStatus.ABORTED:
            txn.restart()
        if txn.finished:
            txn.status = TxnStatus.COMMITTED
            manager.release(txn.txn_id, reason="commit")
            report.commits += 1
            report.commit_order.append(txn.txn_id)
            if controller is not None:
                controller.on_commit(txn)
            blocked.clear()  # waiters may be admissible now
            return True
        op_name, args = txn.current_op()
        op = self.spec.operations[op_name]
        before = impl.abstract_state()
        shard_ids = manager.shards_for(op_name, args)
        admitted, holder = manager.check_many(txn.txn_id, op_name, args,
                                              before,
                                              shard_ids=shard_ids)
        if controller is not None:
            controller.on_outcome(shard_ids, not admitted)
        if not admitted:
            action = self.conflict_mode
            if controller is not None:
                action = controller.on_conflict(txn, holder, shard_ids,
                                                action)
            if action == "block":
                blocked.add(txn.txn_id)
            else:
                self._abort(txn, impl, manager, report)
                if controller is not None:
                    controller.on_abort(txn, now)
                    # The abort released this transaction's outstanding
                    # operations, so a blocked waiter's conflict partner
                    # may be gone: wake them all (a spurious wake just
                    # re-blocks).  Without this, adaptive modes that mix
                    # block and abort responses can livelock — the abort
                    # churn keeps the scheduler busy, the deadlock
                    # breaker never fires, and blocked transactions
                    # starve.  Pure modes never mix the two responses,
                    # so their behaviour is unchanged.
                    blocked.clear()
            return False
        # Execute through the canonical concrete dispatch; keep the raw
        # return value for the undo log even when the client discards it
        # (the paper: "any system that applies such inverse operations
        # must therefore store the return value").
        raw_result, visible = invoke_concrete(impl, op, args)
        after = impl.abstract_state()
        manager.record(LoggedOperation(
            txn_id=txn.txn_id, op_name=op_name, args=args,
            result=visible, before=before, after=after))
        txn.record(op, args, raw_result, visible)
        report.operations += 1
        return True

    def _step_sharded(self, txn: Transaction, impl: Any,
                      manager: ConflictManager, report: ExecutionReport,
                      blocked: set[int], cond: threading.Condition,
                      state_lock: threading.Lock,
                      controller: AdaptiveController | None) -> bool:
        """One step of the fine-grained threaded mode.

        Admission, application, and logging happen while holding exactly
        the shard locks the operation can interact with, plus every
        shard the transaction already touched (so a conflict can roll
        the whole transaction back without acquiring further locks).
        ``cond`` is only taken after the shard locks are released.
        """
        if txn.status is TxnStatus.ABORTED:
            txn.restart()
        if txn.finished:
            with manager.locked(manager.touched(txn.txn_id)):
                manager.release(txn.txn_id, reason="commit")
            txn.status = TxnStatus.COMMITTED
            with cond:
                report.commits += 1
                report.commit_order.append(txn.txn_id)
                if controller is not None:
                    controller.on_commit(txn)
                blocked.clear()  # waiters may be admissible now
                cond.notify_all()
            return True
        op_name, args = txn.current_op()
        op = self.spec.operations[op_name]
        op_shards = manager.shards_for(op_name, args)
        lockset = set(op_shards).union(manager.touched(txn.txn_id))
        outcome = "block"
        holder: int | None = None
        with manager.locked(lockset):
            with state_lock:
                before = impl.abstract_state()
            admitted, holder = manager.check_many(
                txn.txn_id, op_name, args, before, shard_ids=op_shards)
            if controller is not None:
                controller.on_outcome(op_shards, not admitted)
            if admitted:
                with state_lock:
                    raw_result, visible = invoke_concrete(impl, op, args)
                    after = impl.abstract_state()
                    report.operations += 1
                manager.record(LoggedOperation(
                    txn_id=txn.txn_id, op_name=op_name, args=args,
                    result=visible, before=before, after=after))
                txn.record(op, args, raw_result, visible)
                outcome = "admitted"
            else:
                action = self.conflict_mode
                if controller is not None:
                    action = controller.on_conflict(txn, holder,
                                                    op_shards, action)
                if action == "abort":
                    # The lockset covers every shard this transaction
                    # logged into, so the rollback and release happen
                    # atomically w.r.t. any interacting admission.
                    with state_lock:
                        rollback(impl, self.ds_name, txn.undo_log,
                                 registry=self.registry)
                    manager.release(txn.txn_id, reason="abort")
                    txn.mark_aborted()
                    outcome = "abort"
        # cond is never acquired while shard locks are held (lock order).
        if outcome == "abort":
            with cond:
                report.aborts += 1
                if controller is not None:
                    controller.on_abort(txn, time.monotonic())
                    # As in _step: the released log may unblock waiters;
                    # only adaptive modes mix abort and block responses.
                    blocked.clear()
                cond.notify_all()
        elif outcome == "block":
            with cond:
                blocked.add(txn.txn_id)
        return outcome == "admitted"

    def _quench(self, transactions: list[Transaction], impl: Any,
                manager: ConflictManager,
                report: ExecutionReport) -> None:
        """Resolve a :class:`RoundsExhausted` episode into a report:
        roll back every transaction that still has speculative effects,
        so the concrete structure holds exactly the committed prefix —
        which the serial replay then validates as usual."""
        for txn in transactions:
            if txn.status is TxnStatus.RUNNING:
                self._abort(txn, impl, manager, report)
        report.rounds_exhausted = 1

    def _break_deadlock(self, transactions: list[Transaction],
                        blocked: set[int], impl: Any,
                        manager: ConflictManager,
                        report: ExecutionReport) -> Transaction:
        """Every active transaction is blocked: break the deadlock by
        keeping the most-advanced transaction as the sole survivor
        (lowest txn_id on ties) and aborting the rest.  With no other
        holders left, the survivor's admission checks succeed trivially,
        so it runs to commit — guaranteeing global progress on every
        deadlock episode.  Returns the survivor."""
        active = [t for t in transactions if t.status in ACTIVE_STATUSES]
        survivor = max(active, key=lambda t: (t.next_op, -t.txn_id))
        for txn in active:
            if txn is not survivor and txn.next_op > 0:
                self._abort(txn, impl, manager, report)
        blocked.clear()
        blocked.update(t.txn_id for t in active if t is not survivor)
        return survivor

    def _abort(self, txn: Transaction, impl: Any,
               manager: ConflictManager,
               report: ExecutionReport) -> None:
        """Roll back a transaction's speculative effects; it retries from
        scratch the next time the scheduler picks it."""
        rollback(impl, self.ds_name, txn.undo_log, registry=self.registry)
        manager.release(txn.txn_id, reason="abort")
        txn.mark_aborted()
        report.aborts += 1

    def _serial_replay(self, programs: list[list[tuple[str, tuple]]],
                       order: list[int],
                       setup: list[tuple[str, tuple]] | None = None) \
            -> Record:
        """Replay committed transactions serially in commit order."""
        impl = self.registry.new_instance(self.ds_name)
        for op_name, args in (setup or ()):
            invoke(impl, self.spec.operations[op_name], args)
        for txn_id in order:
            for op_name, args in programs[txn_id]:
                invoke(impl, self.spec.operations[op_name], args)
        return impl.abstract_state()
