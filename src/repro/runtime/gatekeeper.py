"""Gatekeeper: dynamic commutativity checking (Sections 1, 2.4, 6).

"A system would use such a between condition just before executing the
add(v2) operation to dynamically check if this operation commutes with a
previously executed contains(v1) operation."  The gatekeeper holds, per
outstanding (uncommitted) operation, the abstract state snapshot before
it ran and its return value; an incoming operation is admitted only if
the between condition of every (logged op; incoming op) pair holds.

Conflict-detection policies (the lattice of mechanisms from [29], see
Chapter 6):

- ``"commutativity"``: the verified sound-and-complete between
  conditions — maximal concurrency;
- ``"read-write"``: classical reader/writer conflicts (two operations
  conflict iff they touch the same structure and at least one mutates) —
  sound but far less permissive;
- ``"mutex"``: any two operations conflict — serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..commutativity.conditions import Kind
from ..eval.interpreter import EvalContext, EvalError, evaluate
from ..eval.values import Record
from ..specs import DataStructureSpec

POLICIES = ("commutativity", "read-write", "mutex")


@dataclass(frozen=True)
class LoggedOperation:
    """An executed-but-uncommitted operation."""

    txn_id: int
    op_name: str
    args: tuple[Any, ...]
    result: Any
    #: Abstract state immediately before the operation ran.
    before: Record
    #: Abstract state immediately after the operation ran.
    after: Record


class Gatekeeper:
    """Admission control for operations on one shared data structure."""

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 registry=None) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        from ..api import resolve_registry
        registry = resolve_registry(registry)
        self.ds_name = ds_name
        self.registry = registry
        self.spec: DataStructureSpec = registry.spec(ds_name)
        self.policy = policy
        self._log: list[LoggedOperation] = []
        self._ctx = EvalContext(observe=self.spec.observe)
        self.checks = 0
        self.conflicts = 0

    # -- admission ----------------------------------------------------------

    def admits(self, txn_id: int, op_name: str, args: tuple[Any, ...],
               current: Record) -> bool:
        """Whether ``txn_id`` may run ``op_name(args)`` now, given the
        outstanding operations of other transactions."""
        for logged in self._log:
            if logged.txn_id == txn_id:
                continue
            self.checks += 1
            if not self._pair_commutes(logged, op_name, args, current):
                self.conflicts += 1
                return False
        return True

    def _pair_commutes(self, logged: LoggedOperation, op_name: str,
                       args: tuple[Any, ...], current: Record) -> bool:
        if self.policy == "mutex":
            return False
        op1 = self.spec.operations[logged.op_name]
        op2 = self.spec.operations[op_name]
        if self.policy == "read-write":
            return not (op1.mutator or op2.mutator)
        cond = self.registry.condition(self.ds_name, logged.op_name,
                                       op_name, Kind.BETWEEN)
        env: dict[str, Any] = {
            "s1": logged.before, "s2": current,
        }
        for param, value in zip(op1.params, logged.args):
            env[f"{param.name}1"] = value
        for param, value in zip(op2.params, args):
            env[f"{param.name}2"] = value
        if op1.result_sort is not None:
            env["r1"] = logged.result
        try:
            return bool(evaluate(cond.dynamic_formula, env, self._ctx))
        except EvalError:
            # The condition's vocabulary is partial: e.g. an ArrayList
            # between condition may index the *logged* operation's older
            # snapshot with the incoming operation's argument, which is
            # only guaranteed in-range against the current state.  An
            # unevaluable condition cannot certify commutativity, so
            # report a conflict — conservative (possibly an unnecessary
            # abort) but never an unsound admission.
            return False

    # -- log maintenance ------------------------------------------------------

    def record(self, entry: LoggedOperation) -> None:
        """Log an executed operation as outstanding."""
        self._log.append(entry)

    def release(self, txn_id: int) -> None:
        """Drop all outstanding operations of ``txn_id`` (commit/abort)."""
        self._log = [e for e in self._log if e.txn_id != txn_id]

    def outstanding(self, txn_id: int | None = None) -> list[LoggedOperation]:
        if txn_id is None:
            return list(self._log)
        return [e for e in self._log if e.txn_id == txn_id]
