"""Conflict managers: dynamic commutativity checking (Sections 1, 2.4, 6).

"A system would use such a between condition just before executing the
add(v2) operation to dynamically check if this operation commutes with a
previously executed contains(v1) operation."  The conflict manager
holds, per outstanding (uncommitted) operation, the abstract state
snapshot before it ran and its return value; an incoming operation is
admitted only if the between condition of every (logged op; incoming op)
pair holds.

Conflict-detection policies (the lattice of mechanisms from [29], see
Chapter 6):

- ``"commutativity"``: the verified sound-and-complete between
  conditions — maximal concurrency;
- ``"read-write"``: classical reader/writer conflicts (two operations
  conflict iff they touch the same structure and at least one mutates) —
  sound but far less permissive;
- ``"mutex"``: any two operations conflict — serial execution.

Two concrete managers share the pair-checking machinery:

- :class:`Gatekeeper` — the flat log: one list of outstanding
  operations, scanned in full on every admission.  One shard, one lock.
- :class:`ShardedGatekeeper` — the log partitioned into region shards
  by a per-family :mod:`~repro.runtime.sharding` router.  Each shard
  has its own lock and its own log; an incoming operation is checked
  only against the shards it can interact with, so operations in
  disjoint regions admit concurrently without scanning (or locking) one
  global list.

Counters are kept per shard and incremented under that shard's lock, so
concurrent admission never loses an update; ``checks``/``conflicts``
aggregate over shards and :meth:`ConflictManager.shard_stats` surfaces
the per-shard breakdown.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..commutativity.conditions import Kind
from ..eval.interpreter import EvalContext, EvalError, evaluate
from ..eval.values import Record
from ..logic.free_vars import free_vars
from ..specs import DataStructureSpec
from .sharding import (ShardRouter, VIRTUAL_REGIONS, normalize_route,
                       single_region_router)

POLICIES = ("commutativity", "read-write", "mutex")

#: Abstract-state variables a condition formula may mention.
_STATE_VARS = frozenset({"s1", "s2", "s3"})


@dataclass(frozen=True)
class LoggedOperation:
    """An executed-but-uncommitted operation."""

    txn_id: int
    op_name: str
    args: tuple[Any, ...]
    result: Any
    #: Abstract state immediately before the operation ran.
    before: Record
    #: Abstract state immediately after the operation ran.
    after: Record


class _Shard:
    """One region of the outstanding-operation log: its entries, its
    lock, and its admission counters (all mutated under the lock)."""

    __slots__ = ("shard_id", "lock", "log", "checks", "conflicts")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.lock = threading.RLock()
        self.log: list[LoggedOperation] = []
        self.checks = 0
        self.conflicts = 0


class ConflictManager:
    """Admission control for operations on one shared data structure.

    The base class owns the shard array, the pair-commutativity check,
    and the log-maintenance protocol; subclasses only decide *routing*
    (:meth:`shards_for`).  Callers that need admission and application
    to be atomic (the threaded executor) hold the relevant shard locks
    across the whole step via :meth:`locked`; the locks are reentrant,
    so the internal locking here composes with that.
    """

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 registry=None, shards: int = 1) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        if shards < 1 or shards > VIRTUAL_REGIONS \
                or shards & (shards - 1):
            raise ValueError(
                f"shards must be a power of two in "
                f"[1, {VIRTUAL_REGIONS}], got {shards}")
        from ..api import resolve_registry
        registry = resolve_registry(registry)
        self.ds_name = ds_name
        self.registry = registry
        self.spec: DataStructureSpec = registry.spec(ds_name)
        self.policy = policy
        self.num_shards = shards
        self._shards = [_Shard(i) for i in range(shards)]
        #: The family's router doubles as the universal-commutation
        #: oracle inside _pair_commutes (for every manager, flat
        #: included) — see :data:`~repro.runtime.sharding.VIRTUAL_REGIONS`.
        self._family_router: ShardRouter | None = \
            registry.shard_router(ds_name)
        self._virtual_routes: dict[tuple[str, tuple], frozenset[int] | None] = {}
        #: txn_id -> shard ids holding at least one of its entries.
        self._touched: dict[int, set[int]] = {}
        #: (m1, m2) -> whether the pair's between condition mentions
        #: abstract state (see the drift guard in _pair_commutes).
        self._drift_fragile: dict[tuple[str, str], bool] = {}
        self._ctx = EvalContext(observe=self.spec.observe)

    # -- routing (subclass hooks) ----------------------------------------------

    def store_regions(self, op_name: str,
                      args: tuple[Any, ...]) -> tuple[int, ...]:
        """The regions a logged ``op_name(args)`` entry is stored in."""
        return (0,)

    def scan_regions(self, op_name: str,
                     args: tuple[Any, ...]) -> tuple[int, ...]:
        """The regions an incoming ``op_name(args)`` admission scans.

        Invariant (what makes skipping sound *and* complete): for every
        pair of operations that do not unconditionally commute, the
        incoming operation's scan regions intersect the logged
        operation's store regions.
        """
        return (0,)

    def shards_for(self, op_name: str,
                   args: tuple[Any, ...]) -> tuple[int, ...]:
        """The regions ``op_name(args)`` can interact with (its scan
        set) — the lock set an atomic admit+apply step must hold."""
        return self.scan_regions(op_name, args)

    def touched(self, txn_id: int) -> tuple[int, ...]:
        """The shards holding outstanding operations of ``txn_id``."""
        return tuple(sorted(self._touched.get(txn_id, ())))

    @contextmanager
    def locked(self, shard_ids: Iterable[int]):
        """Hold the given shard locks, in ascending id order (every
        caller uses the same order, so lock acquisition cannot cycle)."""
        ids = sorted(set(shard_ids))
        for sid in ids:
            self._shards[sid].lock.acquire()
        try:
            yield
        finally:
            for sid in reversed(ids):
                self._shards[sid].lock.release()

    # -- admission ------------------------------------------------------------

    def admits(self, txn_id: int, op_name: str, args: tuple[Any, ...],
               current: Record) -> bool:
        """Whether ``txn_id`` may run ``op_name(args)`` now, given the
        outstanding operations of other transactions."""
        return self.admits_ex(txn_id, op_name, args, current)[0]

    def admits_ex(self, txn_id: int, op_name: str, args: tuple[Any, ...],
                  current: Record,
                  shard_ids: Sequence[int] | None = None) \
            -> tuple[bool, int | None]:
        """:meth:`admits`, plus the id of the first conflicting
        transaction (for wait-die ordering); checks only ``shard_ids``
        when given (they must equal ``shards_for(op_name, args)``).

        An operation logged in several shards (e.g. ``size``) is checked
        once: scanning shards in ascending id order and deduplicating by
        entry identity keeps the counters exact under multi-shard
        routing, so aggregated reports never double- or under-count.
        """
        if shard_ids is None:
            shard_ids = self.shards_for(op_name, args)
        seen: set[int] = set()
        multi = len(shard_ids) > 1
        for sid in shard_ids:
            shard = self._shards[sid]
            with shard.lock:
                for logged in shard.log:
                    if logged.txn_id == txn_id:
                        continue
                    if multi:
                        if id(logged) in seen:
                            continue
                        seen.add(id(logged))
                    shard.checks += 1
                    if not self._pair_commutes(logged, op_name, args,
                                               current):
                        shard.conflicts += 1
                        return False, logged.txn_id
        return True, None

    def _virtual_route(self, op_name: str,
                       args: tuple[Any, ...]) -> frozenset[int] | None:
        """The operation's interaction regions at the fixed virtual
        granularity (None = interacts with everything); memoized."""
        key = (op_name, args)
        try:
            return self._virtual_routes[key]
        except KeyError:
            ids = self._family_router(op_name, args, VIRTUAL_REGIONS)
            route = None if ids is None else frozenset(
                normalize_route(ids, VIRTUAL_REGIONS))
            self._virtual_routes[key] = route
            return route

    def _pair_commutes(self, logged: LoggedOperation, op_name: str,
                       args: tuple[Any, ...], current: Record) -> bool:
        if self.policy == "mutex":
            return False
        op1 = self.spec.operations[logged.op_name]
        op2 = self.spec.operations[op_name]
        if self.policy == "read-write":
            return not (op1.mutator or op2.mutator)
        cond = self.registry.condition(self.ds_name, logged.op_name,
                                       op_name, Kind.BETWEEN)
        if current != logged.after and self._references_state(cond):
            # Drift guard.  The between conditions are verified in the
            # environment where ``s2`` is the state *immediately after*
            # the logged operation ran; once other operations have
            # executed, that environment is gone, and a condition that
            # mentions abstract state (ArrayList's index arithmetic,
            # the size conditions) may evaluate against stale contents
            # — e.g. a value-coincidence ``add_at;set`` admission that
            # is wrong in the drifted list.  Conditions over arguments
            # and return values only were verified to match the commute
            # relation in *every* enumerated state, so they transfer to
            # any context; state-referencing ones are only trusted in
            # the exact state they were verified for.  The router
            # oracle still admits region-disjoint pairs (they commute
            # in every state); everything else is a conservative
            # conflict — possibly an unnecessary abort, never unsound.
            return self._virtually_disjoint(logged, op_name, args)
        env: dict[str, Any] = {
            "s1": logged.before, "s2": current,
        }
        for param, value in zip(op1.params, logged.args):
            env[f"{param.name}1"] = value
        for param, value in zip(op2.params, args):
            env[f"{param.name}2"] = value
        if op1.result_sort is not None:
            env["r1"] = logged.result
        try:
            return bool(evaluate(cond.dynamic_formula, env, self._ctx))
        except EvalError:
            # The condition's vocabulary is partial: e.g. an ArrayList
            # between condition may index the *logged* operation's older
            # snapshot with the incoming operation's argument, which is
            # only guaranteed in-range against the current state.  An
            # unevaluable condition cannot certify commutativity, so
            # fall back to the router oracle, then report a conflict —
            # conservative (possibly an unnecessary abort) but never an
            # unsound admission.
            return self._virtually_disjoint(logged, op_name, args)

    def _virtually_disjoint(self, logged: LoggedOperation, op_name: str,
                            args: tuple[Any, ...]) -> bool:
        """The universal-commutation oracle behind both conservative
        paths: operations whose routes at the fixed virtual granularity
        are disjoint commute in *every* state (the router soundness
        contract), so they may be admitted even when the condition
        cannot be trusted or evaluated.  Physical shard counts are
        powers of two dividing the virtual granularity, so every pair a
        sharded scan prunes is virtually disjoint too — which is why
        flat and sharded managers decide identically."""
        if self._family_router is None:
            return False
        route1 = self._virtual_route(logged.op_name, logged.args)
        route2 = self._virtual_route(op_name, args)
        return route1 is not None and route2 is not None \
            and not (route1 & route2)

    def _references_state(self, cond) -> bool:
        """Whether the pair's dynamic formula mentions abstract state
        (cached per operation pair)."""
        key = (cond.m1, cond.m2)
        fragile = self._drift_fragile.get(key)
        if fragile is None:
            fragile = bool(_STATE_VARS & free_vars(cond.dynamic_formula))
            self._drift_fragile[key] = fragile
        return fragile

    # -- log maintenance ------------------------------------------------------

    def record(self, entry: LoggedOperation) -> tuple[int, ...]:
        """Log an executed operation as outstanding, in every region it
        is stored in; returns the region ids."""
        shard_ids = self.store_regions(entry.op_name, entry.args)
        for sid in shard_ids:
            shard = self._shards[sid]
            with shard.lock:
                shard.log.append(entry)
        self._touched.setdefault(entry.txn_id, set()).update(shard_ids)
        return shard_ids

    def release(self, txn_id: int) -> None:
        """Drop all outstanding operations of ``txn_id`` (commit/abort)."""
        for sid in sorted(self._touched.pop(txn_id, ())):
            shard = self._shards[sid]
            with shard.lock:
                shard.log = [e for e in shard.log if e.txn_id != txn_id]

    def outstanding(self, txn_id: int | None = None) -> list[LoggedOperation]:
        entries: list[LoggedOperation] = []
        seen: set[int] = set()
        for shard in self._shards:
            with shard.lock:
                for e in shard.log:
                    if id(e) in seen:
                        continue
                    seen.add(id(e))
                    if txn_id is None or e.txn_id == txn_id:
                        entries.append(e)
        return entries

    # -- counters -------------------------------------------------------------

    @property
    def checks(self) -> int:
        """Pair checks across all shards (each increment happens under
        its shard's lock, so the sum never loses concurrent updates)."""
        return sum(s.checks for s in self._shards)

    @property
    def conflicts(self) -> int:
        """Conflicting pair checks across all shards."""
        return sum(s.conflicts for s in self._shards)

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard admission statistics, for contention reporting."""
        return [{"shard": s.shard_id, "checks": s.checks,
                 "conflicts": s.conflicts, "outstanding": len(s.log)}
                for s in self._shards]


class Gatekeeper(ConflictManager):
    """The flat-log conflict manager: one shard, one lock, every
    admission scans the whole outstanding list — exactly the paper's
    gatekeeper sketch, and the deterministic baseline the sharded
    manager is validated against."""

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 registry=None) -> None:
        super().__init__(ds_name, policy, registry=registry, shards=1)


class ShardedGatekeeper(ConflictManager):
    """The region-partitioned conflict manager.

    A routed operation stores, scans, and *locks* exactly its own
    shards, so operations in disjoint regions admit and apply truly
    concurrently — no shared lock anywhere on their path.  A
    globally-interacting operation (``size``, ``indexOf``, ...) is
    replicated into every shard: that keeps every routed operation's
    scan self-contained (its own shards already hold every entry it
    could conflict with) at the cost of duplicate storage, and the
    identity-dedup in :meth:`ConflictManager.admits_ex` keeps counters
    exact when a multi-shard scan meets a replicated entry.

    Routing only partitions under the ``commutativity`` policy: the
    verified between conditions are what justify skipping a pair check
    (a router may only separate unconditionally-commuting operations).
    ``read-write`` and ``mutex`` conflict regardless of arguments, so
    under those policies every operation routes to shard 0 and the
    manager degenerates to the flat log — decisions are identical to
    :class:`Gatekeeper` under *every* policy.
    """

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 registry=None, shards: int = 2,
                 router: ShardRouter | None = None) -> None:
        super().__init__(ds_name, policy, registry=registry, shards=shards)
        if router is None:
            router = self.registry.shard_router(ds_name)
        if router is None:
            router = single_region_router
        self.router = router
        # Physical pruning and the virtual oracle must agree on the
        # interaction structure (an explicitly-injected router replaces
        # the family default for both; the single-region fallback never
        # declares any pair disjoint, matching the flat manager's
        # oracle-less behaviour for unrouted custom structures).
        self._family_router = router if router is not single_region_router \
            else None

    def _route(self, op_name: str,
               args: tuple[Any, ...]) -> tuple[int, ...]:
        """The operation's shard set (globally-interacting operations
        touch every shard); non-commutativity policies collapse to
        shard 0."""
        if self.policy != "commutativity" or self.num_shards == 1:
            return (0,)
        return normalize_route(self.router(op_name, args, self.num_shards),
                               self.num_shards)

    def store_regions(self, op_name: str,
                      args: tuple[Any, ...]) -> tuple[int, ...]:
        return self._route(op_name, args)

    def scan_regions(self, op_name: str,
                     args: tuple[Any, ...]) -> tuple[int, ...]:
        return self._route(op_name, args)


def conflict_manager(ds_name: str, policy: str = "commutativity",
                     shards: int = 1, registry=None,
                     router: ShardRouter | None = None) -> ConflictManager:
    """The conflict manager for a shard count: the flat
    :class:`Gatekeeper` at ``shards=1`` (byte-for-byte the historical
    behaviour), a :class:`ShardedGatekeeper` above."""
    if shards == 1 and router is None:
        return Gatekeeper(ds_name, policy, registry=registry)
    return ShardedGatekeeper(ds_name, policy, registry=registry,
                             shards=shards, router=router)
