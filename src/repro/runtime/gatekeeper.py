"""Conflict managers: dynamic commutativity checking (Sections 1, 2.4, 6).

"A system would use such a between condition just before executing the
add(v2) operation to dynamically check if this operation commutes with a
previously executed contains(v1) operation."  The conflict manager
holds, per outstanding (uncommitted) operation, the abstract state
snapshot before it ran and its return value; an incoming operation is
admitted only if the between condition of every (logged op; incoming op)
pair holds.

Conflict-detection policies (the lattice of mechanisms from [29], see
Chapter 6):

- ``"commutativity"``: the verified sound-and-complete between
  conditions — maximal concurrency;
- ``"read-write"``: classical reader/writer conflicts (two operations
  conflict iff they touch the same structure and at least one mutates) —
  sound but far less permissive;
- ``"mutex"``: any two operations conflict — serial execution.

Two concrete managers share the pair-checking machinery:

- :class:`Gatekeeper` — the flat log: one list of outstanding
  operations, scanned in full on every admission.  One shard, one lock.
- :class:`ShardedGatekeeper` — the log partitioned into region shards
  by a per-family :mod:`~repro.runtime.sharding` router.  Each shard
  has its own lock and its own log; an incoming operation is checked
  only against the shards it can interact with, so operations in
  disjoint regions admit concurrently without scanning (or locking) one
  global list.

Counters are kept per shard and incremented under that shard's lock, so
concurrent admission never loses an update; ``checks``/``conflicts``
aggregate over shards and :meth:`ConflictManager.shard_stats` surfaces
the per-shard breakdown.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..api.errors import UnknownNameError
from ..commutativity.conditions import Kind
from ..compiled.lowering import SlotMismatch
from ..eval.interpreter import EvalContext, EvalError, evaluate
from ..eval.values import Record
from ..specs import DataStructureSpec
from .sharding import (ShardRouter, VIRTUAL_REGIONS, normalize_route,
                       single_region_router)
from .transaction import resolve_inverse_calls

POLICIES = ("commutativity", "read-write", "mutex")

#: How many EvalError occurrences each shard records in full (the
#: (structure, m1, m2, condition) diagnostic sample; the count is
#: always exact, the sample is a fixed-size ring keeping the *most
#: recent* occurrences — in a long-running admission server the
#: interesting failure is the one happening now, not the one from
#: startup — with every eviction counted in ``eval_error_dropped``).
EVAL_ERROR_SAMPLE = 5


@dataclass(frozen=True)
class LoggedOperation:
    """An executed-but-uncommitted operation."""

    txn_id: int
    op_name: str
    args: tuple[Any, ...]
    result: Any
    #: Abstract state immediately before the operation ran.
    before: Record
    #: Abstract state immediately after the operation ran.
    after: Record


class _Shard:
    """One region of the outstanding-operation log: its entries, its
    lock, and its admission counters (all mutated under the lock).

    ``drift_checks`` counts pair checks that hit the drift guard (a
    state-referencing condition outside its verified environment);
    ``stable_hits`` the subset admitted by a compiled drift-stable
    condition from the bounded sweep, ``proved_hits`` the subset
    admitted by a symbolically *proved* condition (the tier is
    decision-visible, never decision-changing — both admit
    identically); ``fallbacks`` every conservative resolution — a drifted
    check the stable condition could not admit, or an unevaluable
    condition — that consulted the router oracle; ``fallback_admits``
    the subset of those the oracle admitted (the *conservative-fallback
    admissions* the stability compiler exists to replace with semantic
    certificates).

    ``compiled_hits`` counts pair checks decided by a slot-specialized
    compiled closure (:mod:`repro.compiled`) instead of the
    interpreter; ``eval_errors`` counts every condition evaluation
    that raised :class:`~repro.eval.interpreter.EvalError` (between
    *and* stable path), with the first :data:`EVAL_ERROR_SAMPLE`
    occurrences kept in ``eval_error_sample`` so a bench artifact is
    diagnosable down to the failing (pair, condition, message)."""

    __slots__ = ("shard_id", "lock", "log", "checks", "conflicts",
                 "drift_checks", "stable_hits", "proved_hits",
                 "synthesized_hits", "fallbacks", "fallback_admits",
                 "undo_refusals", "compiled_hits", "eval_errors",
                 "eval_error_sample", "eval_error_dropped")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.lock = threading.RLock()
        self.log: list[LoggedOperation] = []
        self.checks = 0
        self.conflicts = 0
        self.drift_checks = 0
        self.stable_hits = 0
        self.proved_hits = 0
        self.synthesized_hits = 0
        self.fallbacks = 0
        self.fallback_admits = 0
        self.undo_refusals = 0
        self.compiled_hits = 0
        self.eval_errors = 0
        #: Fixed-size ring of the most recent EvalError diagnostics;
        #: a long-running server keeps a bounded, *current* sample.
        self.eval_error_sample: deque[dict[str, Any]] = \
            deque(maxlen=EVAL_ERROR_SAMPLE)
        #: Diagnostics evicted from the ring (exact, never sampled).
        self.eval_error_dropped = 0


class ConflictManager:
    """Admission control for operations on one shared data structure.

    The base class owns the shard array, the pair-commutativity check,
    and the log-maintenance protocol; subclasses only decide *routing*
    (:meth:`shards_for`).  Callers that need admission and application
    to be atomic (the threaded executor) hold the relevant shard locks
    across the whole step via :meth:`locked`; the locks are reentrant,
    so the internal locking here composes with that.
    """

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 registry=None, shards: int = 1,
                 stable: bool = False, compiled: bool = False) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        if shards < 1 or shards > VIRTUAL_REGIONS \
                or shards & (shards - 1):
            raise ValueError(
                f"shards must be a power of two in "
                f"[1, {VIRTUAL_REGIONS}], got {shards}")
        from ..api import resolve_registry
        registry = resolve_registry(registry)
        self.ds_name = ds_name
        self.registry = registry
        self.spec: DataStructureSpec = registry.spec(ds_name)
        self.policy = policy
        self.num_shards = shards
        self._shards = [_Shard(i) for i in range(shards)]
        #: The family's router doubles as the universal-commutation
        #: oracle inside _pair_commutes (for every manager, flat
        #: included) — see :data:`~repro.runtime.sharding.VIRTUAL_REGIONS`.
        self._family_router: ShardRouter | None = \
            registry.shard_router(ds_name)
        self._virtual_routes: dict[tuple[str, tuple], frozenset[int] | None] = {}
        #: (op, args, before) -> resolved abstract undo calls (see
        #: :meth:`_undo_plan`).
        self._undo_plans: dict[tuple, tuple | None] = {}
        #: txn_id -> shard ids holding at least one of its entries.
        self._touched: dict[int, set[int]] = {}
        #: (m1, m2) -> compiled drift-stable condition, tried by the
        #: drift guard before the conservative router-oracle fallback.
        self.stable = stable
        self._stable: dict[tuple[str, str], Any] = {}
        if stable:
            if not registry.has_stable_conditions(ds_name):
                raise ValueError(
                    f"stable=True but no drift-stable conditions are "
                    f"registered for {ds_name!r}; run "
                    f"Session.compile_stable() (or `python -m repro "
                    f"stability`) first")
            self._stable = {
                (c.m1, c.m2): c
                for c in registry.stable_conditions(ds_name)}
        self._ctx = EvalContext(observe=self.spec.observe)
        #: (m1, m2) -> catalog between condition.  Memoizes the
        #: registry's linear catalog scan off the hot path (the
        #: catalog is immutable for the lifetime of a manager); both
        #: the compiled and the interpreted mode go through it.
        self._conds: dict[tuple[str, str], Any] = {}
        #: Arm-time admission compilation (:mod:`repro.compiled`):
        #: every catalog between condition and registered stable
        #: condition is lowered into a slot-specialized closure before
        #: the first check, through the process-global compiled-pair
        #: cache.  Only the commutativity policy evaluates conditions,
        #: so only it compiles.
        self.compiled = compiled
        self._admission = None
        #: Compiled mode's undo-commutation memo: the verdict of
        #: :meth:`_undo_commutes` is a pure function of immutable
        #: values (the logged call, its pre-state, the incoming call,
        #: the current state — abstract semantics are deterministic),
        #: and hot-key traffic re-asks the same question constantly.
        #: Record hashes are precomputed, so keys are cheap.  Benign
        #: races on the dict are fine (concurrent shards compute
        #: identical values), same as the virtual-route memo.  Gated
        #: on ``compiled``: the interpreted baseline stays the
        #: measurement control the bench gate compares against.
        self._undo_memo: dict[tuple, bool] = {}
        if compiled and policy == "commutativity" \
                and registry.has_conditions(ds_name):
            from ..compiled import CompiledAdmission
            self._admission = CompiledAdmission(
                self.spec, self._ctx,
                conditions=registry.conditions(ds_name),
                stable_conditions=tuple(self._stable.values()))

    # -- routing (subclass hooks) ----------------------------------------------

    def store_regions(self, op_name: str,
                      args: tuple[Any, ...]) -> tuple[int, ...]:
        """The regions a logged ``op_name(args)`` entry is stored in."""
        return (0,)

    def scan_regions(self, op_name: str,
                     args: tuple[Any, ...]) -> tuple[int, ...]:
        """The regions an incoming ``op_name(args)`` admission scans.

        Invariant (what makes skipping sound *and* complete): for every
        pair of operations that do not unconditionally commute, the
        incoming operation's scan regions intersect the logged
        operation's store regions.
        """
        return (0,)

    def shards_for(self, op_name: str,
                   args: tuple[Any, ...]) -> tuple[int, ...]:
        """The regions ``op_name(args)`` can interact with (its scan
        set) — the lock set an atomic admit+apply step must hold."""
        return self.scan_regions(op_name, args)

    def touched(self, txn_id: int) -> tuple[int, ...]:
        """The shards holding outstanding operations of ``txn_id``."""
        return tuple(sorted(self._touched.get(txn_id, ())))

    @contextmanager
    def locked(self, shard_ids: Iterable[int]):
        """Hold the given shard locks, in ascending id order (every
        caller uses the same order, so lock acquisition cannot cycle)."""
        ids = sorted(set(shard_ids))
        for sid in ids:
            self._shards[sid].lock.acquire()
        try:
            yield
        finally:
            for sid in reversed(ids):
                self._shards[sid].lock.release()

    # -- admission ------------------------------------------------------------

    def admits(self, txn_id: int, op_name: str, args: tuple[Any, ...],
               current: Record) -> bool:
        """Whether ``txn_id`` may run ``op_name(args)`` now, given the
        outstanding operations of other transactions."""
        return self.check_many(txn_id, op_name, args, current)[0]

    def admits_ex(self, txn_id: int, op_name: str, args: tuple[Any, ...],
                  current: Record,
                  shard_ids: Sequence[int] | None = None) \
            -> tuple[bool, int | None]:
        """Compatibility alias for :meth:`check_many`."""
        return self.check_many(txn_id, op_name, args, current,
                               shard_ids=shard_ids)

    def check_many(self, txn_id: int, op_name: str,
                   args: tuple[Any, ...], current: Record,
                   shard_ids: Sequence[int] | None = None) \
            -> tuple[bool, int | None]:
        """The batched admission entry point: one call per lock hold
        sweeps the incoming operation against *every* outstanding
        logged pair across the relevant shards — the executor calls it
        exactly once per scheduling step, so per-call work (routing,
        condition lookup, checker dispatch) is amortized over the whole
        pair batch instead of being re-paid per pair.

        Returns ``(admitted, holder)`` where ``holder`` is the id of
        the first conflicting transaction (for wait-die ordering);
        checks only ``shard_ids`` when given (they must equal
        ``shards_for(op_name, args)``).

        An operation logged in several shards (e.g. ``size``) is checked
        once: scanning shards in ascending id order and deduplicating by
        entry identity keeps the counters exact under multi-shard
        routing, so aggregated reports never double- or under-count.
        """
        admitted, holder, _ = self.check_detail(txn_id, op_name, args,
                                                current,
                                                shard_ids=shard_ids)
        return admitted, holder

    def check_detail(self, txn_id: int, op_name: str,
                     args: tuple[Any, ...], current: Record,
                     shard_ids: Sequence[int] | None = None) \
            -> tuple[bool, int | None, int | None]:
        """:meth:`check_many` plus the shard the first conflict was
        found in (``None`` when admitted).  The conflict shard is what
        lets a shard-partitioned cluster merge per-worker verdicts
        back into the single-process first-conflict order: shards are
        scanned ascending, so the globally first conflict is the one
        with the smallest shard id across workers."""
        if shard_ids is None:
            shard_ids = self.shards_for(op_name, args)
        seen: set[int] = set()
        multi = len(shard_ids) > 1
        for sid in shard_ids:
            shard = self._shards[sid]
            with shard.lock:
                for logged in shard.log:
                    if logged.txn_id == txn_id:
                        continue
                    if multi:
                        if id(logged) in seen:
                            continue
                        seen.add(id(logged))
                    shard.checks += 1
                    if not self._pair_commutes(shard, logged, op_name,
                                               args, current):
                        shard.conflicts += 1
                        return False, logged.txn_id, sid
        return True, None, None

    def _virtual_route(self, op_name: str,
                       args: tuple[Any, ...]) -> frozenset[int] | None:
        """The operation's interaction regions at the fixed virtual
        granularity (None = interacts with everything); memoized."""
        key = (op_name, args)
        try:
            return self._virtual_routes[key]
        except KeyError:
            ids = self._family_router(op_name, args, VIRTUAL_REGIONS)
            route = None if ids is None else frozenset(
                normalize_route(ids, VIRTUAL_REGIONS))
            self._virtual_routes[key] = route
            return route

    def _condition(self, m1: str, m2: str):
        """The pair's catalog between condition, memoized (the
        registry lookup is a linear catalog scan — too slow to re-run
        per pair check)."""
        key = (m1, m2)
        try:
            return self._conds[key]
        except KeyError:
            cond = self.registry.condition(self.ds_name, m1, m2,
                                           Kind.BETWEEN)
            self._conds[key] = cond
            return cond

    def _pair_env(self, op1, op2, logged: LoggedOperation,
                  args: tuple[Any, ...],
                  current: Record) -> dict[str, Any]:
        """The interpreter's environment for one pair check.  The
        compiled fast path never builds this dict — it is only
        materialized on the interpreted fallback."""
        env: dict[str, Any] = {
            "s1": logged.before, "s2": current,
        }
        for param, value in zip(op1.params, logged.args):
            env[f"{param.name}1"] = value
        for param, value in zip(op2.params, args):
            env[f"{param.name}2"] = value
        if op1.result_sort is not None:
            env["r1"] = logged.result
        return env

    def _note_eval_error(self, shard: _Shard, m1: str, m2: str, cond,
                         exc: EvalError, stable_path: bool) -> None:
        """An unevaluable condition used to count silently as a
        conservative fallback with no trace of *which* condition
        failed; keep the exact count and a bounded per-shard sample
        (mutated under the shard's lock, like every other counter) so
        bench regressions are diagnosable from the uploaded artifact."""
        shard.eval_errors += 1
        if len(shard.eval_error_sample) == EVAL_ERROR_SAMPLE:
            shard.eval_error_dropped += 1  # the ring evicts the oldest
        shard.eval_error_sample.append({
            "structure": self.ds_name, "m1": m1, "m2": m2,
            "condition": (getattr(cond, "dynamic_text", None)
                          or cond.text),
            "error": str(exc), "stable": stable_path,
        })

    def _pair_commutes(self, shard: _Shard, logged: LoggedOperation,
                       op_name: str, args: tuple[Any, ...],
                       current: Record) -> bool:
        if self.policy == "mutex":
            return False
        op1 = self.spec.operations[logged.op_name]
        op2 = self.spec.operations[op_name]
        if self.policy == "read-write":
            return not (op1.mutator or op2.mutator)
        cond = self._condition(logged.op_name, op_name)
        if current != logged.after and cond.drift_fragile:
            # Drift guard.  The between conditions are verified in the
            # environment where ``s2`` is the state *immediately after*
            # the logged operation ran; once other operations have
            # executed, that environment is gone, and a condition that
            # mentions abstract state (ArrayList's index arithmetic,
            # the size conditions) may evaluate against stale contents
            # — e.g. a value-coincidence ``add_at;set`` admission that
            # is wrong in the drifted list.  Conditions over arguments
            # and return values only were verified to match the commute
            # relation in *every* enumerated state, so they transfer to
            # any context; state-referencing ones are only trusted in
            # the exact state they were verified for.
            #
            # Before giving up, try the pair's *compiled drift-stable*
            # condition (repro.stability): re-verified with the drifted
            # state quantified over all in-scope intermediates, so a
            # true verdict admits in any environment.  Otherwise the
            # router oracle still admits region-disjoint pairs (they
            # commute in every state); everything else is a
            # conservative conflict — possibly an unnecessary abort,
            # never an unsound admission.
            shard.drift_checks += 1
            stable = self._stable.get((logged.op_name, op_name))
            if stable is not None and self._stable_holds(
                    shard, stable, op1, logged, op_name, args, current):
                if self._undo_guard(shard, logged, op2, args, current):
                    # An *effective* admission, counted by certificate
                    # tier (proved conditions carry an unbounded
                    # symbolic proof, synthesized ones an abduced
                    # candidate; tier never changes the decision).
                    tier = getattr(stable, "tier", "weakened")
                    if tier == "proved":
                        shard.proved_hits += 1
                    elif tier == "synthesized":
                        shard.synthesized_hits += 1
                    else:
                        shard.stable_hits += 1
                    return True
                return False
            return self._fallback(shard, logged, op_name, args,
                                  current)
        checker = None if self._admission is None else \
            self._admission.between_checker(logged.op_name, op_name)
        if checker is not None:
            # The compiled fast path: slot-specialized closure, no
            # env dict.  It raises EvalError in exactly the cases the
            # interpreter would (same messages), so the fallback
            # decisions — and the eval_errors sample — are identical
            # with and without compilation.
            try:
                verdict = checker.check(logged.before, current,
                                        logged.args, logged.result,
                                        args)
            except SlotMismatch:
                # Arity drift between the logged call and the
                # operation signature: the interpreted dict env
                # tolerates it (zip truncation / unbound-variable
                # semantics), so that single check interprets.
                pass
            except EvalError as exc:
                self._note_eval_error(shard, logged.op_name, op_name,
                                      cond, exc, stable_path=False)
                return self._fallback(shard, logged, op_name, args,
                                      current)
            else:
                shard.compiled_hits += 1
                if not verdict:
                    return False
                try:
                    return self._undo_guard(shard, logged, op2, args,
                                            current)
                except EvalError as exc:
                    # The interpreted path runs the undo guard inside
                    # its try block; mirror that so an unevaluable
                    # undo-side precondition falls back identically.
                    self._note_eval_error(shard, logged.op_name,
                                          op_name, cond, exc,
                                          stable_path=False)
                    return self._fallback(shard, logged, op_name,
                                          args, current)
        env = self._pair_env(op1, op2, logged, args, current)
        try:
            if not evaluate(cond.dynamic_formula, env, self._ctx):
                return False
            return self._undo_guard(shard, logged, op2, args, current)
        except EvalError as exc:
            # The condition's vocabulary is partial: e.g. an ArrayList
            # between condition may index the *logged* operation's older
            # snapshot with the incoming operation's argument, which is
            # only guaranteed in-range against the current state.  An
            # unevaluable condition cannot certify commutativity, so
            # fall back to the router oracle, then report a conflict —
            # conservative (possibly an unnecessary abort) but never an
            # unsound admission.
            self._note_eval_error(shard, logged.op_name, op_name, cond,
                                  exc, stable_path=False)
            return self._fallback(shard, logged, op_name, args, current)

    def _fallback(self, shard: _Shard, logged: LoggedOperation,
                  op_name: str, args: tuple[Any, ...],
                  current: Record) -> bool:
        """The conservative path: consult the router oracle, keeping
        the fallback counters exact (mutated under the shard's lock,
        like every other admission counter)."""
        shard.fallbacks += 1
        admitted = self._virtually_disjoint(logged, op_name, args)
        if not admitted:
            return False
        shard.fallback_admits += 1
        return self._undo_guard(shard, logged,
                                self.spec.operations[op_name], args,
                                current)

    def _undo_guard(self, shard: _Shard, logged: LoggedOperation,
                    op2, args2: tuple[Any, ...], current: Record) -> bool:
        """The inverse side of admission: ``op2`` must also commute
        with the logged operation's *pending undo*.

        The logged operation's transaction may still abort, at which
        point :func:`~repro.runtime.transaction.rollback` applies its
        verified inverse to whatever the structure has become — an
        unchecked mutation as far as the log is concerned.  Without
        this guard a pair can be admitted on a value coincidence (two
        writes of the same value commute; ``add_`` of a present element
        is a no-op) and then be silently clobbered by the restore:
        ``T1: put_(k, x); T2: put_(k, x)`` admits, ``T1`` aborts, and
        the rollback rewrites ``k`` to its old value *under* ``T2``'s
        logically-committed write — a lost update the serial replay
        exposes.  The guard re-runs the inverse calls and ``op2``
        abstractly, in both orders, from the current state, and refuses
        the admission when they disagree (counted per shard, under the
        shard's lock, like every other admission counter).
        """
        if not self._undo_commutes(logged, op2, args2, current):
            shard.undo_refusals += 1
            return False
        return True

    def _undo_commutes(self, logged: LoggedOperation, op2,
                       args2: tuple[Any, ...], current: Record) -> bool:
        op1 = self.spec.operations[logged.op_name]
        if not op1.mutator or logged.before == logged.after:
            # Nothing to undo: reads are never rolled back, and
            # Property 3 makes the inverse of an effect-free execution
            # a no-op (it restores the pre-state, which is the post-
            # state already).
            return True
        if self._virtually_disjoint(logged, op2.name, args2):
            # The catalog inverses undo an operation within its own
            # footprint (``remove_at(i1)`` for ``add_at(i1, _)``,
            # ``put(k1, old)`` for ``put_(k1, _)``), so a pair the
            # router separates is separated from the undo too — and
            # skipping the abstract re-execution here keeps the guard
            # off the fast path for region-disjoint traffic.
            return True
        if self.compiled:
            # ``logged.after`` is determined by (op, args, before) —
            # abstract semantics are deterministic — so this key
            # covers every input of the verdict below.
            key = (logged.op_name, logged.args, logged.before,
                   op2.name, args2, current)
            try:
                return self._undo_memo[key]
            except KeyError:
                pass
            verdict = self._undo_commutes_fresh(logged, op1, op2,
                                                args2, current)
            self._undo_memo[key] = verdict
            return verdict
        return self._undo_commutes_fresh(logged, op1, op2, args2,
                                         current)

    def _undo_commutes_fresh(self, logged: LoggedOperation, op1, op2,
                             args2: tuple[Any, ...],
                             current: Record) -> bool:
        """The uncached undo-commutation check (both orders, from
        scratch); see :meth:`_undo_commutes` for the contract."""
        undo_ops = self._undo_plan(logged, op1)
        if undo_ops is None:
            # No registered inverse: an abort could not undo the logged
            # operation at all, so admitting against it proves nothing.
            return False
        if not undo_ops:
            return True  # guard decided the inverse away (no-op undo)
        # Order A: op2 now, the undo later (the actual history shape).
        if not self.spec.precondition_holds(op2, current, args2):
            return False
        mid_a, r2_a = op2.semantics(current, args2)
        fin_a = self._run_abstract(mid_a, undo_ops)
        # Order B: the undo first, op2 after (op2 serialized past it).
        mid_b = self._run_abstract(current, undo_ops)
        if fin_a is None or mid_b is None:
            return False  # some order is undefined: conservative
        if not self.spec.precondition_holds(op2, mid_b, args2):
            return False
        fin_b, r2_b = op2.semantics(mid_b, args2)
        if fin_a != fin_b:
            return False
        if op2.result_sort is not None and r2_a != r2_b:
            return False
        return True

    def _undo_plan(self, logged: LoggedOperation, op1):
        """The abstract inverse calls an abort of ``logged`` would
        apply: ``None`` when no inverse is registered, ``()`` when the
        guard decides the undo away.  Fixed per (operation, arguments,
        pre-state), so memoized — benign races on the dict are fine
        (concurrent shards compute identical values), same as the
        virtual-route memo."""
        key = (logged.op_name, logged.args, logged.before)
        try:
            return self._undo_plans[key]
        except KeyError:
            pass
        base_name = op1.base_name or op1.name
        base = self.spec.operations[base_name]
        try:
            inverse = self.registry.inverse(self.ds_name, base_name)
        except UnknownNameError:
            plan = None
        else:
            # The undo log keeps the *raw* result even for discard
            # variants; recover it by replaying the abstract semantics.
            _, raw_result = base.semantics(logged.before, logged.args)
            plan = tuple(
                (self.spec.operations[name], call_args)
                for name, call_args in resolve_inverse_calls(
                    inverse, base, logged.args, raw_result))
        self._undo_plans[key] = plan
        return plan

    def _run_abstract(self, state: Record | None, seq):
        """Thread a state through abstract semantics; ``None`` when a
        precondition fails along the way."""
        for op, args in seq:
            if not self.spec.precondition_holds(op, state, args):
                return None
            state, _ = op.semantics(state, args)
        return state

    def _stable_holds(self, shard: _Shard, stable, op1,
                      logged: LoggedOperation, op_name: str,
                      args: tuple[Any, ...], current: Record) -> bool:
        """Evaluate a compiled drift-stable condition; unevaluable means
        no certificate (the caller falls through to the oracle) —
        counted and sampled per shard, so the silent fallback is
        diagnosable.  Prefers the arm-time lowered closure; decisions
        are identical either way."""
        if self._admission is not None:
            checker = self._admission.stable_checker(logged.op_name,
                                                     op_name)
            if checker is not None:
                try:
                    verdict = checker.check(logged.before, current,
                                            logged.args, logged.result,
                                            args)
                except SlotMismatch:
                    pass  # arity drift: interpret this single check
                except EvalError as exc:
                    self._note_eval_error(shard, logged.op_name,
                                          op_name, stable, exc,
                                          stable_path=True)
                    return False
                else:
                    shard.compiled_hits += 1
                    return bool(verdict)
        env = self._pair_env(op1, self.spec.operations[op_name], logged,
                             args, current)
        try:
            return bool(evaluate(stable.dynamic_formula, env, self._ctx))
        except EvalError as exc:
            self._note_eval_error(shard, logged.op_name, op_name,
                                  stable, exc, stable_path=True)
            return False

    def _virtually_disjoint(self, logged: LoggedOperation, op_name: str,
                            args: tuple[Any, ...]) -> bool:
        """The universal-commutation oracle behind both conservative
        paths: operations whose routes at the fixed virtual granularity
        are disjoint commute in *every* state (the router soundness
        contract), so they may be admitted even when the condition
        cannot be trusted or evaluated.  Physical shard counts are
        powers of two dividing the virtual granularity, so every pair a
        sharded scan prunes is virtually disjoint too — which is why
        flat and sharded managers decide identically."""
        if self._family_router is None:
            return False
        route1 = self._virtual_route(logged.op_name, logged.args)
        route2 = self._virtual_route(op_name, args)
        return route1 is not None and route2 is not None \
            and not (route1 & route2)

    # -- log maintenance ------------------------------------------------------

    def record(self, entry: LoggedOperation,
               shard_ids: Sequence[int] | None = None) -> tuple[int, ...]:
        """Log an executed operation as outstanding, in every region it
        is stored in; returns the region ids.  An explicit ``shard_ids``
        restricts storage to that slice of the routed set — a cluster
        worker stores only the shards it owns."""
        if shard_ids is None:
            shard_ids = self.store_regions(entry.op_name, entry.args)
        else:
            shard_ids = tuple(shard_ids)
        for sid in shard_ids:
            shard = self._shards[sid]
            with shard.lock:
                shard.log.append(entry)
        self._touched.setdefault(entry.txn_id, set()).update(shard_ids)
        return shard_ids

    def release(self, txn_id: int, reason: str = "commit") -> None:
        """Drop all outstanding operations of ``txn_id``.

        ``reason`` (``"commit"`` or ``"abort"``) never changes the
        decision logic — the log is dropped either way — but lets an
        observing layer (the admission service's metrics endpoint)
        count transaction outcomes without a second RPC.
        """
        for sid in sorted(self._touched.pop(txn_id, ())):
            shard = self._shards[sid]
            with shard.lock:
                shard.log = [e for e in shard.log if e.txn_id != txn_id]

    def reset(self) -> None:
        """Back to an empty log with zeroed counters, keeping the
        expensive admission machinery warm (memoized conditions and
        routes, armed stable conditions, compiled closures).  Decisions
        after a reset are identical to a freshly constructed manager's
        — that equivalence is what makes server-side domain reuse
        sound."""
        for shard in self._shards:
            with shard.lock:
                shard.log = []
                shard.checks = 0
                shard.conflicts = 0
                shard.drift_checks = 0
                shard.stable_hits = 0
                shard.proved_hits = 0
                shard.synthesized_hits = 0
                shard.fallbacks = 0
                shard.fallback_admits = 0
                shard.undo_refusals = 0
                shard.compiled_hits = 0
                shard.eval_errors = 0
                shard.eval_error_sample.clear()
                shard.eval_error_dropped = 0
        self._touched.clear()

    def close(self) -> None:
        """Release backend resources; a no-op for in-process managers
        (remote managers flush their pipelines and close their server
        domain here)."""

    def outstanding(self, txn_id: int | None = None) -> list[LoggedOperation]:
        entries: list[LoggedOperation] = []
        seen: set[int] = set()
        for shard in self._shards:
            with shard.lock:
                for e in shard.log:
                    if id(e) in seen:
                        continue
                    seen.add(id(e))
                    if txn_id is None or e.txn_id == txn_id:
                        entries.append(e)
        return entries

    # -- counters -------------------------------------------------------------

    @property
    def checks(self) -> int:
        """Pair checks across all shards (each increment happens under
        its shard's lock, so the sum never loses concurrent updates)."""
        return sum(s.checks for s in self._shards)

    @property
    def conflicts(self) -> int:
        """Conflicting pair checks across all shards."""
        return sum(s.conflicts for s in self._shards)

    @property
    def drift_checks(self) -> int:
        """Pair checks that hit the drift guard."""
        return sum(s.drift_checks for s in self._shards)

    @property
    def stable_hits(self) -> int:
        """Drifted pair checks admitted by a compiled stable condition
        of the ``weakened`` (bounded-sweep) tier."""
        return sum(s.stable_hits for s in self._shards)

    @property
    def proved_hits(self) -> int:
        """Drifted pair checks admitted by a symbolically proved
        condition (the ``proved`` tier, ``--prover`` compilations)."""
        return sum(s.proved_hits for s in self._shards)

    @property
    def synthesized_hits(self) -> int:
        """Drifted pair checks admitted by an abduced condition (the
        ``synthesized`` tier, ``--abduce`` compilations)."""
        return sum(s.synthesized_hits for s in self._shards)

    @property
    def fallbacks(self) -> int:
        """Conservative resolutions that consulted the router oracle."""
        return sum(s.fallbacks for s in self._shards)

    @property
    def fallback_admits(self) -> int:
        """Conservative-fallback admissions (oracle said disjoint)."""
        return sum(s.fallback_admits for s in self._shards)

    @property
    def undo_refusals(self) -> int:
        """Would-be admissions refused by the undo-commutation guard."""
        return sum(s.undo_refusals for s in self._shards)

    @property
    def compiled_hits(self) -> int:
        """Pair checks decided by a compiled closure (never differing
        from what the interpreter would have decided)."""
        return sum(s.compiled_hits for s in self._shards)

    @property
    def eval_errors(self) -> int:
        """Condition evaluations (between or stable path) that raised
        :class:`EvalError` and resolved conservatively."""
        return sum(s.eval_errors for s in self._shards)

    @property
    def eval_errors_dropped(self) -> int:
        """Diagnostics evicted from the bounded per-shard sample rings
        (the count a long-running server watches for silent churn)."""
        return sum(s.eval_error_dropped for s in self._shards)

    def eval_error_samples(self) -> list[dict[str, Any]]:
        """Up to :data:`EVAL_ERROR_SAMPLE` recorded EvalError
        occurrences — (structure, m1, m2, condition, error, stable) —
        aggregated across shards in shard order (each shard keeps the
        most recent occurrences; see ``eval_errors_dropped``)."""
        sample: list[dict[str, Any]] = []
        for shard in self._shards:
            with shard.lock:
                sample.extend(shard.eval_error_sample)
            if len(sample) >= EVAL_ERROR_SAMPLE:
                break
        return sample[:EVAL_ERROR_SAMPLE]

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard admission statistics, for contention reporting."""
        return [{"shard": s.shard_id, "checks": s.checks,
                 "conflicts": s.conflicts, "outstanding": len(s.log),
                 "drift_checks": s.drift_checks,
                 "stable_hits": s.stable_hits,
                 "proved_hits": s.proved_hits,
                 "synthesized_hits": s.synthesized_hits,
                 "fallbacks": s.fallbacks,
                 "fallback_admits": s.fallback_admits,
                 "undo_refusals": s.undo_refusals,
                 "compiled_hits": s.compiled_hits,
                 "eval_errors": s.eval_errors,
                 "eval_errors_dropped": s.eval_error_dropped}
                for s in self._shards]

    def counters(self) -> dict[str, int]:
        """Every aggregate admission counter as one flat dict — the
        transport-neutral stats surface the service's ``stats`` frame
        and the remote manager's report plumbing share."""
        return {"checks": self.checks, "conflicts": self.conflicts,
                "drift_checks": self.drift_checks,
                "stable_hits": self.stable_hits,
                "proved_hits": self.proved_hits,
                "synthesized_hits": self.synthesized_hits,
                "fallbacks": self.fallbacks,
                "fallback_admits": self.fallback_admits,
                "undo_refusals": self.undo_refusals,
                "compiled_hits": self.compiled_hits,
                "eval_errors": self.eval_errors,
                "eval_errors_dropped": self.eval_errors_dropped}


class Gatekeeper(ConflictManager):
    """The flat-log conflict manager: one shard, one lock, every
    admission scans the whole outstanding list — exactly the paper's
    gatekeeper sketch, and the deterministic baseline the sharded
    manager is validated against."""

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 registry=None, stable: bool = False,
                 compiled: bool = False) -> None:
        super().__init__(ds_name, policy, registry=registry, shards=1,
                         stable=stable, compiled=compiled)


class ShardedGatekeeper(ConflictManager):
    """The region-partitioned conflict manager.

    A routed operation stores, scans, and *locks* exactly its own
    shards, so operations in disjoint regions admit and apply truly
    concurrently — no shared lock anywhere on their path.  A
    globally-interacting operation (``size``, ``indexOf``, ...) is
    replicated into every shard: that keeps every routed operation's
    scan self-contained (its own shards already hold every entry it
    could conflict with) at the cost of duplicate storage, and the
    identity-dedup in :meth:`ConflictManager.admits_ex` keeps counters
    exact when a multi-shard scan meets a replicated entry.

    Routing only partitions under the ``commutativity`` policy: the
    verified between conditions are what justify skipping a pair check
    (a router may only separate unconditionally-commuting operations).
    ``read-write`` and ``mutex`` conflict regardless of arguments, so
    under those policies every operation routes to shard 0 and the
    manager degenerates to the flat log — decisions are identical to
    :class:`Gatekeeper` under *every* policy.
    """

    def __init__(self, ds_name: str, policy: str = "commutativity",
                 registry=None, shards: int = 2,
                 router: ShardRouter | None = None,
                 stable: bool = False, compiled: bool = False) -> None:
        super().__init__(ds_name, policy, registry=registry, shards=shards,
                         stable=stable, compiled=compiled)
        if router is None:
            router = self.registry.shard_router(ds_name)
        if router is None:
            router = single_region_router
        self.router = router
        # Physical pruning and the virtual oracle must agree on the
        # interaction structure (an explicitly-injected router replaces
        # the family default for both; the single-region fallback never
        # declares any pair disjoint, matching the flat manager's
        # oracle-less behaviour for unrouted custom structures).
        self._family_router = router if router is not single_region_router \
            else None

    def _route(self, op_name: str,
               args: tuple[Any, ...]) -> tuple[int, ...]:
        """The operation's shard set (globally-interacting operations
        touch every shard); non-commutativity policies collapse to
        shard 0."""
        if self.policy != "commutativity" or self.num_shards == 1:
            return (0,)
        return normalize_route(self.router(op_name, args, self.num_shards),
                               self.num_shards)

    def store_regions(self, op_name: str,
                      args: tuple[Any, ...]) -> tuple[int, ...]:
        return self._route(op_name, args)

    def scan_regions(self, op_name: str,
                     args: tuple[Any, ...]) -> tuple[int, ...]:
        return self._route(op_name, args)


def conflict_manager(ds_name: str, policy: str = "commutativity",
                     shards: int = 1, registry=None,
                     router: ShardRouter | None = None,
                     stable: bool = False,
                     compiled: bool = False) -> ConflictManager:
    """The conflict manager for a shard count: the flat
    :class:`Gatekeeper` at ``shards=1`` (byte-for-byte the historical
    behaviour), a :class:`ShardedGatekeeper` above.  ``stable=True``
    arms the drift guard with the registry's compiled drift-stable
    conditions (both managers consult the same compiled set, so flat
    and sharded decisions stay identical); ``compiled=True``
    additionally lowers every armed condition into a slot-specialized
    closure at arm time (:mod:`repro.compiled`) — faster checks,
    identical decisions."""
    if shards == 1 and router is None:
        return Gatekeeper(ds_name, policy, registry=registry,
                          stable=stable, compiled=compiled)
    return ShardedGatekeeper(ds_name, policy, registry=registry,
                             shards=shards, router=router, stable=stable,
                             compiled=compiled)
