"""Contention-adaptive conflict-response policies.

The gatekeeper *detects* conflicts; what the executor does next — abort
immediately or block and wait — is the conflict mode.  On hot-key
write-heavy workloads the naive response wastes work: an aborted
transaction restarts instantly, re-executes the same doomed prefix, and
aborts again (the ROADMAP's "abort storm").  These controllers wrap the
response with classical contention management, composable with every
detection policy:

- ``"backoff"`` — exponential backoff with jitter: after its ``k``-th
  abort a transaction is deferred for ~``2**k`` scheduling rounds
  (serial) or milliseconds (threaded) before retrying, so a storm
  spreads out instead of re-colliding.
- ``"wait-die"`` — Rosenkrantz wait-die ordering on transaction age
  (lower ``txn_id`` = older): an older requester *waits* for the
  conflicting holder, a younger requester *dies* (aborts).  Waits-for
  edges only ever point from older to younger, so no cycle can form,
  and an old transaction — the one with the most work at stake — rides
  out a storm blocked instead of repeatedly re-executing its prefix.
  (A young transaction may still die more than once against a
  long-running holder; compose with ``backoff`` semantics by choosing
  ``"backoff"`` instead when that dominates.)
- ``"hybrid"`` — starts in pure speculation and falls back to blocking
  *per shard*: each shard keeps a sliding window of its admission
  outcomes, and once the window's conflict rate trips the threshold,
  conflicts touching that shard block instead of aborting until the
  window cools down.  Cold regions keep full commutativity-mode
  concurrency; hot regions degrade to pessimism — the lattice of
  mechanisms, chosen dynamically.

Controllers are consulted from the executor's scheduling loop (hot
paths hold the relevant shard locks already; controller state is only
mutated there or under the scheduler's condition variable).  With
``adaptive=None`` the executor never constructs one, keeping the
default paths byte-for-byte identical to the historical scheduler.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

#: The selectable contention-adaptive policies (``None``/"none" = off).
ADAPTIVE_POLICIES = ("backoff", "wait-die", "hybrid")


class AdaptiveController:
    """No-op base: hooks the executor calls around each admission."""

    name = "none"

    def deferred(self, txn, now) -> bool:
        """Whether the scheduler should skip ``txn`` at time ``now``
        (scheduling rounds when serial, ``time.monotonic()`` when
        threaded)."""
        return False

    def on_outcome(self, shard_ids: Sequence[int],
                   conflicted: bool) -> None:
        """Every admission attempt, with the shards it touched."""

    def on_conflict(self, txn, holder_txn_id: int | None,
                    shard_ids: Sequence[int], default: str) -> str:
        """The response to a detected conflict: ``"abort"`` or
        ``"block"`` (``default`` is the executor's conflict mode)."""
        return default

    def on_abort(self, txn, now) -> None:
        """``txn`` was just aborted and rolled back at time ``now``."""

    def on_commit(self, txn) -> None:
        """``txn`` just committed."""


class BackoffController(AdaptiveController):
    """Exponential backoff with jitter after each abort."""

    name = "backoff"

    #: Exponent cap: delays never exceed ``unit * 2**MAX_EXPONENT``.
    MAX_EXPONENT = 5

    def __init__(self, seed: int = 0, wall_clock: bool = False) -> None:
        #: One scheduling round when serial, one millisecond threaded.
        self.unit = 0.001 if wall_clock else 1.0
        self._rng = random.Random(f"backoff:{seed}")

    def deferred(self, txn, now) -> bool:
        return now < txn.backoff_until

    def on_abort(self, txn, now) -> None:
        exponent = min(max(txn.aborts - 1, 0), self.MAX_EXPONENT)
        delay = self.unit * (2 ** exponent)
        # Full jitter: a random fraction of the exponential window, so
        # simultaneous aborters spread out instead of re-colliding.
        txn.backoff_until = now + delay * (0.5 + self._rng.random())


class WaitDieController(AdaptiveController):
    """Wait-die ordering on transaction age (lower txn_id = older)."""

    name = "wait-die"

    def on_conflict(self, txn, holder_txn_id, shard_ids, default) -> str:
        if holder_txn_id is None:
            return default
        # Older requester waits for the younger holder; younger dies.
        return "block" if txn.age < holder_txn_id else "abort"


class HybridController(AdaptiveController):
    """Commutativity-first with a per-shard pessimistic fallback."""

    name = "hybrid"

    def __init__(self, window: int = 12, threshold: float = 0.5) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold}")
        self.window = window
        self.threshold = threshold
        self._outcomes: dict[int, deque[bool]] = {}

    def _window(self, shard_id: int) -> deque[bool]:
        window = self._outcomes.get(shard_id)
        if window is None:
            window = self._outcomes[shard_id] = deque(maxlen=self.window)
        return window

    def tripped(self, shard_id: int) -> bool:
        """Whether this shard's sliding-window conflict rate is past the
        threshold (needs at least half a window of evidence)."""
        window = self._window(shard_id)
        if len(window) < self.window // 2:
            return False
        return sum(window) / len(window) >= self.threshold

    def on_outcome(self, shard_ids, conflicted) -> None:
        for sid in shard_ids:
            self._window(sid).append(conflicted)

    def on_conflict(self, txn, holder_txn_id, shard_ids, default) -> str:
        if any(self.tripped(sid) for sid in shard_ids):
            return "block"
        return default


def make_controller(adaptive: str | None, seed: int = 0,
                    wall_clock: bool = False) -> AdaptiveController | None:
    """The controller for an ``adaptive=`` setting (``None`` for off)."""
    if adaptive is None or adaptive == "none":
        return None
    if adaptive == "backoff":
        return BackoffController(seed=seed, wall_clock=wall_clock)
    if adaptive == "wait-die":
        return WaitDieController()
    if adaptive == "hybrid":
        return HybridController()
    raise ValueError(f"unknown adaptive policy {adaptive!r}; choose "
                     f"from {', '.join(ADAPTIVE_POLICIES)}")
