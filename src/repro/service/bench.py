"""Client/server benchmark orchestration for ``bench --suite service``.

One admission-server subprocess, ≥2 client worker *processes*
hammering it concurrently, and the parent asserting the two things the
service must deliver:

1. **Decision identity** — for each gated structure, the same
   (workload, policy, seed) is executed twice in the parent, once with
   local admission and once against the server; the two
   ``decision_digest()`` values must be byte-identical.
2. **Cross-process throughput with latency percentiles** — the client
   workers run concurrently against one server, each reporting its
   committed operations and per-RPC admission latencies; the parent
   pools them into p50/p95 and committed-ops/s over the shared wall
   clock, plus a ``/metrics`` scrape proving the per-shard counters
   are live.

Everything here is top-level (spawn-context picklable); the CLI wiring
lives in ``repro.__main__``.
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import time
from typing import Any

#: Structures the service bench drives (one set family, one list
#: family — the two runtime-condition shapes).
BENCH_STRUCTURES = ("HashSet", "ArrayList")

#: Shard count of every served domain in this bench.
BENCH_SHARDS = 4

#: Seconds to wait for the server subprocess to report its port.
SERVER_START_TIMEOUT = 30.0


def _bench_workload(seed_offset: int = 0):
    """The pinned service-bench workload: mixed ops over a shared key
    space, serial per client, seeded so every leg is deterministic."""
    from ..workloads import WorkloadSpec
    return WorkloadSpec(name="service-mixed", profile="mixed",
                        distribution="uniform", transactions=8,
                        ops_per_transaction=6, key_space=16,
                        value_space=3, preload=8, seed=71 + seed_offset)


def server_entry(conn, host: str) -> None:
    """Subprocess target: run an admission server on an ephemeral port
    and pipe the bound port back; drains on SIGTERM."""
    from .server import run_server
    run_server(host, 0, on_ready=conn.send)


def client_entry(worker_id: int, host: str, port: int,
                 structure: str, conn) -> None:
    """Subprocess target: one client worker process running its seeded
    workload serially against the shared server; pipes back a plain
    result dict."""
    from ..workloads import ThroughputHarness
    from .client import ServiceBackend
    workload = _bench_workload(seed_offset=worker_id)
    harness = ThroughputHarness(workers=1)
    backend = ServiceBackend(host, port, label=f"bench-w{worker_id}")
    try:
        run = harness.run_one(structure, workload,
                              policy="commutativity", workers=1,
                              shards=BENCH_SHARDS, backend=backend)
        report = run.report
        conn.send({
            "worker": worker_id, "structure": structure,
            "workload": workload.label,
            "commits": report.commits, "aborts": report.aborts,
            "committed_operations": report.committed_operations,
            "wall_seconds": report.wall_seconds,
            "admission_rpcs": report.admission_rpcs,
            "latencies": list(report.admission_latencies),
            "serializable": report.serializable,
            "digest": report.decision_digest(),
        })
    except Exception as exc:
        conn.send({"worker": worker_id, "structure": structure,
                   "error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def start_server(host: str = "127.0.0.1"):
    """Spawn the server subprocess; returns ``(process, port)``."""
    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe()
    process = ctx.Process(target=server_entry, args=(child, host),
                          name="repro-admission-server")
    process.start()
    child.close()
    if not parent.poll(SERVER_START_TIMEOUT):
        process.terminate()
        process.join(5.0)
        raise RuntimeError("admission server did not start in time")
    port = parent.recv()
    parent.close()
    return process, port


def stop_server(process) -> None:
    """SIGTERM the server (graceful drain), escalate if it lingers."""
    if process.is_alive():
        process.terminate()  # SIGTERM: run_server drains on it
        process.join(10.0)
    if process.is_alive():
        process.kill()
        process.join(5.0)


def scrape_metrics(host: str, port: int,
                   path: str = "/metrics") -> tuple[int, str]:
    """One plain-HTTP GET against the server's frame port; returns
    (status code, body)."""
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: bench\r\n"
                     f"Connection: close\r\n\r\n".encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode("utf-8", "replace")
    head, _, body = raw.partition("\r\n\r\n")
    status = int(head.split(" ", 2)[1]) if " " in head else 0
    return status, body


def identity_leg(registry, host: str, port: int,
                 structures=BENCH_STRUCTURES) -> dict[str, Any]:
    """Local vs served execution of the identical workload, in this
    process: the digests must match per structure."""
    from ..workloads import ThroughputHarness
    from .client import ServiceBackend
    harness = ThroughputHarness(registry=registry, workers=1)
    section: dict[str, Any] = {}
    workload = _bench_workload()
    for structure in structures:
        local = harness.run_one(structure, workload,
                                policy="commutativity", workers=1,
                                shards=BENCH_SHARDS)
        served = harness.run_one(
            structure, workload, policy="commutativity", workers=1,
            shards=BENCH_SHARDS,
            backend=ServiceBackend(host, port, label="identity"))
        section[structure] = {
            "workload": workload.label,
            "local_digest": local.report.decision_digest(),
            "service_digest": served.report.decision_digest(),
            "identical": (local.report.decision_digest()
                          == served.report.decision_digest()),
            "admission_rpcs": served.report.admission_rpcs,
        }
    return section


def throughput_leg(host: str, port: int, workers: int,
                   structures=BENCH_STRUCTURES) -> dict[str, Any]:
    """``workers`` client processes against one server, concurrently;
    pooled latency percentiles and cross-process committed-ops/s."""
    from ..reporting.tables import percentile
    ctx = mp.get_context("spawn")
    jobs = []
    started = time.perf_counter()
    for worker_id in range(workers):
        structure = structures[worker_id % len(structures)]
        parent, child = ctx.Pipe()
        process = ctx.Process(
            target=client_entry,
            args=(worker_id, host, port, structure, child),
            name=f"repro-service-client-{worker_id}")
        process.start()
        child.close()
        jobs.append((process, parent))
    results = []
    for process, parent in jobs:
        payload = parent.recv() if parent.poll(120.0) else {
            "error": "client worker timed out"}
        parent.close()
        process.join(10.0)
        if process.is_alive():
            process.kill()
            process.join(5.0)
        results.append(payload)
    wall = time.perf_counter() - started
    errors = [r["error"] for r in results if "error" in r]
    latencies = [latency for r in results
                 for latency in r.get("latencies", ())]
    committed = sum(r.get("committed_operations", 0) for r in results)
    return {
        "workers": workers,
        "errors": errors,
        "committed_operations": committed,
        "wall_seconds": round(wall, 4),
        "committed_ops_per_second": round(committed / wall, 1)
        if wall > 0 else 0.0,
        "admission_rpcs": len(latencies),
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1000, 4)
            if latencies else 0.0,
            "p95": round(percentile(latencies, 95) * 1000, 4)
            if latencies else 0.0,
        },
        "per_worker": [
            {"worker": r["worker"], "structure": r["structure"],
             "workload": r["workload"],
             "commits": r["commits"], "aborts": r["aborts"],
             "committed_operations": r["committed_operations"],
             "wall_seconds": round(r["wall_seconds"], 4),
             "admission_rpcs": r["admission_rpcs"],
             "latency_ms": {
                 "p50": round(percentile(r["latencies"], 50) * 1000, 4)
                 if r["latencies"] else 0.0,
                 "p95": round(percentile(r["latencies"], 95) * 1000, 4)
                 if r["latencies"] else 0.0,
             },
             "serializable": r["serializable"]}
            for r in results if "error" not in r],
    }


#: Counter families the metrics scrape must surface (one name per
#: exported per-shard stat; the gate greps the Prometheus body).
EXPECTED_METRIC_NAMES = (
    "repro_shard_checks", "repro_shard_conflicts",
    "repro_shard_outstanding", "repro_shard_drift_checks",
    "repro_shard_stable_hits", "repro_shard_proved_hits",
    "repro_shard_fallbacks", "repro_shard_fallback_admits",
    "repro_shard_undo_refusals", "repro_shard_compiled_hits",
    "repro_shard_eval_errors", "repro_shard_eval_errors_dropped",
    "repro_txn_outcomes_total", "repro_abort_rate",
)


def metrics_leg(host: str, port: int) -> dict[str, Any]:
    """Scrape ``/metrics`` and check every per-shard counter family is
    exposed in Prometheus text format."""
    status, body = scrape_metrics(host, port)
    missing = [name for name in EXPECTED_METRIC_NAMES
               if name not in body]
    return {"status": status, "lines": body.count("\n"),
            "missing": missing,
            "ok": status == 200 and not missing}
