"""Client/server benchmark orchestration for ``bench --suite service``.

One admission-server subprocess (plus shard-partitioned clusters for
the cluster legs), ≥2 client worker *processes* hammering it
concurrently, and the parent asserting the things the service must
deliver:

1. **Decision identity, four ways** — for every runnable builtin
   structure, the same (workload, policy, seed) is executed with local
   admission, against a single-process server, and against 2- and
   4-worker shard-partitioned clusters; all four ``decision_digest()``
   values must be byte-identical.
2. **Cross-process throughput with latency percentiles** — the client
   workers run concurrently against one server, each reporting its
   committed operations and per-RPC admission latencies; the parent
   pools them into p50/p95 and committed-ops/s over the shared wall
   clock, plus a ``/metrics`` scrape proving the per-shard counters
   are live.
3. **The saturation knee** (``--soak``) — ramp the client process
   count on a preloaded write-heavy workload until committed-ops/s
   stops improving; the knee (client count, ops/s, p95) of a
   multi-worker cluster must strictly beat the single process's.

Every client subprocess is reaped in a ``finally`` — a recv failure or
a gate exception must not leak children.  Everything here is top-level
(spawn-context picklable); the CLI wiring lives in ``repro.__main__``.
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import time
from typing import Any, Callable, Sequence

#: Structures the throughput leg drives (one set family, one list
#: family — the two runtime-condition shapes).  The identity leg
#: covers *every* runnable builtin instead.
BENCH_STRUCTURES = ("HashSet", "ArrayList")

#: Shard count of every served domain in this bench.
BENCH_SHARDS = 4

#: Cluster sizes the identity leg proves digest-identical to local
#: execution (next to the single-process leg).
CLUSTER_AXIS = (2, 4)

#: Seconds to wait for the server subprocess to report its port.
SERVER_START_TIMEOUT = 30.0

#: The soak ramp: client process counts tried in order until the knee.
SOAK_RAMP = (1, 2, 4, 8)

#: A ramp point must improve committed-ops/s by at least this fraction
#: over the best point so far, or the ramp has hit its knee.
SOAK_KNEE_GAIN = 0.10

#: Seconds each soak point keeps its clients running (per-point
#: duration, not the whole ramp).
SOAK_POINT_SECONDS = 2.0

#: The structure the soak leg drives (single-shard write routes, so a
#: partitioned cluster actually spreads the admission work).
SOAK_STRUCTURE = "HashSet"


def _bench_workload(seed_offset: int = 0):
    """The pinned service-bench workload: mixed ops over a shared key
    space, serial per client, seeded so every leg is deterministic."""
    from ..workloads import WorkloadSpec
    return WorkloadSpec(name="service-mixed", profile="mixed",
                        distribution="uniform", transactions=8,
                        ops_per_transaction=6, key_space=16,
                        value_space=3, preload=8, seed=71 + seed_offset)


def _soak_workload(seed_offset: int = 0):
    """The soak workload: write-heavy hot-key traffic over a preloaded
    structure — admission checks scan a deep outstanding log, which is
    the server-side work the cluster exists to spread across cores."""
    from ..workloads import WorkloadSpec
    return WorkloadSpec(name="service-soak", profile="write-heavy",
                        distribution="hot-key", transactions=12,
                        ops_per_transaction=6, key_space=24,
                        value_space=3, preload=20,
                        seed=131 + seed_offset)


def bench_structures(registry=None) -> tuple[str, ...]:
    """Every builtin structure the identity leg must cover."""
    from ..workloads import ThroughputHarness
    return tuple(ThroughputHarness(registry=registry)
                 .runnable_structures())


def server_entry(conn, host: str) -> None:
    """Subprocess target: run an admission server on an ephemeral port
    and pipe the bound port back; drains on SIGTERM."""
    from .server import run_server
    run_server(host, 0, on_ready=conn.send)


def client_entry(worker_id: int, host: str, port: int,
                 structure: str, conn) -> None:
    """Subprocess target: one client worker process running its seeded
    workload serially against the shared server; pipes back a plain
    result dict."""
    from ..workloads import ThroughputHarness
    from .client import ServiceBackend
    workload = _bench_workload(seed_offset=worker_id)
    harness = ThroughputHarness(workers=1)
    backend = ServiceBackend(host, port, label=f"bench-w{worker_id}")
    try:
        run = harness.run_one(structure, workload,
                              policy="commutativity", workers=1,
                              shards=BENCH_SHARDS, backend=backend)
        report = run.report
        conn.send({
            "worker": worker_id, "structure": structure,
            "workload": workload.label,
            "commits": report.commits, "aborts": report.aborts,
            "committed_operations": report.committed_operations,
            "wall_seconds": report.wall_seconds,
            "admission_rpcs": report.admission_rpcs,
            "latencies": list(report.admission_latencies),
            "serializable": report.serializable,
            "digest": report.decision_digest(),
        })
    except Exception as exc:
        conn.send({"worker": worker_id, "structure": structure,
                   "error": f"{type(exc).__name__}: {exc}"})
    finally:
        backend.close()
        conn.close()


def soak_client_entry(worker_id: int, host: str, port: int,
                      structure: str, duration: float, conn) -> None:
    """Subprocess target: one soak client looping its seeded workload
    through a *pooled* backend (domains reset between runs, not
    re-opened) until ``duration`` elapses; pipes back the totals."""
    from ..workloads import ThroughputHarness
    from .client import ServiceBackend
    workload = _soak_workload(seed_offset=worker_id)
    harness = ThroughputHarness(workers=1)
    backend = ServiceBackend(host, port, label=f"soak-w{worker_id}")
    try:
        deadline = time.perf_counter() + duration
        committed = runs = 0
        latencies: list[float] = []
        while True:
            run = harness.run_one(structure, workload,
                                  policy="commutativity", workers=1,
                                  shards=BENCH_SHARDS, backend=backend)
            committed += run.report.committed_operations
            latencies.extend(run.report.admission_latencies)
            runs += 1
            if time.perf_counter() >= deadline:
                break
        conn.send({
            "worker": worker_id, "structure": structure,
            "workload": workload.label, "runs": runs,
            "committed_operations": committed,
            "latencies": latencies,
            "domain_reuses": backend.domain_reuses,
        })
    except Exception as exc:
        conn.send({"worker": worker_id, "structure": structure,
                   "error": f"{type(exc).__name__}: {exc}"})
    finally:
        backend.close()
        conn.close()


def start_server(host: str = "127.0.0.1"):
    """Spawn the server subprocess; returns ``(process, port)``."""
    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe()
    process = ctx.Process(target=server_entry, args=(child, host),
                          name="repro-admission-server")
    process.start()
    child.close()
    if not parent.poll(SERVER_START_TIMEOUT):
        process.terminate()
        process.join(5.0)
        raise RuntimeError("admission server did not start in time")
    port = parent.recv()
    parent.close()
    return process, port


def stop_server(process) -> None:
    """SIGTERM the server (graceful drain), escalate if it lingers."""
    if process.is_alive():
        process.terminate()  # SIGTERM: run_server drains on it
        process.join(10.0)
    if process.is_alive():
        process.kill()
        process.join(5.0)


def _run_clients(target: Callable, count: int,
                 args_of: Callable[[int], tuple], name_prefix: str,
                 timeout: float) -> list[dict[str, Any]]:
    """Spawn ``count`` client subprocesses and collect one result dict
    from each pipe.  Reaping is unconditional: whatever fails — a
    spawn, a recv, a timeout — every child is terminated and joined
    before this returns or raises."""
    ctx = mp.get_context("spawn")
    jobs: list[tuple[Any, Any]] = []
    results: list[dict[str, Any]] = []
    try:
        for worker_id in range(count):
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=target, args=args_of(worker_id) + (child,),
                name=f"{name_prefix}-{worker_id}")
            process.start()
            child.close()
            jobs.append((process, parent))
        for process, parent in jobs:
            results.append(parent.recv() if parent.poll(timeout)
                           else {"error": "client worker timed out"})
    finally:
        for process, parent in jobs:
            try:
                parent.close()
            except OSError:
                pass
            if process.is_alive():
                process.terminate()
        for process, parent in jobs:
            process.join(10.0)
            if process.is_alive():
                process.kill()
                process.join(5.0)
    return results


def scrape_metrics(host: str, port: int,
                   path: str = "/metrics") -> tuple[int, str]:
    """One plain-HTTP GET against the server's frame port; returns
    (status code, body)."""
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: bench\r\n"
                     f"Connection: close\r\n\r\n".encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode("utf-8", "replace")
    head, _, body = raw.partition("\r\n\r\n")
    status = int(head.split(" ", 2)[1]) if " " in head else 0
    return status, body


def local_digest_leg(registry,
                     structures: Sequence[str]) -> dict[str, str]:
    """The reference digests: the pinned workload executed with local
    (in-process) admission, per structure."""
    from ..workloads import ThroughputHarness
    harness = ThroughputHarness(registry=registry, workers=1)
    workload = _bench_workload()
    return {structure: harness.run_one(
                structure, workload, policy="commutativity", workers=1,
                shards=BENCH_SHARDS).report.decision_digest()
            for structure in structures}


def digest_leg(registry, host: str, port: int,
               structures: Sequence[str],
               label: str = "identity") -> dict[str, dict[str, Any]]:
    """The pinned workload executed against a served deployment (one
    pooled backend — a cluster port fans out via its partition map),
    per structure: digest plus RPC count."""
    from ..workloads import ThroughputHarness
    from .client import ServiceBackend
    harness = ThroughputHarness(registry=registry, workers=1)
    backend = ServiceBackend(host, port, label=label,
                             registry=registry)
    workload = _bench_workload()
    section: dict[str, dict[str, Any]] = {}
    try:
        for structure in structures:
            run = harness.run_one(structure, workload,
                                  policy="commutativity", workers=1,
                                  shards=BENCH_SHARDS, backend=backend)
            section[structure] = {
                "digest": run.report.decision_digest(),
                "admission_rpcs": run.report.admission_rpcs,
            }
    finally:
        backend.close()
    return section


def identity_leg(registry, host: str, port: int,
                 structures: Sequence[str] | None = None,
                 cluster_axis: Sequence[int] = CLUSTER_AXIS) \
        -> dict[str, Any]:
    """Four-leg decision identity over every runnable builtin: local,
    single-process served (the ``port`` argument), and one
    shard-partitioned cluster per ``cluster_axis`` size.  All digests
    of a structure must be byte-identical."""
    from .cluster import start_cluster, stop_cluster
    structures = tuple(structures if structures is not None
                       else bench_structures(registry))
    local = local_digest_leg(registry, structures)
    single = digest_leg(registry, host, port, structures)
    clusters: dict[int, dict[str, dict[str, Any]]] = {}
    for workers in cluster_axis:
        processes, ports = start_cluster(workers)
        try:
            clusters[workers] = digest_leg(
                registry, "127.0.0.1", ports[0], structures,
                label=f"identity-c{workers}")
        finally:
            stop_cluster(processes)
    workload = _bench_workload()
    section: dict[str, Any] = {}
    for structure in structures:
        cluster_digests = {
            str(workers): clusters[workers][structure]["digest"]
            for workers in cluster_axis}
        digests = {local[structure], single[structure]["digest"],
                   *cluster_digests.values()}
        section[structure] = {
            "workload": workload.label,
            "local_digest": local[structure],
            "service_digest": single[structure]["digest"],
            "cluster_digests": cluster_digests,
            "identical": len(digests) == 1,
            "admission_rpcs": single[structure]["admission_rpcs"],
        }
    return section


def throughput_leg(host: str, port: int, workers: int,
                   structures=BENCH_STRUCTURES) -> dict[str, Any]:
    """``workers`` client processes against one server, concurrently;
    pooled latency percentiles and cross-process committed-ops/s."""
    from ..reporting.tables import percentile
    started = time.perf_counter()
    results = _run_clients(
        client_entry, workers,
        lambda worker_id: (worker_id, host, port,
                           structures[worker_id % len(structures)]),
        "repro-service-client", timeout=120.0)
    wall = time.perf_counter() - started
    errors = [r["error"] for r in results if "error" in r]
    latencies = [latency for r in results
                 for latency in r.get("latencies", ())]
    committed = sum(r.get("committed_operations", 0) for r in results)
    return {
        "workers": workers,
        "errors": errors,
        "committed_operations": committed,
        "wall_seconds": round(wall, 4),
        "committed_ops_per_second": round(committed / wall, 1)
        if wall > 0 else 0.0,
        "admission_rpcs": len(latencies),
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1000, 4)
            if latencies else 0.0,
            "p95": round(percentile(latencies, 95) * 1000, 4)
            if latencies else 0.0,
        },
        "per_worker": [
            {"worker": r["worker"], "structure": r["structure"],
             "workload": r["workload"],
             "commits": r["commits"], "aborts": r["aborts"],
             "committed_operations": r["committed_operations"],
             "wall_seconds": round(r["wall_seconds"], 4),
             "admission_rpcs": r["admission_rpcs"],
             "latency_ms": {
                 "p50": round(percentile(r["latencies"], 50) * 1000, 4)
                 if r["latencies"] else 0.0,
                 "p95": round(percentile(r["latencies"], 95) * 1000, 4)
                 if r["latencies"] else 0.0,
             },
             "serializable": r["serializable"]}
            for r in results if "error" not in r],
    }


def soak_point(host: str, port: int, clients: int, structure: str,
               duration: float) -> dict[str, Any]:
    """One point of the soak ramp: ``clients`` looping soak processes
    for ``duration`` seconds; committed-ops/s over the shared wall
    clock plus pooled latency percentiles."""
    from ..reporting.tables import percentile
    started = time.perf_counter()
    results = _run_clients(
        soak_client_entry, clients,
        lambda worker_id: (worker_id, host, port, structure, duration),
        "repro-soak-client", timeout=duration + 60.0)
    wall = time.perf_counter() - started
    errors = [r["error"] for r in results if "error" in r]
    latencies = [latency for r in results
                 for latency in r.get("latencies", ())]
    committed = sum(r.get("committed_operations", 0) for r in results)
    return {
        "clients": clients,
        "errors": errors,
        "runs": sum(r.get("runs", 0) for r in results),
        "domain_reuses": sum(r.get("domain_reuses", 0)
                             for r in results),
        "committed_operations": committed,
        "wall_seconds": round(wall, 4),
        "committed_ops_per_second": round(committed / wall, 1)
        if wall > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1000, 4)
            if latencies else 0.0,
            "p95": round(percentile(latencies, 95) * 1000, 4)
            if latencies else 0.0,
        },
    }


def soak_leg(host: str, port: int, *, structure: str = SOAK_STRUCTURE,
             ramp: Sequence[int] = SOAK_RAMP,
             point_seconds: float = SOAK_POINT_SECONDS,
             time_budget: float | None = None) -> dict[str, Any]:
    """Ramp client processes until committed-ops/s stops improving
    (the saturation knee) or the wall-clock budget runs out.  The knee
    is the best point measured; a ramp point that fails to gain
    :data:`SOAK_KNEE_GAIN` over it ends the ramp."""
    points: list[dict[str, Any]] = []
    errors: list[str] = []
    started = time.perf_counter()
    truncated = False
    best = 0.0
    for clients in ramp:
        if time_budget is not None and points \
                and time.perf_counter() - started >= time_budget:
            truncated = True
            break
        point = soak_point(host, port, clients, structure,
                           point_seconds)
        points.append(point)
        errors.extend(point["errors"])
        if point["errors"]:
            break
        ops = point["committed_ops_per_second"]
        stalled = points[:-1] and ops < best * (1.0 + SOAK_KNEE_GAIN)
        best = max(best, ops)
        if stalled:
            break  # the ramp stopped improving: past the knee
    # The knee is the best point actually measured — a final stalled
    # point can still edge out the one the stop rule compared against.
    measured = [point for point in points if not point["errors"]]
    knee = None
    if measured:
        top = max(measured,
                  key=lambda point: point["committed_ops_per_second"])
        knee = {
            "clients": top["clients"],
            "committed_ops_per_second":
                top["committed_ops_per_second"],
            "latency_p95_ms": top["latency_ms"]["p95"],
        }
    return {
        "structure": structure,
        "workload": _soak_workload().label,
        "point_seconds": point_seconds,
        "ramp": [point["clients"] for point in points],
        "points": points,
        "knee": knee,
        "truncated": truncated,
        "errors": errors,
    }


#: Counter families the metrics scrape must surface (one name per
#: exported per-shard stat plus the server-level cluster gauges; the
#: gate greps the Prometheus body).
EXPECTED_METRIC_NAMES = (
    "repro_shard_checks", "repro_shard_conflicts",
    "repro_shard_outstanding", "repro_shard_drift_checks",
    "repro_shard_stable_hits", "repro_shard_proved_hits",
    "repro_shard_synthesized_hits",
    "repro_shard_fallbacks", "repro_shard_fallback_admits",
    "repro_shard_undo_refusals", "repro_shard_compiled_hits",
    "repro_shard_eval_errors", "repro_shard_eval_errors_dropped",
    "repro_txn_outcomes_total", "repro_abort_rate",
    "repro_server_active_connections", "repro_server_worker_id",
    "repro_domain_reuse_total",
)


def metrics_leg(host: str, port: int) -> dict[str, Any]:
    """Scrape ``/metrics`` and check every per-shard counter family is
    exposed in Prometheus text format."""
    status, body = scrape_metrics(host, port)
    missing = [name for name in EXPECTED_METRIC_NAMES
               if name not in body]
    return {"status": status, "lines": body.count("\n"),
            "missing": missing,
            "ok": status == 200 and not missing}
