"""repro.service — admission as a service.

The verified gatekeeper leaves the process: an asyncio server
(:mod:`.server`) owns the sharded :class:`~repro.runtime.gatekeeper`
managers, many client worker processes (:mod:`.client`) speculate
against it over batched admission RPCs (:mod:`.protocol`), and a live
``/metrics`` endpoint (:mod:`.metrics`) exposes the per-shard counters
as JSON and Prometheus text.

The invariant carried over from the in-process path: served admission
decisions are byte-identical (``decision_digest()``) to local ones for
the same (structure, workload, policy, seed).

Import discipline: this package is imported lazily by the CLI —
``python -m repro list`` and ``serve --help`` must not pull asyncio
machinery; keep heavyweight imports out of module scope elsewhere.
"""

from .protocol import PROTOCOL_VERSION  # noqa: F401

__all__ = ["PROTOCOL_VERSION"]
