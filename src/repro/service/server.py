"""The asyncio admission server.

One process owns the sharded conflict managers; any number of client
worker processes speculate against it over the frame protocol
(:mod:`.protocol`).  Each ``open`` frame creates an admission
*domain* — one :class:`~repro.runtime.gatekeeper.ConflictManager`
configured like the in-process path (structure, policy, shard count,
stable/compiled arming) — so concurrent clients never share a log
unless they share a domain.

Dispatch discipline: on the served path the managers' thread locks are
uncontended (one event loop); serialization comes from per-domain
per-shard ``asyncio.Lock``s acquired in ascending shard order around
every check/record/release, exactly mirroring the in-process sharded
lock order.  Handlers never await while holding shard locks except on
the locks themselves, so admission for disjoint regions interleaves
across connections while same-region traffic serializes.

The same port speaks plain HTTP for observability: a connection whose
first four bytes are ``GET `` (impossible as a frame length prefix,
see :data:`~repro.service.protocol.MAX_FRAME`) is answered as an HTTP
request — ``/metrics`` in Prometheus text format, ``/metrics.json``
as JSON — and closed.

Shutdown is a graceful drain: the listener closes first, every
accepted frame is answered before its connection winds down, and only
connections still idle after the grace period are cancelled.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, Callable

from . import protocol
from .metrics import percentile, prometheus_text, snapshot_json

#: Closed domains retained for /metrics continuity (a scrape after a
#: bench run must still see the run's counters).
RETAINED_DOMAINS = 256

#: Upper bound on an HTTP request head; anything larger is dropped.
MAX_HTTP_HEAD = 16 * 1024


class _Domain:
    """One served admission domain: a conflict manager plus the
    asyncio-side lock array and outcome counters."""

    __slots__ = ("domain_id", "manager", "structure", "policy", "shards",
                 "stable", "compiled", "label", "locks", "touched_lock",
                 "commits", "aborts", "closed")

    def __init__(self, domain_id: int, manager, structure: str,
                 policy: str, shards: int, stable: bool, compiled: bool,
                 label: str) -> None:
        self.domain_id = domain_id
        self.manager = manager
        self.structure = structure
        self.policy = policy
        self.shards = shards
        self.stable = stable
        self.compiled = compiled
        self.label = label
        self.locks = [asyncio.Lock() for _ in range(manager.num_shards)]
        #: Guards the manager's touched-map mutations (record/release
        #: span shards; their bookkeeping must not interleave).
        self.touched_lock = asyncio.Lock()
        self.commits = 0
        self.aborts = 0
        self.closed = False

    def released(self) -> int:
        return self.commits + self.aborts

    def abort_rate(self) -> float:
        released = self.released()
        return self.aborts / released if released else 0.0

    def stats_payload(self) -> dict[str, Any]:
        return {"domain": self.domain_id, "structure": self.structure,
                "policy": self.policy, "shards": self.shards,
                "stable": self.stable, "compiled": self.compiled,
                "label": self.label, "closed": self.closed,
                "commits": self.commits, "aborts": self.aborts,
                "abort_rate": self.abort_rate(),
                "counters": self.manager.counters(),
                "shard_stats": self.manager.shard_stats(),
                "eval_error_sample": self.manager.eval_error_samples()}


class AdmissionServer:
    """The admission service: frame RPCs plus the HTTP metrics side."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry=None, worker_id: int = 0) -> None:
        from ..api import resolve_registry
        self.host = host
        self.port = port
        self.registry = resolve_registry(registry)
        #: This server's position in a shard-partitioned cluster (0 in
        #: a single-process deployment); it owns every shard id with
        #: ``shard_id % len(cluster_ports) == worker_id``.
        self.worker_id = worker_id
        #: Every cluster worker's port, in worker-id order — the
        #: partition map the ``hello`` response hands to clients.
        #: ``None`` until the cluster handshake (single-process servers
        #: report a one-entry map of their own port).
        self.cluster_ports: list[int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._domains: dict[int, _Domain] = {}
        self._next_domain = 0
        self._conn_tasks: set[asyncio.Task] = set()
        #: Structures whose drift-stable conditions were compiled and
        #: registered on this server's registry (one compile each).
        self._stable_ready: set[str] = set()
        self._compile_lock = asyncio.Lock()
        self._started = time.monotonic()
        self.connections_total = 0
        self.active_connections = 0
        self.rpcs_total = 0
        self.frames_total = 0
        self.http_requests_total = 0
        self.domain_reuse_total = 0

    def set_cluster(self, worker_id: int, ports: list[int]) -> None:
        """Install the cluster map (called between bind and serve: the
        workers bind ephemeral ports first, then everyone learns the
        full port list before accepting traffic)."""
        self.worker_id = worker_id
        self.cluster_ports = list(ports)

    # -- lifecycle -----------------------------------------------------------

    async def start(self, sock=None) -> None:
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, grace: float = 5.0) -> None:
        """Graceful drain: stop accepting, let live connections finish
        their in-flight frames (every accepted frame is answered before
        the connection loop re-reads), cancel stragglers after
        ``grace`` seconds."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = set(self._conn_tasks)
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.connections_total += 1
        self.active_connections += 1
        try:
            try:
                prefix = await reader.readexactly(4)
            except asyncio.IncompleteReadError:
                return
            if prefix == b"GET ":
                await self._serve_http(reader, writer)
                return
            await self._serve_frames(prefix, reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.active_connections -= 1
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_frames(self, first_prefix: bytes,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        prefix = first_prefix
        while True:
            try:
                length = protocol.unpack_length(prefix)
                body = await reader.readexactly(length)
                frame = protocol.decode_body(body)
            except (protocol.ProtocolError, ValueError) as exc:
                writer.write(protocol.pack_frame(
                    protocol.error_response(str(exc))))
                await writer.drain()
                return
            except asyncio.IncompleteReadError:
                return
            self.rpcs_total += 1
            response = await self._dispatch(frame)
            writer.write(protocol.pack_frame(response))
            await writer.drain()
            try:
                prefix = await reader.readexactly(4)
            except asyncio.IncompleteReadError:
                return

    async def _dispatch(self, frame: dict[str, Any]) -> dict[str, Any]:
        kind = frame.get("t")
        if kind == "batch":
            subframes = frame.get("frames", ())
            results = []
            for sub in subframes:
                if sub.get("t") == "batch":
                    results.append(protocol.error_response(
                        "batch frames do not nest"))
                else:
                    results.append(await self._handle_one(sub))
            return {"ok": True, "results": results}
        return await self._handle_one(frame)

    async def _handle_one(self, frame: dict[str, Any]) -> dict[str, Any]:
        self.frames_total += 1
        try:
            handler = getattr(self, f"_frame_{frame.get('t')}", None)
            if handler is None:
                return protocol.error_response(
                    f"unknown frame type {frame.get('t')!r}")
            return await handler(frame)
        except protocol.ProtocolError as exc:
            return protocol.error_response(str(exc))
        except Exception as exc:  # a bad frame must not kill the server
            return protocol.error_response(
                f"{type(exc).__name__}: {exc}")

    def _domain(self, frame: dict[str, Any]) -> _Domain:
        domain = self._domains.get(frame.get("d"))
        if domain is None or domain.closed:
            raise protocol.ProtocolError(
                f"unknown or closed domain {frame.get('d')!r}")
        return domain

    @contextlib.asynccontextmanager
    async def _locked(self, domain: _Domain, shard_ids):
        """Hold the domain's asyncio shard locks in ascending order —
        the same no-cycle discipline as the in-process sharded mode."""
        ids = sorted(set(shard_ids))
        for sid in ids:
            await domain.locks[sid].acquire()
        try:
            yield
        finally:
            for sid in reversed(ids):
                domain.locks[sid].release()

    # -- frame handlers ------------------------------------------------------

    async def _frame_hello(self, frame: dict[str, Any]) -> dict[str, Any]:
        if frame.get("v") != protocol.PROTOCOL_VERSION:
            return protocol.error_response(
                f"protocol version mismatch: server speaks "
                f"{protocol.PROTOCOL_VERSION}, client sent "
                f"{frame.get('v')!r}")
        ports = (self.cluster_ports if self.cluster_ports is not None
                 else [self.port])
        return {"ok": True, "v": protocol.PROTOCOL_VERSION,
                "server": "repro-admission",
                "cluster": {"workers": len(ports),
                            "worker_id": self.worker_id,
                            "ports": list(ports)}}

    async def _frame_ping(self, frame: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True}

    async def _frame_open(self, frame: dict[str, Any]) -> dict[str, Any]:
        structure = frame["structure"]
        stable = bool(frame.get("stable"))
        compiled = bool(frame.get("compiled"))
        if stable:
            await self._ensure_stable(structure)
        from ..runtime.gatekeeper import conflict_manager
        manager = conflict_manager(structure,
                                   frame.get("policy", "commutativity"),
                                   shards=int(frame.get("shards", 1)),
                                   registry=self.registry,
                                   stable=stable, compiled=compiled)
        domain_id = self._next_domain
        self._next_domain += 1
        self._domains[domain_id] = _Domain(
            domain_id, manager, structure,
            frame.get("policy", "commutativity"),
            int(frame.get("shards", 1)), stable, compiled,
            str(frame.get("label", "")))
        return {"ok": True, "domain": domain_id}

    async def _ensure_stable(self, structure: str) -> None:
        """Compile + register drift-stable conditions for ``structure``
        once per server (the engine cache makes reruns cheap); off the
        event loop — compilation is CPU work.  A registry that already
        carries stable conditions for the structure — an in-process
        server sharing its caller's registry after an ``--abduce`` or
        ``--prover`` compilation — is honoured as-is, so served
        decisions arm exactly the caller's tiers."""
        async with self._compile_lock:
            if structure in self._stable_ready:
                return
            if self.registry.has_stable_conditions(structure):
                self._stable_ready.add(structure)
                return
            from ..api import Session

            def compile_now() -> None:
                Session(registry=self.registry).compile_stable([structure])

            await asyncio.to_thread(compile_now)
            self._stable_ready.add(structure)

    @staticmethod
    def _shard_slice(manager, raw) -> tuple[int, ...]:
        """A client-supplied shard slice, validated and normalized to
        the ascending scan order every admission path uses."""
        try:
            ids = sorted({int(sid) for sid in raw})
        except (TypeError, ValueError):
            raise protocol.ProtocolError(f"bad shard slice {raw!r}")
        if ids and not 0 <= ids[0] <= ids[-1] < manager.num_shards:
            raise protocol.ProtocolError(
                f"shard slice {ids} outside [0, {manager.num_shards})")
        return tuple(ids)

    async def _frame_check(self, frame: dict[str, Any]) -> dict[str, Any]:
        domain = self._domain(frame)
        args = protocol.decode_value(frame["args"])
        current = protocol.decode_value(frame["state"])
        manager = domain.manager
        if frame.get("shards") is None:
            shard_ids = manager.shards_for(frame["op"], args)
        else:
            shard_ids = self._shard_slice(manager, frame["shards"])
        async with self._locked(domain, shard_ids):
            admitted, holder, shard = manager.check_detail(
                frame["txn"], frame["op"], args, current,
                shard_ids=shard_ids)
        return {"ok": True, "admitted": admitted, "holder": holder,
                "shard": shard}

    async def _frame_record(self, frame: dict[str, Any]) -> dict[str, Any]:
        domain = self._domain(frame)
        entry = protocol.unwire_operation(frame["entry"])
        manager = domain.manager
        if frame.get("shards") is None:
            shard_ids = manager.store_regions(entry.op_name, entry.args)
        else:
            shard_ids = self._shard_slice(manager, frame["shards"])
        async with self._locked(domain, shard_ids):
            async with domain.touched_lock:
                stored = manager.record(entry, shard_ids=shard_ids)
        return {"ok": True, "shards": list(stored)}

    async def _frame_release(self, frame: dict[str, Any]) -> dict[str, Any]:
        domain = self._domain(frame)
        manager = domain.manager
        async with domain.touched_lock:
            touched = manager.touched(frame["txn"])
            async with self._locked(domain, touched):
                manager.release(frame["txn"],
                                reason=frame.get("reason", "commit"))
        if frame.get("reason", "commit") == "abort":
            domain.aborts += 1
        else:
            domain.commits += 1
        return {"ok": True}

    async def _frame_reset(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Domain reuse: wipe the log/counters/outcomes but keep the
        manager — its armed stable conditions and compiled closures
        stay warm, so a repeated workload run skips the arming cost
        while starting from a decision-identical empty log."""
        domain = self._domain(frame)
        async with self._locked(domain, range(domain.manager.num_shards)):
            async with domain.touched_lock:
                domain.manager.reset()
        domain.commits = 0
        domain.aborts = 0
        self.domain_reuse_total += 1
        return {"ok": True, "domain": domain.domain_id}

    async def _frame_stats(self, frame: dict[str, Any]) -> dict[str, Any]:
        domain = self._domains.get(frame.get("d"))
        if domain is None:
            raise protocol.ProtocolError(
                f"unknown domain {frame.get('d')!r}")
        return {"ok": True, "stats": domain.stats_payload()}

    async def _frame_close(self, frame: dict[str, Any]) -> dict[str, Any]:
        domain = self._domain(frame)
        domain.closed = True
        domain.manager.close()
        self._prune_domains()
        return {"ok": True, "stats": domain.stats_payload()}

    def _prune_domains(self) -> None:
        closed = [d for d in self._domains.values() if d.closed]
        excess = len(closed) - RETAINED_DOMAINS
        for domain in closed[:max(0, excess)]:
            del self._domains[domain.domain_id]

    # -- metrics -------------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        domains = [d.stats_payload()
                   for d in sorted(self._domains.values(),
                                   key=lambda d: d.domain_id)]
        rates = [d.abort_rate() for d in self._domains.values()
                 if d.released()]
        return {
            "server": {
                "uptime_seconds": time.monotonic() - self._started,
                "connections_total": self.connections_total,
                "active_connections": self.active_connections,
                "rpcs_total": self.rpcs_total,
                "frames_total": self.frames_total,
                "http_requests_total": self.http_requests_total,
                "domains_open": sum(1 for d in self._domains.values()
                                    if not d.closed),
                "domains_total": self._next_domain,
                "domain_reuse_total": self.domain_reuse_total,
                "worker_id": self.worker_id,
                "cluster_workers": (len(self.cluster_ports)
                                    if self.cluster_ports else 1),
                "protocol_version": protocol.PROTOCOL_VERSION,
            },
            "domains": domains,
            "abort_rate_percentiles": {"p50": percentile(rates, 50),
                                       "p95": percentile(rates, 95)},
        }

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self.http_requests_total += 1
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                asyncio.LimitOverrunError):
            return
        if len(head) > MAX_HTTP_HEAD:
            return
        # The b"GET " prefix was consumed by the sniff; the head starts
        # at the path.
        path = head.split(b" ", 1)[0].decode("latin-1", "replace")
        if path in ("/metrics", "/"):
            body = prometheus_text(self.metrics_snapshot())
            ctype = "text/plain; version=0.0.4; charset=utf-8"
            status = "200 OK"
        elif path == "/metrics.json":
            body = snapshot_json(self.metrics_snapshot())
            ctype = "application/json"
            status = "200 OK"
        else:
            body = "not found\n"
            ctype = "text/plain; charset=utf-8"
            status = "404 Not Found"
        payload = body.encode("utf-8")
        writer.write(
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + payload)
        await writer.drain()


def run_server(host: str = "127.0.0.1", port: int = 0, *, registry=None,
               on_ready: Callable[[int], None] | None = None,
               grace: float = 5.0, sock=None, worker_id: int = 0,
               cluster_ports: list[int] | None = None) -> None:
    """Run an admission server until SIGTERM/SIGINT, then drain.

    ``on_ready`` is called with the bound port once the listener is up
    (port 0 binds an ephemeral port) — the CLI prints it, the bench
    harness pipes it back to the parent process.  A cluster worker
    passes its pre-bound ``sock`` (the parent collected every worker's
    port before any of them serve) plus its ``worker_id`` and the full
    ``cluster_ports`` map, which the ``hello`` response hands to
    clients.
    """
    import signal

    async def main() -> None:
        server = AdmissionServer(host, port, registry=registry,
                                 worker_id=worker_id)
        if cluster_ports is not None:
            server.set_cluster(worker_id, cluster_ports)
        await server.start(sock=sock)
        if on_ready is not None:
            on_ready(server.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, stop.set)
        serve = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        serve.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve
        await server.shutdown(grace=grace)

    asyncio.run(main())
