"""Client side of the admission service.

Worker processes speculate locally (each owns its concrete structure
and scheduler) while every admission decision crosses the wire:
:class:`RemoteConflictManager` duck-types the in-process
:class:`~repro.runtime.gatekeeper.ConflictManager` surface the serial
executor uses — ``shards_for`` / ``check_many`` / ``record`` /
``release`` plus the counter surface — over one blocking TCP
connection.

Round-trips are amortized by pipelining: ``record`` and ``release``
frames are buffered client-side and flushed inside the *next*
``check`` as one ``batch`` frame (order preserved, so the server
applies exactly the sequence an in-process manager would have seen —
decision identity is free).  A transaction's final release rides with
the next transaction's first check; anything still buffered flushes on
stats collection or close.

:class:`ServiceBackend` plugs this into
``SpeculativeExecutor(backend=...)`` — serial per process
(``supports_threads`` is False); cross-process parallelism comes from
running more client processes, which is the point of the service.

The backend is *pooled*: it keeps one persistent connection per
cluster worker (the partition map comes from ``hello``) and a keyed
domain cache, so repeated executions of the same (structure, policy,
shards, arming) reuse the server-side domain through a ``reset`` frame
— the compiled stable conditions stay warm instead of being re-armed
per run.  :meth:`ServiceBackend.bump_epoch` invalidates the cache
explicitly (the cached domains are closed server-side).
"""

from __future__ import annotations

import socket
import time
from typing import Any

from ..runtime.backend import AdmissionBackend
from ..runtime.gatekeeper import LoggedOperation
from . import protocol


class ServiceError(RuntimeError):
    """The server answered a frame with ``ok: false``."""


#: Ceiling on one exponential-backoff sleep between connect attempts.
MAX_BACKOFF_SECONDS = 2.0


class ServiceClient:
    """A blocking frame-RPC connection to one admission server.

    Connecting retries with bounded exponential backoff (a server
    subprocess that is still binding its port looks exactly like a
    refused connection); after the handshake every call is covered by
    ``call_timeout`` so a hung server surfaces as ``socket.timeout``
    instead of a silent stall."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 call_timeout: float = 60.0,
                 connect_retries: int = 5,
                 backoff: float = 0.05) -> None:
        self.host = host
        self.port = port
        self._sock = self._connect(host, port, timeout,
                                   connect_retries, backoff)
        self._sock.settimeout(call_timeout)
        self._recv = self._sock.makefile("rb")
        hello = self.call(protocol.hello_frame())
        self.server_version = hello.get("v")
        #: The server's cluster map: worker count, this server's worker
        #: id, and every worker's port (single-process servers report a
        #: one-entry map).
        self.cluster = hello.get("cluster") or {
            "workers": 1, "worker_id": 0, "ports": [port]}

    @staticmethod
    def _connect(host: str, port: int, timeout: float, retries: int,
                 backoff: float) -> socket.socket:
        delay = backoff
        for attempt in range(retries + 1):
            try:
                return socket.create_connection((host, port),
                                                timeout=timeout)
            except OSError:
                if attempt == retries:
                    raise
                time.sleep(min(delay, MAX_BACKOFF_SECONDS))
                delay *= 2
        raise OSError("unreachable")  # pragma: no cover

    def _read_response(self) -> dict[str, Any]:
        prefix = self._recv.read(4)
        if len(prefix) != 4:
            raise ConnectionError("server closed the connection")
        length = protocol.unpack_length(prefix)
        body = self._recv.read(length)
        if len(body) != length:
            raise ConnectionError("truncated response frame")
        return protocol.decode_body(body)

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown error"))
        return response

    def call(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One frame, one response; raises on ``ok: false``."""
        self._sock.sendall(protocol.pack_frame(frame))
        return self._checked(self._read_response())

    def call_batch(self, frames: list[dict[str, Any]]) \
            -> list[dict[str, Any]]:
        """A batch of frames in one round-trip; raises if the batch or
        any sub-frame failed."""
        response = self.call(protocol.batch_frame(frames))
        return [self._checked(result)
                for result in response["results"]]

    def close(self) -> None:
        try:
            self._recv.close()
        finally:
            self._sock.close()


class RemoteConflictManager:
    """The executor-facing manager surface, served over the wire.

    Serial use only (one in-flight RPC per connection); the executor
    enforces this through ``ServiceBackend.supports_threads``.
    """

    def __init__(self, client: ServiceClient, domain: int,
                 shards: int, owns_client: bool = True,
                 pooled: bool = False) -> None:
        self._client = client
        self._domain = domain
        self._owns_client = owns_client
        #: Pooled managers belong to a backend's domain cache: close()
        #: flushes and snapshots final stats but leaves the domain open
        #: (the next execution resets it) and the connection up.
        self._pooled = pooled
        self.num_shards = shards
        #: record/release frames awaiting the next check's batch.
        self._pending: list[dict[str, Any]] = []
        #: Stats memo; invalidated by every new frame, final after close.
        self._stats: dict[str, Any] | None = None
        self._closed = False
        #: Wall seconds of each admission round-trip (one per
        #: ``check_many``), surfaced on the report as the client half
        #: of the service latency story.
        self.admission_latencies: list[float] = []

    # -- the admission hot path ----------------------------------------------

    def shards_for(self, op_name: str,
                   args: tuple[Any, ...]) -> tuple[int, ...]:
        """Routing is the server's business: the empty lock set tells
        the (serial) executor there is nothing to lock locally, and the
        server recomputes the authoritative scan set per check."""
        return ()

    def check_many(self, txn_id: int, op_name: str,
                   args: tuple[Any, ...], current,
                   shard_ids=None) -> tuple[bool, int | None]:
        frames = self._pending
        self._pending = []
        frames.append(protocol.check_frame(self._domain, txn_id,
                                           op_name, args, current))
        self._stats = None
        started = time.perf_counter()
        results = self._client.call_batch(frames)
        self.admission_latencies.append(time.perf_counter() - started)
        verdict = results[-1]
        return bool(verdict["admitted"]), verdict["holder"]

    def admits(self, txn_id: int, op_name: str, args: tuple[Any, ...],
               current) -> bool:
        return self.check_many(txn_id, op_name, args, current)[0]

    def admits_ex(self, txn_id: int, op_name: str,
                  args: tuple[Any, ...], current,
                  shard_ids=None) -> tuple[bool, int | None]:
        return self.check_many(txn_id, op_name, args, current,
                               shard_ids=shard_ids)

    def record(self, entry: LoggedOperation) -> tuple[int, ...]:
        self._pending.append(protocol.record_frame(self._domain, entry))
        self._stats = None
        return ()

    def release(self, txn_id: int, reason: str = "commit") -> None:
        self._pending.append(protocol.release_frame(self._domain,
                                                    txn_id, reason))
        self._stats = None

    def touched(self, txn_id: int) -> tuple[int, ...]:
        return ()

    # -- stats surface (mirrors ConflictManager's counters) ------------------

    def _flush(self) -> None:
        if self._pending:
            frames, self._pending = self._pending, []
            self._client.call_batch(frames)

    def stats(self) -> dict[str, Any]:
        """The domain's live stats payload (flushes the pipeline so
        buffered releases are counted)."""
        if self._stats is None:
            self._flush()
            response = self._client.call(
                protocol.stats_frame(self._domain))
            self._stats = response["stats"]
        return self._stats

    def counters(self) -> dict[str, int]:
        return dict(self.stats()["counters"])

    def _counter(self, name: str) -> int:
        return self.stats()["counters"][name]

    checks = property(lambda self: self._counter("checks"))
    conflicts = property(lambda self: self._counter("conflicts"))
    drift_checks = property(lambda self: self._counter("drift_checks"))
    stable_hits = property(lambda self: self._counter("stable_hits"))
    proved_hits = property(lambda self: self._counter("proved_hits"))
    synthesized_hits = property(
        lambda self: self._counter("synthesized_hits"))
    fallbacks = property(lambda self: self._counter("fallbacks"))
    fallback_admits = property(
        lambda self: self._counter("fallback_admits"))
    undo_refusals = property(lambda self: self._counter("undo_refusals"))
    compiled_hits = property(lambda self: self._counter("compiled_hits"))
    eval_errors = property(lambda self: self._counter("eval_errors"))
    eval_errors_dropped = property(
        lambda self: self._counter("eval_errors_dropped"))

    def eval_error_samples(self) -> list[dict[str, Any]]:
        return list(self.stats()["eval_error_sample"])

    def shard_stats(self) -> list[dict[str, int]]:
        return [dict(stats) for stats in self.stats()["shard_stats"]]

    def close(self) -> None:
        """Flush the pipeline and snapshot final stats.  Owned
        connections retire the server-side domain and drop the socket;
        pooled ones leave both alive for the backend's domain cache to
        reuse."""
        if self._closed:
            return
        self._closed = True
        if self._pooled:
            self._flush()
            response = self._client.call(
                protocol.stats_frame(self._domain))
            self._stats = response["stats"]
            return
        try:
            self._flush()
            response = self._client.call(
                protocol.close_frame(self._domain))
            self._stats = response["stats"]
        finally:
            if self._owns_client:
                self._client.close()


class ServiceBackend(AdmissionBackend):
    """Admission decisions from a remote server or cluster.

    Connections are pooled (one per cluster worker, learned from the
    ``hello`` partition map) and server-side domains are cached by
    (structure, policy, shards, stable, compiled): a repeated
    execution sends a ``reset`` frame instead of re-opening, so the
    server's armed stable conditions and compiled closures stay warm.
    ``bump_epoch()`` invalidates the cache.  Serial per process, like
    the managers it hands out."""

    kind = "service"
    supports_threads = False

    def __init__(self, host: str, port: int, *, label: str = "",
                 timeout: float = 30.0, call_timeout: float = 60.0,
                 connect_retries: int = 5, registry=None) -> None:
        self.host = host
        self.port = port
        self.label = label
        self.timeout = timeout
        self.call_timeout = call_timeout
        self.connect_retries = connect_retries
        self.registry = registry
        self._clients: list[ServiceClient] | None = None
        self._epoch = 0
        #: (epoch, structure, policy, shards, stable, compiled) ->
        #: one open domain id per pooled connection.
        self._domains: dict[tuple, list[int]] = {}
        #: Executions served by resetting a cached domain instead of
        #: opening one (mirrors the server's ``domain_reuse_total``).
        self.domain_reuses = 0

    def _dial(self, port: int) -> ServiceClient:
        return ServiceClient(self.host, port, timeout=self.timeout,
                             call_timeout=self.call_timeout,
                             connect_retries=self.connect_retries)

    def _pool(self) -> list[ServiceClient]:
        """The pooled connections, one per cluster worker in worker-id
        order (a single-process server pools one)."""
        if self._clients is None:
            first = self._dial(self.port)
            try:
                cluster = first.cluster
                ports = list(cluster.get("ports") or [self.port])
                clients: list[ServiceClient | None] = [None] * len(ports)
                clients[int(cluster.get("worker_id", 0))] = first
                for i, port in enumerate(ports):
                    if clients[i] is None:
                        clients[i] = self._dial(port)
            except BaseException:
                first.close()
                raise
            self._clients = clients
        return self._clients

    def conflict_manager(self, ds_name: str, *,
                         policy: str = "commutativity", shards: int = 1,
                         stable: bool = False, compiled: bool = False):
        clients = self._pool()
        key = (self._epoch, ds_name, policy, shards, stable, compiled)
        domains = self._domains.get(key)
        if domains is not None:
            try:
                for client, domain in zip(clients, domains):
                    client.call(protocol.reset_frame(domain))
                self.domain_reuses += 1
            except ServiceError:
                # The server evicted a retained domain; fall back to a
                # fresh open under the same key.
                del self._domains[key]
                domains = None
        if domains is None:
            domains = [client.call(protocol.open_frame(
                ds_name, policy=policy, shards=shards, stable=stable,
                compiled=compiled, label=self.label))["domain"]
                for client in clients]
            self._domains[key] = domains
        if len(clients) == 1:
            return RemoteConflictManager(clients[0], domains[0], shards,
                                         owns_client=False, pooled=True)
        from .cluster import PartitionedConflictManager
        return PartitionedConflictManager(clients, domains, ds_name,
                                          policy=policy, shards=shards,
                                          registry=self.registry)

    def bump_epoch(self) -> None:
        """Explicit domain-cache invalidation: close every cached
        domain server-side and start a fresh cache generation (the
        next execution re-opens and re-arms)."""
        self._epoch += 1
        if self._clients is not None:
            for domains in self._domains.values():
                for client, domain in zip(self._clients, domains):
                    try:
                        client.call(protocol.close_frame(domain))
                    except (ServiceError, OSError):
                        pass
        self._domains.clear()

    def close(self) -> None:
        """Close cached domains and drop the pooled connections."""
        self.bump_epoch()
        clients, self._clients = self._clients, None
        for client in clients or ():
            try:
                client.close()
            except OSError:
                pass
