"""Client side of the admission service.

Worker processes speculate locally (each owns its concrete structure
and scheduler) while every admission decision crosses the wire:
:class:`RemoteConflictManager` duck-types the in-process
:class:`~repro.runtime.gatekeeper.ConflictManager` surface the serial
executor uses — ``shards_for`` / ``check_many`` / ``record`` /
``release`` plus the counter surface — over one blocking TCP
connection.

Round-trips are amortized by pipelining: ``record`` and ``release``
frames are buffered client-side and flushed inside the *next*
``check`` as one ``batch`` frame (order preserved, so the server
applies exactly the sequence an in-process manager would have seen —
decision identity is free).  A transaction's final release rides with
the next transaction's first check; anything still buffered flushes on
stats collection or close.

:class:`ServiceBackend` plugs this into
``SpeculativeExecutor(backend=...)`` — serial per process
(``supports_threads`` is False); cross-process parallelism comes from
running more client processes, which is the point of the service.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from ..runtime.backend import AdmissionBackend
from ..runtime.gatekeeper import LoggedOperation
from . import protocol


class ServiceError(RuntimeError):
    """The server answered a frame with ``ok: false``."""


class ServiceClient:
    """A blocking frame-RPC connection to one admission server."""

    def __init__(self, host: str, port: int,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._recv = self._sock.makefile("rb")
        hello = self.call(protocol.hello_frame())
        self.server_version = hello.get("v")

    def _read_response(self) -> dict[str, Any]:
        prefix = self._recv.read(4)
        if len(prefix) != 4:
            raise ConnectionError("server closed the connection")
        length = protocol.unpack_length(prefix)
        body = self._recv.read(length)
        if len(body) != length:
            raise ConnectionError("truncated response frame")
        return protocol.decode_body(body)

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown error"))
        return response

    def call(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One frame, one response; raises on ``ok: false``."""
        self._sock.sendall(protocol.pack_frame(frame))
        return self._checked(self._read_response())

    def call_batch(self, frames: list[dict[str, Any]]) \
            -> list[dict[str, Any]]:
        """A batch of frames in one round-trip; raises if the batch or
        any sub-frame failed."""
        response = self.call(protocol.batch_frame(frames))
        return [self._checked(result)
                for result in response["results"]]

    def close(self) -> None:
        try:
            self._recv.close()
        finally:
            self._sock.close()


class RemoteConflictManager:
    """The executor-facing manager surface, served over the wire.

    Serial use only (one in-flight RPC per connection); the executor
    enforces this through ``ServiceBackend.supports_threads``.
    """

    def __init__(self, client: ServiceClient, domain: int,
                 shards: int, owns_client: bool = True) -> None:
        self._client = client
        self._domain = domain
        self._owns_client = owns_client
        self.num_shards = shards
        #: record/release frames awaiting the next check's batch.
        self._pending: list[dict[str, Any]] = []
        #: Stats memo; invalidated by every new frame, final after close.
        self._stats: dict[str, Any] | None = None
        self._closed = False
        #: Wall seconds of each admission round-trip (one per
        #: ``check_many``), surfaced on the report as the client half
        #: of the service latency story.
        self.admission_latencies: list[float] = []

    # -- the admission hot path ----------------------------------------------

    def shards_for(self, op_name: str,
                   args: tuple[Any, ...]) -> tuple[int, ...]:
        """Routing is the server's business: the empty lock set tells
        the (serial) executor there is nothing to lock locally, and the
        server recomputes the authoritative scan set per check."""
        return ()

    def check_many(self, txn_id: int, op_name: str,
                   args: tuple[Any, ...], current,
                   shard_ids=None) -> tuple[bool, int | None]:
        frames = self._pending
        self._pending = []
        frames.append(protocol.check_frame(self._domain, txn_id,
                                           op_name, args, current))
        self._stats = None
        started = time.perf_counter()
        results = self._client.call_batch(frames)
        self.admission_latencies.append(time.perf_counter() - started)
        verdict = results[-1]
        return bool(verdict["admitted"]), verdict["holder"]

    def admits(self, txn_id: int, op_name: str, args: tuple[Any, ...],
               current) -> bool:
        return self.check_many(txn_id, op_name, args, current)[0]

    def admits_ex(self, txn_id: int, op_name: str,
                  args: tuple[Any, ...], current,
                  shard_ids=None) -> tuple[bool, int | None]:
        return self.check_many(txn_id, op_name, args, current,
                               shard_ids=shard_ids)

    def record(self, entry: LoggedOperation) -> tuple[int, ...]:
        self._pending.append(protocol.record_frame(self._domain, entry))
        self._stats = None
        return ()

    def release(self, txn_id: int, reason: str = "commit") -> None:
        self._pending.append(protocol.release_frame(self._domain,
                                                    txn_id, reason))
        self._stats = None

    def touched(self, txn_id: int) -> tuple[int, ...]:
        return ()

    # -- stats surface (mirrors ConflictManager's counters) ------------------

    def _flush(self) -> None:
        if self._pending:
            frames, self._pending = self._pending, []
            self._client.call_batch(frames)

    def stats(self) -> dict[str, Any]:
        """The domain's live stats payload (flushes the pipeline so
        buffered releases are counted)."""
        if self._stats is None:
            self._flush()
            response = self._client.call(
                protocol.stats_frame(self._domain))
            self._stats = response["stats"]
        return self._stats

    def counters(self) -> dict[str, int]:
        return dict(self.stats()["counters"])

    def _counter(self, name: str) -> int:
        return self.stats()["counters"][name]

    checks = property(lambda self: self._counter("checks"))
    conflicts = property(lambda self: self._counter("conflicts"))
    drift_checks = property(lambda self: self._counter("drift_checks"))
    stable_hits = property(lambda self: self._counter("stable_hits"))
    proved_hits = property(lambda self: self._counter("proved_hits"))
    fallbacks = property(lambda self: self._counter("fallbacks"))
    fallback_admits = property(
        lambda self: self._counter("fallback_admits"))
    undo_refusals = property(lambda self: self._counter("undo_refusals"))
    compiled_hits = property(lambda self: self._counter("compiled_hits"))
    eval_errors = property(lambda self: self._counter("eval_errors"))
    eval_errors_dropped = property(
        lambda self: self._counter("eval_errors_dropped"))

    def eval_error_samples(self) -> list[dict[str, Any]]:
        return list(self.stats()["eval_error_sample"])

    def shard_stats(self) -> list[dict[str, int]]:
        return [dict(stats) for stats in self.stats()["shard_stats"]]

    def close(self) -> None:
        """Flush the pipeline, retire the server-side domain (its final
        stats become this manager's), and drop the connection."""
        if self._closed:
            return
        self._closed = True
        try:
            self._flush()
            response = self._client.call(
                protocol.close_frame(self._domain))
            self._stats = response["stats"]
        finally:
            if self._owns_client:
                self._client.close()


class ServiceBackend(AdmissionBackend):
    """Admission decisions from a remote server; one connection and
    one server-side domain per execution."""

    kind = "service"
    supports_threads = False

    def __init__(self, host: str, port: int, *, label: str = "",
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.label = label
        self.timeout = timeout

    def conflict_manager(self, ds_name: str, *,
                         policy: str = "commutativity", shards: int = 1,
                         stable: bool = False,
                         compiled: bool = False) -> RemoteConflictManager:
        client = ServiceClient(self.host, self.port,
                               timeout=self.timeout)
        try:
            response = client.call(protocol.open_frame(
                ds_name, policy=policy, shards=shards, stable=stable,
                compiled=compiled, label=self.label))
        except BaseException:
            client.close()
            raise
        return RemoteConflictManager(client, response["domain"], shards)
