"""Shard-partitioned multi-process admission cluster.

One admission server is one event loop on one core.  The cluster runs
``N`` worker processes, each owning a disjoint slice of every domain's
shard space — shard ``s`` belongs to worker ``s % N`` — so admission
work for disjoint regions lands on different cores.  There is no
server-side router: the *client* learns the partition map from
``hello`` (every worker reports the same port list, installed before
any worker accepts traffic), opens one pooled connection per worker,
and splits each check/record/release by shard slice.

Why the merged decisions are identical to a single-process server's
(the digest-identity anchor that makes the deployment change safe):

- Each domain has one serial client, and per-connection frame order is
  preserved, so worker ``w``'s per-shard logs are byte-identical to
  the single process's logs for the shards ``w`` owns.  A pending
  (pipelined) record/release only ever matters on the workers that
  store it, and any check that could scan those shards is routed to
  the same workers, where it flushes the pending frames first — so no
  check ever misses an entry that a single process would have seen.
- A check scans shards in ascending id order and stops at the first
  conflict.  Each worker scans its slice ascending and reports the
  conflicting shard; the merge takes the smallest conflicting shard
  across workers, which is exactly the shard the single process would
  have stopped at — same verdict, same holder.
- Globally-interacting operations (``size``, ``indexOf``, ...) route
  to every shard, hence to every worker's slice; pair conditions are
  pure, so replicated checks agree everywhere.  Only *counters*
  differ (each worker checks its replica once), and counters are
  deliberately outside :meth:`ExecutionReport.decision_digest`.

The ascending-lock-order discipline needs no cross-worker coordination:
each worker's asyncio shard locks cover exactly its own slice, and the
client's serial per-domain traffic means there is nothing to deadlock
against.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any, Sequence

from . import protocol

#: Seconds to wait for each cluster worker to report its port (and,
#: after the map broadcast, its readiness).
CLUSTER_START_TIMEOUT = 30.0


# -- partitioning (pure helpers, shared by client and tests) -----------------

def worker_of(shard_id: int, workers: int) -> int:
    """The cluster worker owning ``shard_id``."""
    return shard_id % workers


def split_slices(shard_ids: Sequence[int],
                 workers: int) -> dict[int, tuple[int, ...]]:
    """Partition a routed shard set by owning worker, preserving the
    ascending scan order within each slice (``shard_ids`` arrive
    sorted from ``normalize_route``)."""
    plan: dict[int, list[int]] = {}
    for sid in shard_ids:
        plan.setdefault(worker_of(sid, workers), []).append(sid)
    return {w: tuple(ids) for w, ids in plan.items()}


def merge_verdicts(verdicts: Sequence[dict[str, Any]]) \
        -> tuple[bool, int | None, int | None]:
    """Merge per-worker check responses into the single-process
    verdict: admitted iff every slice admitted; otherwise the conflict
    at the smallest shard id wins (ascending scan order means that is
    the conflict a single process would have stopped at)."""
    conflicts = [(int(v["shard"]), v["holder"]) for v in verdicts
                 if not v.get("admitted")]
    if conflicts:
        shard, holder = min(conflicts, key=lambda pair: pair[0])
        return False, holder, shard
    return True, None, None


# -- the client-side router ---------------------------------------------------

class PartitionedConflictManager:
    """The executor-facing manager surface over a shard-partitioned
    cluster: one pooled connection and one server-side domain per
    worker, frames split by shard slice, verdicts merged in order.

    Serial use only, like :class:`~repro.service.client.
    RemoteConflictManager`; routing is computed client-side by a
    local manager of the same (structure, policy, shards) — the exact
    router classes the servers run, so the split agrees with where
    entries are stored.
    """

    def __init__(self, clients, domains: Sequence[int], ds_name: str, *,
                 policy: str = "commutativity", shards: int = 1,
                 registry=None) -> None:
        from ..runtime.gatekeeper import conflict_manager
        self._clients = list(clients)
        self._domains = list(domains)
        self._workers = len(self._clients)
        self.num_shards = shards
        #: Routing only — store/scan regions; never armed, never logs.
        self._router = conflict_manager(ds_name, policy, shards=shards,
                                        registry=registry)
        #: Per-worker record/release frames awaiting that worker's next
        #: check (order preserved per connection => decision identity).
        self._pending: list[list[dict[str, Any]]] = \
            [[] for _ in self._clients]
        self._stats: dict[str, Any] | None = None
        self._closed = False
        self.admission_latencies: list[float] = []

    # -- the admission hot path ----------------------------------------------

    def shards_for(self, op_name: str,
                   args: tuple[Any, ...]) -> tuple[int, ...]:
        """Nothing to lock locally (the serial executor's contract);
        the authoritative scan happens worker-side per slice."""
        return ()

    def check_many(self, txn_id: int, op_name: str,
                   args: tuple[Any, ...], current,
                   shard_ids=None) -> tuple[bool, int | None]:
        route = self._router.shards_for(op_name, args)
        plan = split_slices(route, self._workers)
        self._stats = None
        started = time.perf_counter()
        verdicts = []
        for worker in sorted(plan):
            frames = self._pending[worker]
            self._pending[worker] = []
            frames.append(protocol.check_frame(
                self._domains[worker], txn_id, op_name, args, current,
                shards=plan[worker]))
            verdicts.append(self._clients[worker].call_batch(frames)[-1])
        self.admission_latencies.append(time.perf_counter() - started)
        admitted, holder, _ = merge_verdicts(verdicts)
        return admitted, holder

    def admits(self, txn_id: int, op_name: str, args: tuple[Any, ...],
               current) -> bool:
        return self.check_many(txn_id, op_name, args, current)[0]

    def admits_ex(self, txn_id: int, op_name: str,
                  args: tuple[Any, ...], current,
                  shard_ids=None) -> tuple[bool, int | None]:
        return self.check_many(txn_id, op_name, args, current,
                               shard_ids=shard_ids)

    def record(self, entry, shard_ids=None) -> tuple[int, ...]:
        route = self._router.store_regions(entry.op_name, entry.args)
        for worker, slice_ids in split_slices(route,
                                              self._workers).items():
            self._pending[worker].append(protocol.record_frame(
                self._domains[worker], entry, shards=slice_ids))
        self._stats = None
        return ()

    def release(self, txn_id: int, reason: str = "commit") -> None:
        """Released on *every* worker: a worker that logged nothing
        for the transaction treats it as a no-op pop but still counts
        the outcome, so per-worker commit/abort metrics agree."""
        for worker in range(self._workers):
            self._pending[worker].append(protocol.release_frame(
                self._domains[worker], txn_id, reason))
        self._stats = None

    def touched(self, txn_id: int) -> tuple[int, ...]:
        return ()

    # -- stats surface (merged across workers) --------------------------------

    def _flush_all(self) -> None:
        for worker, frames in enumerate(self._pending):
            if frames:
                self._pending[worker] = []
                self._clients[worker].call_batch(frames)

    def stats(self) -> dict[str, Any]:
        if self._stats is None:
            self._flush_all()
            per_worker = [
                client.call(protocol.stats_frame(domain))["stats"]
                for client, domain in zip(self._clients, self._domains)]
            self._stats = self._merge_stats(per_worker)
        return self._stats

    def _merge_stats(self,
                     per_worker: list[dict[str, Any]]) -> dict[str, Any]:
        """One domain view from the per-worker slices: shard ``s``
        comes from its owner, aggregate counters are summed (slices
        are disjoint), and outcomes come from any worker — every
        release is delivered to every worker, so after a flush they
        all agree (max is robust mid-flight)."""
        merged = dict(per_worker[0])
        merged["counters"] = {
            key: sum(stats["counters"].get(key, 0)
                     for stats in per_worker)
            for key in per_worker[0]["counters"]}
        merged["shard_stats"] = [
            per_worker[worker_of(sid, self._workers)]["shard_stats"][sid]
            for sid in range(self.num_shards)]
        merged["commits"] = max(s["commits"] for s in per_worker)
        merged["aborts"] = max(s["aborts"] for s in per_worker)
        released = merged["commits"] + merged["aborts"]
        merged["abort_rate"] = (merged["aborts"] / released
                                if released else 0.0)
        merged["eval_error_sample"] = [
            sample for stats in per_worker
            for sample in stats["eval_error_sample"]]
        merged["cluster_workers"] = self._workers
        return merged

    def counters(self) -> dict[str, int]:
        return dict(self.stats()["counters"])

    def _counter(self, name: str) -> int:
        return self.stats()["counters"][name]

    checks = property(lambda self: self._counter("checks"))
    conflicts = property(lambda self: self._counter("conflicts"))
    drift_checks = property(lambda self: self._counter("drift_checks"))
    stable_hits = property(lambda self: self._counter("stable_hits"))
    proved_hits = property(lambda self: self._counter("proved_hits"))
    synthesized_hits = property(
        lambda self: self._counter("synthesized_hits"))
    fallbacks = property(lambda self: self._counter("fallbacks"))
    fallback_admits = property(
        lambda self: self._counter("fallback_admits"))
    undo_refusals = property(lambda self: self._counter("undo_refusals"))
    compiled_hits = property(lambda self: self._counter("compiled_hits"))
    eval_errors = property(lambda self: self._counter("eval_errors"))
    eval_errors_dropped = property(
        lambda self: self._counter("eval_errors_dropped"))

    def eval_error_samples(self) -> list[dict[str, Any]]:
        return list(self.stats()["eval_error_sample"])

    def shard_stats(self) -> list[dict[str, int]]:
        return [dict(stats) for stats in self.stats()["shard_stats"]]

    def close(self) -> None:
        """Flush every pipeline and snapshot merged final stats.  The
        domains and connections belong to the backend's pool — the
        next execution resets the domains instead of re-opening."""
        if self._closed:
            return
        self._closed = True
        self._flush_all()
        self.stats()


# -- cluster process management ----------------------------------------------

def worker_entry(conn, host: str) -> None:
    """Subprocess target for one cluster worker: bind an ephemeral
    port, report it, learn the full cluster map (two-phase handshake —
    every worker knows every port before any of them serve), then run
    the admission server until SIGTERM."""
    import socket as socket_mod
    sock = socket_mod.create_server((host, 0))
    conn.send(sock.getsockname()[1])
    worker_id, ports = conn.recv()
    from .server import run_server

    def ready(port: int) -> None:
        conn.send("ready")
        conn.close()

    run_server(host, 0, sock=sock, worker_id=worker_id,
               cluster_ports=ports, on_ready=ready)


def start_cluster(workers: int, host: str = "127.0.0.1"):
    """Spawn ``workers`` admission-server processes, broadcast the
    partition map, wait until every worker serves; returns
    ``(processes, ports)`` with ports in worker-id order."""
    ctx = mp.get_context("spawn")
    processes, pipes = [], []
    try:
        for worker_id in range(workers):
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=worker_entry, args=(child, host),
                name=f"repro-admission-worker-{worker_id}")
            process.start()
            child.close()
            processes.append(process)
            pipes.append(parent)
        ports = []
        for parent in pipes:
            if not parent.poll(CLUSTER_START_TIMEOUT):
                raise RuntimeError(
                    "cluster worker did not report its port in time")
            ports.append(parent.recv())
        for worker_id, parent in enumerate(pipes):
            parent.send((worker_id, ports))
        for parent in pipes:
            if not parent.poll(CLUSTER_START_TIMEOUT):
                raise RuntimeError(
                    "cluster worker did not start serving in time")
            parent.recv()
            parent.close()
    except BaseException:
        stop_cluster(processes)
        raise
    return processes, ports


def stop_cluster(processes) -> None:
    """SIGTERM every worker (graceful drain), escalate stragglers."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(10.0)
        if process.is_alive():
            process.kill()
            process.join(5.0)
