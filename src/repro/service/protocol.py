"""Wire protocol for the admission service.

Frames are JSON objects prefixed by a 4-byte big-endian length — one
frame per request, one per response, processed in order per
connection.  JSON is the only codec the container is guaranteed to
have (msgpack would be a drop-in: the frame surface below is
byte-agnostic), so the semantic value types of the spec logic
(:class:`~repro.eval.values.Record`, :class:`~repro.eval.values.FMap`,
``frozenset``, ``tuple``) ride in a tagged form that round-trips them
exactly — admission conditions evaluate over the *decoded* values, so
a lossy codec would silently change decisions.

Request frames (``t`` field):

- ``hello``   — version handshake; the server refuses mismatches.  The
  response carries the server's *cluster map* (worker id, every
  worker's port): a cluster-aware client learns the shard partition
  from it and opens one pooled connection per worker.
- ``open``    — create a server-side admission *domain* (one manager:
  structure, policy, shards, stable/compiled arming) → ``domain`` id.
- ``check``   — batched admission (:meth:`ConflictManager.check_many`)
  for one op against the domain's outstanding log → admitted/holder,
  plus the shard the first conflict was found in (a cluster router
  merges per-worker verdicts by smallest conflicting shard, which is
  exactly the single-process first-conflict order).  An explicit
  ``shards`` list restricts the scan to that slice of the routed set
  (cluster workers own ``shard_id % workers == worker_id``).
- ``record``  — log an executed operation (wire LoggedOperation); an
  explicit ``shards`` list restricts storage to that slice.
- ``release`` — drop a transaction's outstanding ops (commit/abort).
- ``reset``   — clear a domain's log/counters/outcomes while keeping
  its manager (compiled stable conditions, memoized routes) warm:
  the domain-reuse path for repeated workload runs.
- ``stats``   — the domain's counters + per-shard stats.
- ``close``   — retire the domain.
- ``batch``   — a list of the above, answered with a list of results
  in one round-trip (the client pipelines record/release frames and
  flushes them with the next check — order preserved, so decisions
  are identical to the unbatched sequence).
- ``ping``    — liveness probe.

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": msg}``.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from ..eval.values import FMap, Record
from ..runtime.gatekeeper import LoggedOperation

#: Bumped on any frame-shape change; ``hello`` carries it and the
#: server refuses clients it cannot speak to.  v2: cluster map in the
#: hello response, explicit ``shards`` slices on check/record, the
#: conflicting shard in check responses, and the ``reset`` frame.
PROTOCOL_VERSION = 2

#: Frames above this are refused outright (a corrupt length prefix
#: must not allocate gigabytes).  Kept under 2**31 so the length
#: prefix of a real frame can never collide with ASCII "GET " — which
#: is how the server sniffs plain-HTTP ``/metrics`` scrapes on the
#: same port (b"GET " as a big-endian length would be ~1.2 GiB).
MAX_FRAME = 1 << 26

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Malformed or out-of-contract frame traffic."""


# -- tagged value codec ------------------------------------------------------
#
# Scalars (str/int/float/bool/None) pass through as themselves; the
# four structured spec-value shapes are tagged dicts so decoding is
# unambiguous.  Anything else is a bug worth failing loudly on.

def encode_value(value: Any) -> Any:
    """JSON-representable form of a spec-logic value."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, Record):
        return {"#": "rec", "v": {k: encode_value(value[k]) for k in value}}
    if isinstance(value, FMap):
        return {"#": "map", "v": {k: encode_value(value[k]) for k in value}}
    if isinstance(value, frozenset):
        return {"#": "set",
                "v": sorted((encode_value(item) for item in value),
                            key=repr)}
    if isinstance(value, tuple):
        return {"#": "seq", "v": [encode_value(item) for item in value]}
    raise ProtocolError(f"unencodable value type {type(value).__name__}")


def decode_value(payload: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if payload is None or isinstance(payload, (str, int, float, bool)):
        return payload
    if isinstance(payload, dict):
        tag, inner = payload.get("#"), payload.get("v")
        if tag == "rec":
            return Record(**{k: decode_value(v) for k, v in inner.items()})
        if tag == "map":
            return FMap({k: decode_value(v) for k, v in inner.items()})
        if tag == "set":
            return frozenset(decode_value(item) for item in inner)
        if tag == "seq":
            return tuple(decode_value(item) for item in inner)
    raise ProtocolError(f"undecodable payload {payload!r}")


def wire_operation(entry: LoggedOperation) -> dict[str, Any]:
    """The wire form of one logged operation."""
    return {"txn": entry.txn_id, "op": entry.op_name,
            "args": encode_value(tuple(entry.args)),
            "result": encode_value(entry.result),
            "before": encode_value(entry.before),
            "after": encode_value(entry.after)}


def unwire_operation(payload: dict[str, Any]) -> LoggedOperation:
    """Inverse of :func:`wire_operation`."""
    return LoggedOperation(txn_id=payload["txn"], op_name=payload["op"],
                           args=decode_value(payload["args"]),
                           result=decode_value(payload["result"]),
                           before=decode_value(payload["before"]),
                           after=decode_value(payload["after"]))


# -- framing -----------------------------------------------------------------

def pack_frame(frame: dict[str, Any]) -> bytes:
    """Length-prefixed JSON bytes of one frame."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds cap")
    return _LEN.pack(len(body)) + body


def unpack_length(prefix: bytes) -> int:
    """Decode and bounds-check a 4-byte length prefix."""
    if len(prefix) != _LEN.size:
        raise ProtocolError("truncated length prefix")
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap")
    return length


def decode_body(body: bytes) -> dict[str, Any]:
    """Decode a frame body; the top level must be a JSON object."""
    frame = json.loads(body.decode("utf-8"))
    if not isinstance(frame, dict):
        raise ProtocolError("frame is not an object")
    return frame


# -- request builders --------------------------------------------------------

def hello_frame() -> dict[str, Any]:
    return {"t": "hello", "v": PROTOCOL_VERSION}


def open_frame(structure: str, *, policy: str = "commutativity",
               shards: int = 1, stable: bool = False,
               compiled: bool = False, label: str = "") -> dict[str, Any]:
    return {"t": "open", "structure": structure, "policy": policy,
            "shards": shards, "stable": stable, "compiled": compiled,
            "label": label}


def check_frame(domain: int, txn_id: int, op_name: str,
                args: tuple[Any, ...], current: Record,
                shards: tuple[int, ...] | None = None) -> dict[str, Any]:
    frame = {"t": "check", "d": domain, "txn": txn_id, "op": op_name,
             "args": encode_value(tuple(args)),
             "state": encode_value(current)}
    if shards is not None:
        frame["shards"] = list(shards)
    return frame


def record_frame(domain: int, entry: LoggedOperation,
                 shards: tuple[int, ...] | None = None) -> dict[str, Any]:
    frame = {"t": "record", "d": domain, "entry": wire_operation(entry)}
    if shards is not None:
        frame["shards"] = list(shards)
    return frame


def release_frame(domain: int, txn_id: int,
                  reason: str = "commit") -> dict[str, Any]:
    return {"t": "release", "d": domain, "txn": txn_id, "reason": reason}


def reset_frame(domain: int) -> dict[str, Any]:
    return {"t": "reset", "d": domain}


def stats_frame(domain: int) -> dict[str, Any]:
    return {"t": "stats", "d": domain}


def close_frame(domain: int) -> dict[str, Any]:
    return {"t": "close", "d": domain}


def batch_frame(frames: list[dict[str, Any]]) -> dict[str, Any]:
    return {"t": "batch", "frames": frames}


def ping_frame() -> dict[str, Any]:
    return {"t": "ping"}


def error_response(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}
