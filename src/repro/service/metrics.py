"""Observability surface of the admission server.

The server assembles a plain-data *snapshot* (JSON-ready dict) of its
domains — each domain's aggregate admission counters, its full
per-shard stats, and its transaction outcomes — and this module
renders it two ways: as JSON (``/metrics.json``) and as Prometheus
text exposition format (``/metrics``).  Rendering is pure so it can be
unit-tested without a socket.
"""

from __future__ import annotations

import json
from typing import Any

#: Prometheus metric name prefix for everything this server exposes.
PREFIX = "repro"

#: The aggregate per-domain admission counters
#: (:meth:`ConflictManager.counters` keys) exported as counters.
DOMAIN_COUNTERS = ("checks", "conflicts", "drift_checks", "stable_hits",
                   "proved_hits", "synthesized_hits",
                   "fallbacks", "fallback_admits",
                   "undo_refusals", "compiled_hits", "eval_errors",
                   "eval_errors_dropped")

#: The per-shard stats keys (:meth:`ConflictManager.shard_stats`)
#: exported with a ``shard`` label.  ``outstanding`` is a gauge (log
#: depth right now); the rest only ever increase.
SHARD_GAUGES = ("outstanding",)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank ``q``-th percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def snapshot_json(snapshot: dict[str, Any]) -> str:
    """The snapshot as pretty JSON (the ``/metrics.json`` body)."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _labels(**labels: Any) -> str:
    inner = ",".join(f'{key}="{_escape(str(value))}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


def prometheus_text(snapshot: dict[str, Any]) -> str:
    """The snapshot in Prometheus text exposition format.

    Every existing per-shard counter is exported with ``domain`` and
    ``shard`` labels; domain aggregates, transaction outcomes, and the
    cross-domain abort-rate percentiles ride along.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, help_text: str,
             samples: list[tuple[str, Any]]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {PREFIX}_{name} {help_text}")
        lines.append(f"# TYPE {PREFIX}_{name} {kind}")
        for labels, value in samples:
            lines.append(f"{PREFIX}_{name}{labels} {value}")

    server = snapshot.get("server", {})
    for key in ("connections_total", "rpcs_total", "frames_total",
                "http_requests_total"):
        if key in server:
            emit(f"server_{key}", "counter", f"Server {key}.",
                 [("", server[key])])
    if "uptime_seconds" in server:
        emit("server_uptime_seconds", "gauge",
             "Seconds since the server started.",
             [("", server["uptime_seconds"])])
    emit("server_domains_open", "gauge", "Admission domains open now.",
         [("", server.get("domains_open", 0))])
    emit("server_active_connections", "gauge",
         "Connections currently open against this server.",
         [("", server.get("active_connections", 0))])
    emit("server_worker_id", "gauge",
         "This process's cluster worker id (0 when single-process); "
         "every sample of a worker's scrape carries its label.",
         [(_labels(worker=server.get("worker_id", 0),
                   cluster_workers=server.get("cluster_workers", 1)), 1)])
    emit("domain_reuse_total", "counter",
         "Domains reset for reuse by a pooled client (the keyed "
         "domain cache) instead of being re-opened.",
         [("", server.get("domain_reuse_total", 0))])

    domains = snapshot.get("domains", [])
    for key in DOMAIN_COUNTERS:
        emit(f"admission_{key}_total", "counter",
             f"Aggregate {key} per admission domain.",
             [(_labels(domain=d["domain"], structure=d["structure"],
                       label=d["label"]), d["counters"].get(key, 0))
              for d in domains])
    emit("txn_outcomes_total", "counter",
         "Released transactions by outcome (commit or abort).",
         [(_labels(domain=d["domain"], structure=d["structure"],
                   outcome=outcome), d.get(f"{outcome}s", 0))
          for d in domains for outcome in ("commit", "abort")])

    shard_counter_keys = [key for key in
                          (domains[0]["shard_stats"][0].keys()
                           if domains and domains[0]["shard_stats"]
                           else ())
                          if key != "shard"]
    for key in shard_counter_keys:
        kind = "gauge" if key in SHARD_GAUGES else "counter"
        emit(f"shard_{key}", kind, f"Per-shard {key}.",
             [(_labels(domain=d["domain"], shard=stats["shard"]),
               stats.get(key, 0))
              for d in domains for stats in d["shard_stats"]])

    rates = snapshot.get("abort_rate_percentiles", {})
    emit("abort_rate", "gauge",
         "Cross-domain abort-rate percentiles "
         "(aborts / released transactions).",
         [(_labels(quantile=q), rates[p])
          for p, q in (("p50", "0.5"), ("p95", "0.95"))
          if p in rates])
    return "\n".join(lines) + "\n"
