"""The quantified re-verifier: which candidate conditions survive drift.

The between conditions are verified against a *fixed* environment —
``s2`` is the state immediately after the logged operation ran.  A
runtime admission under drift presents a different environment: ``s1``
is still the saved snapshot and ``r1`` the observed return value, but
``s2`` is whatever the structure has become.  PR 4's drift guard
therefore refuses state-referencing conditions outright; this module
is the constructive replacement.

A candidate formula ``C`` (over the between vocabulary) is judged
**drift-stable** when, with ``s2`` quantified over every in-scope state
the gatekeeper could present (plus the verified no-drift binding — an
over-approximation of the states reachable from the verified
environment):

    for every enumerated execution of ``m1(args1)`` at a root state
    ``u`` observing ``r1``, and every such drifted ``s2``:
    ``C(s1=u, args, r1, s2)`` true  =>  ``m1(args1); m2(args2)``
    semantically commute at **every** in-scope root consistent with
    the observation ``(args1, args2, r1)``.

The right-hand side is deliberately universal: a drifted admission may
be serialized across intermediate operations, so the pair swap no
longer happens at the verified root — the certificate must hold
wherever the reordering lands, and the only runtime facts that survive
the journey are the arguments and the observed return value.  This is
exactly why the sound-and-complete original conditions (truth tied to
one root) generally fail here while arg/result weakenings, footprint
relations, and observer-pinned rewrites pass: their truth forces
commutation at every consistent root.  Roots where the second
operation's precondition fails after the first are outside the case
universe, exactly as in the catalog verification
(:func:`~repro.commutativity.bounded.enumerate_cases`).

As everywhere in this reproduction, "every" means every state and
argument tuple within the :class:`~repro.eval.enumeration.Scope`; the
verdict is a bounded-exhaustive certificate, not an unbounded proof.
The scope must be able to *represent* the refuting cases: compiling
ArrayList verdicts at ``max_seq_len=2`` cannot distinguish
``remove_at(i1); get(i2)`` with ``i1 < i2`` (no list is long enough to
run both) and would bless an unsound weakening — which is why the
stability entry points default to the full paper scope rather than its
smoke-test reduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..commutativity.bounded import Case, commutes
from ..commutativity.conditions import (CommutativityCondition, Kind,
                                        allowed_variables,
                                        condition_symbols,
                                        formula_references_state)
from ..eval.enumeration import Scope
from ..eval.interpreter import EvalContext, EvalError
from ..logic import ParseError, free_vars, parse_formula
from ..logic.compile import compile_term
from ..specs.interface import DataStructureSpec


@dataclass
class CandidateResult:
    """One candidate's fate under the quantified sweep."""

    text: str
    #: Sound in every quantified environment *and* true in at least one
    #: (a vacuous candidate certifies nothing worth compiling).
    passed: bool
    #: Compiled into the pair's stable condition: passed *and*
    #: arg/result-only.  A state-reading candidate can pass the bounded
    #: sweep yet still be worthless at run time — the runtime evaluates
    #: it against preloaded states far outside the scope, where its
    #: truth is value coincidence all over again (the exact failure
    #: mode PR 4 fixed) — so only state-free survivors, whose simple
    #: argument/return-value relations extrapolate beyond the scope,
    #: are armed.  The others stay in the report as evidence.
    armed: bool = False
    #: Environments in which the candidate evaluated to true.
    admitted: int = 0
    #: Observations under which it admitted although the pair does not
    #: commute at every consistent root (unsound admissions it would
    #: have made).
    violations: int = 0
    #: The symbolic prover discharged this candidate's obligation over
    #: all states (``--prover`` runs only).  A proved state-reading
    #: candidate is armed after all — the unbounded certificate is
    #: exactly what the bounded sweep could not give it.
    proved: bool = False
    #: The prover's refutation witness, when it found one
    #: (JSON-shaped; see :func:`repro.prover.native.prove_pair`).
    countermodel: dict | None = None
    #: Where the candidate came from: ``"candidate"`` (projector /
    #: footprint pool) or ``"abduced"`` (the CEGIS loop of
    #: :mod:`repro.abduction`).  Armed abduced candidates are what
    #: promote a pair to the ``synthesized`` tier.
    origin: str = "candidate"
    #: Violating observations ``(args1, args2, r1)`` recorded when the
    #: sweep ran with ``witness_limit > 0`` — the abduction loop's
    #: counterexample store.  Transient: never serialized into task
    #: payloads (see :func:`repro.stability.compiler.pair_payload`).
    witnesses: tuple = field(default=(), compare=False)


@dataclass
class PairStability:
    """The compiled verdict for one operation pair's between condition."""

    m1: str
    m2: str
    #: ``"stable"`` — the original condition is arg/result-only and
    #: needs no guard; ``"proved"`` — a weakening was compiled and
    #: every armed candidate carries a symbolic proof over all states
    #: (``--prover`` runs only); ``"synthesized"`` — at least one armed
    #: candidate was abduced by the CEGIS loop (``--abduce`` runs
    #: only); ``"weakened"`` — a drift-stable weakening was compiled
    #: from the bounded sweep; ``"fragile"`` — no candidate survived,
    #: the runtime keeps its conservative fallback.
    verdict: str
    #: The drift-stable formula ('weakened' verdicts only).
    stable_text: str | None = None
    candidates: tuple[CandidateResult, ...] = ()
    cases: int = 0
    elapsed: float = field(default=0.0, compare=False)
    #: Lattice-walk statistics when the abduction loop ran for this
    #: pair (``--abduce``): checked / pruned / refuted candidate counts
    #: and the number of frontier rounds — the synthesis trace the CLI
    #: and the README example surface.
    synthesis: dict | None = None

    @property
    def pair_label(self) -> str:
        return f"{self.m1};{self.m2}"


def _parse_candidates(spec: DataStructureSpec,
                      cond: CommutativityCondition,
                      texts: list[str]):
    """Parse candidate texts against the pair's between vocabulary;
    malformed or out-of-vocabulary candidates are silently dropped
    (they are machine-generated guesses, not user input)."""
    table = condition_symbols(spec, cond.op1, cond.op2)
    allowed = allowed_variables(Kind.BETWEEN, cond.op1, cond.op2)
    parsed = []
    seen: set[str] = set()
    for text in texts:
        if text in seen:
            continue
        seen.add(text)
        try:
            term = parse_formula(text, table)
        except ParseError:
            continue
        if free_vars(term) - allowed:
            continue
        parsed.append((text, term))
    return parsed


def check_pair(spec: DataStructureSpec, cond: CommutativityCondition,
               candidate_texts: list[str], scope: Scope,
               witness_limit: int = 0) -> PairStability:
    """Run the quantified sweep for one drift-fragile between condition.

    One pass over the pair's case enumeration serves every candidate
    (the sharing trick of
    :func:`~repro.commutativity.bounded.check_conditions`): the pass
    records, per observation ``(args1, args2, r1)``, whether the pair
    commutes at *every* consistent root, and per candidate the
    observations under which it would admit; a candidate survives iff
    its admissions never meet a non-universally-commuting observation.

    ``witness_limit > 0`` additionally records, per failed candidate,
    up to that many violating observations on
    :attr:`CandidateResult.witnesses` — the refuting traces the
    abduction loop strengthens against.
    """
    start = time.perf_counter()
    op1, op2 = cond.op1, cond.op2
    ctx = EvalContext(observe=spec.observe)
    parsed = _parse_candidates(spec, cond, candidate_texts)
    compiled = [(text, compile_term(term, ctx),
                 "s2" in free_vars(term),
                 not formula_references_state(term))
                for text, term in parsed]
    results = {text: CandidateResult(text=text, passed=False)
               for text, _, _, _ in compiled}
    state_free = {text: free for text, _, _, free in compiled}
    args2_list = list(spec.arguments(op2, scope))
    #: Drifted ``s2`` bindings: every invariant-satisfying in-scope
    #: state (reachability over-approximated — see module docstring),
    #: pre-filtered per argument tuple to the states the runtime could
    #: actually present (it evaluates just before executing
    #: ``m2(args2)``, so the precondition holds at the current state).
    #: Only built when some candidate actually reads ``s2``.
    drifted_for: dict[tuple, list] = {}
    if any(wants_s2 for _, _, wants_s2, _ in compiled):
        drifted = [state for state in spec.states(scope)
                   if spec.invariant(state)]
        drifted_for = {
            args2: [state for state in drifted
                    if spec.precondition_holds(op2, state, args2)]
            for args2 in args2_list}
    always_commutes: dict[tuple, bool] = {}
    admitted_under: dict[str, set[tuple]] = {text: set()
                                             for text in results}
    cases = 0

    def admit(text: str, obs: tuple) -> None:
        results[text].admitted += 1
        admitted_under[text].add(obs)

    args1_list = list(spec.arguments(op1, scope))
    for state in spec.states(scope):
        for args1 in args1_list:
            if not spec.precondition_holds(op1, state, args1):
                continue
            mid, r1 = op1.semantics(state, args1)
            base_env: dict[str, Any] = {"s1": state, "s2": mid}
            for param, value in zip(op1.params, args1):
                base_env[f"{param.name}1"] = value
            if op1.result_sort is not None:
                base_env["r1"] = r1
            for args2 in args2_list:
                if not spec.precondition_holds(op2, mid, args2):
                    continue
                obs = (args1, args2,
                       r1 if op1.result_sort is not None else None)
                cases += 1
                fin, r2 = op2.semantics(mid, args2)
                case = Case(state, args1, args2, mid, fin, r1, r2)
                truth = commutes(spec, op1, op2, case)
                always_commutes[obs] = \
                    always_commutes.get(obs, True) and truth
                env = dict(base_env)
                for param, value in zip(op2.params, args2):
                    env[f"{param.name}2"] = value
                for text, formula, wants_s2, _ in compiled:
                    if not wants_s2:
                        if _holds(formula, env):
                            admit(text, obs)
                        continue
                    # Quantify the drifted binding; ``mid`` (the
                    # verified no-drift environment) is always included.
                    for drift_state in (mid, *drifted_for[args2]):
                        drift_env = dict(env)
                        drift_env["s2"] = drift_state
                        if _holds(formula, drift_env):
                            admit(text, obs)
    survivors: list[str] = []
    for text, result in results.items():
        violating = [obs for obs in admitted_under[text]
                     if not always_commutes.get(obs, False)]
        result.violations = len(violating)
        if witness_limit > 0 and violating:
            result.witnesses = tuple(sorted(violating,
                                            key=repr)[:witness_limit])
        result.passed = result.violations == 0 and result.admitted > 0
        result.armed = result.passed and state_free[text]
        if result.armed:
            survivors.append(text)
    stable_text = _disjoin(survivors)
    return PairStability(
        m1=cond.m1, m2=cond.m2,
        verdict="weakened" if stable_text is not None else "fragile",
        stable_text=stable_text,
        candidates=tuple(results[text] for text, _, _, _ in compiled),
        cases=cases, elapsed=time.perf_counter() - start)


def _holds(formula, env) -> bool:
    """Evaluate a compiled candidate; unevaluable counts as admitting
    (the worst case for the candidate — at runtime an ``EvalError``
    falls through to the conservative path, but certification must
    cover every environment it could have admitted in)."""
    try:
        return bool(formula(env))
    except EvalError:
        return True


def _disjoin(texts: list[str]) -> str | None:
    """The disjunction of surviving candidates (each implies
    commutation at every consistent root on its own, so their
    disjunction does too)."""
    if not texts:
        return None
    if len(texts) == 1:
        return texts[0]
    return " | ".join(f"({text})" for text in texts)
