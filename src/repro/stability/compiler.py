"""The drift-stability compiler: verified conditions in, drift-stable
artifacts out.

For every between condition of a structure the compiler produces a
:class:`~repro.stability.quantified.PairStability` verdict:

- conditions that never mention abstract state are **stable** verbatim
  (the drift guard never fires for them — nothing to compile);
- for the drift-fragile rest, candidate formulas from the projector
  (arg/result-only disjuncts) and the footprint analyzer (router-derived
  argument relations, observed-result links, the ``s1 -> s2``
  re-anchoring) go through the quantified re-verifier; survivors are
  disjoined into a **weakened** drift-stable condition;
- pairs with no surviving candidate stay **fragile** and keep PR 4's
  conservative fallback at run time.

Compilation is staged IMM-style (Podkopaev et al.): it happens once,
offline, through the :mod:`repro.engine` planner/cache as its own task
kind — grouped by first operation so a group shares parsing and spec
setup — and the runtime consumes the compiled
:class:`StableCondition` artifacts via
:meth:`repro.api.Registry.register_stable_conditions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable

from ..commutativity.conditions import (CommutativityCondition, Kind,
                                        condition_symbols)
from ..eval.enumeration import Scope
from ..logic import parse_formula
from ..logic import terms as t
from ..specs.interface import DataStructureSpec
from .footprint import footprint_candidates
from .projector import state_free_projection
from .quantified import (CandidateResult, PairStability, _disjoin,
                         check_pair)

#: Bump whenever the candidate generator or the quantified check could
#: change a compiled verdict *or its recorded shape* — it is part of
#: the engine task key, so bumping retires every cached stability
#: outcome at once.  v2: candidate payload rows grew origin / proved /
#: countermodel columns and pairs a synthesis-stats section (the
#: abduction loop), so v1 cache entries must never deserialize into
#: the new shape.
STABILITY_COMPILER_VERSION = 2


@dataclass(frozen=True)
class StableCondition:
    """A compiled drift-stable condition for one operation pair.

    Evaluated by the gatekeeper's drift guard in the same environment
    as the pair's between condition (saved ``s1``, observed ``r1``,
    drifted ``s2``); a true verdict admits, anything else falls through
    to the conservative router oracle.
    """

    family: str
    m1: str
    m2: str
    #: The drift-stable formula over the pair's between vocabulary.
    text: str
    spec: DataStructureSpec = field(repr=False, default=None)
    #: ``"weakened"`` (bounded-sweep certificate), ``"proved"`` (every
    #: armed candidate symbolically proved over all states), or
    #: ``"synthesized"`` (at least one armed candidate abduced by the
    #: CEGIS loop).  The gatekeeper counts admissions through it —
    #: ``proved_hits`` vs ``synthesized_hits`` vs ``stable_hits`` — so
    #: the tier is decision-visible but never decision-changing: all
    #: tiers admit identically.
    tier: str = "weakened"

    def __post_init__(self) -> None:
        if self.spec is None:
            raise ValueError("StableCondition requires a spec")

    @cached_property
    def dynamic_formula(self) -> t.Term:
        op1 = self.spec.operations[self.m1]
        op2 = self.spec.operations[self.m2]
        return parse_formula(self.text,
                             condition_symbols(self.spec, op1, op2))

    @property
    def pair_label(self) -> str:
        return f"{self.m1};{self.m2}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.family}: {self.m1}; {self.m2} [drift-stable] "
                f"{self.text}")


def candidate_texts(cond: CommutativityCondition,
                    has_router: bool) -> list[str]:
    """All candidate drift-stable formulas for one fragile condition:
    the projector's arg/result weakening first (it carries the catalog
    author's intent), then the footprint-derived relations."""
    candidates: list[str] = []
    projection = state_free_projection(cond)
    if projection is not None:
        candidates.append(projection)
    candidates += footprint_candidates(cond, has_router)
    return list(dict.fromkeys(candidates))  # dedupe, preserving order


def compile_pair(spec: DataStructureSpec, cond: CommutativityCondition,
                 scope: Scope, has_router: bool) -> PairStability:
    """Compile one between condition into its stability verdict."""
    if cond.kind is not Kind.BETWEEN:
        raise ValueError(f"stability compiles between conditions, "
                         f"got {cond.kind}")
    if not cond.drift_fragile:
        return PairStability(m1=cond.m1, m2=cond.m2, verdict="stable",
                             stable_text=None)
    return check_pair(spec, cond, candidate_texts(cond, has_router),
                      scope)


def compile_group(spec: DataStructureSpec,
                  conditions: Iterable[CommutativityCondition],
                  scope: Scope,
                  has_router: bool) -> list[PairStability]:
    """Compile a group of fragile between conditions (one engine task:
    all pairs sharing a first operation)."""
    return [compile_pair(spec, cond, scope, has_router)
            for cond in conditions]


def merge_proofs(pair: PairStability, proof) -> PairStability:
    """Fold a :class:`~repro.prover.native.PairProof` into a bounded
    verdict (``--prover`` runs; parent-side, after both task kinds
    resolve).

    Per candidate: a **proved** obligation arms any candidate the
    bounded sweep passed — including the state-reading ones the sweep
    refuses to arm on its own — while a **refuted** obligation disarms
    even a bounded-armed candidate (the countermodel lives beyond the
    sweep's scope, but it is a real unsound admission).  Unsupported
    obligations change nothing.  The pair is promoted to the
    ``proved`` verdict when every armed candidate carries a proof;
    with a mixed or unproved armed set it stays ``weakened``.
    """
    by_text = {result.candidate: result for result in proof.results}
    candidates: list[CandidateResult] = []
    survivors: list[str] = []
    all_proved = True
    for c in pair.candidates:
        result = by_text.get(c.text)
        proved = result is not None and result.status == "proved"
        refuted = result is not None and result.status == "refuted"
        armed = (c.armed and not refuted) or (c.passed and proved)
        candidates.append(CandidateResult(
            text=c.text, passed=c.passed, armed=armed,
            admitted=c.admitted, violations=c.violations, proved=proved,
            countermodel=result.countermodel if refuted else None,
            origin=c.origin))
        if armed:
            survivors.append(c.text)
            all_proved = all_proved and proved
    stable_text = _disjoin(survivors)
    if stable_text is None:
        verdict = "fragile"
    elif all_proved:
        verdict = "proved"
    else:
        verdict = "weakened"
    return PairStability(
        m1=pair.m1, m2=pair.m2, verdict=verdict,
        stable_text=stable_text, candidates=tuple(candidates),
        cases=pair.cases + proof.cases,
        elapsed=pair.elapsed + proof.elapsed, synthesis=pair.synthesis)


def merge_synthesis(pair: PairStability, synth) -> PairStability:
    """Fold a :class:`~repro.abduction.loop.PairSynthesis` into a
    bounded (and possibly proof-merged) verdict (``--abduce`` runs;
    parent-side, after the ``ABDUCTION`` tasks resolve).

    Abduction only *adds* admission power: armed abduced candidates
    (already bounded-certified, and prover-screened for symbolic
    families inside the loop) are appended — deduplicated by text
    against the existing pool — and the pair's stable condition becomes
    the disjunction of every armed candidate, old and new.  A pair that
    gains at least one abduced armed candidate is promoted to the
    ``synthesized`` tier; a synthesis that found nothing changes
    nothing.  Prover-refuted abduced candidates are kept unarmed with
    their countermodels — the loop's debugging surface.
    """
    known = {c.text for c in pair.candidates}
    candidates = list(pair.candidates)
    gained = False
    for c in synth.conditions:
        if c.text in known:
            continue
        known.add(c.text)
        candidates.append(c)
        gained = gained or c.armed
    survivors = [c.text for c in candidates if c.armed]
    stable_text = _disjoin(survivors)
    verdict = "synthesized" if gained else pair.verdict
    if stable_text is None:
        verdict = "fragile"
    return PairStability(
        m1=pair.m1, m2=pair.m2, verdict=verdict,
        stable_text=stable_text, candidates=tuple(candidates),
        cases=pair.cases + synth.cases,
        elapsed=pair.elapsed + synth.elapsed,
        synthesis=synth.stats())


# -- plain-data (de)serialization for the engine cache ------------------------

def pair_payload(pair: PairStability) -> dict[str, Any]:
    """A JSON-shaped rendering of one verdict (task outcome payload).

    v2 rows (:data:`STABILITY_COMPILER_VERSION`): ``[text, passed,
    armed, admitted, violations, proved, countermodel, origin]``.
    Witnesses are deliberately dropped — they are the abduction loop's
    transient counterexample store, not part of the verdict.
    """
    return {
        "m1": pair.m1,
        "m2": pair.m2,
        "verdict": pair.verdict,
        "stable_text": pair.stable_text,
        "candidates": [[c.text, c.passed, c.armed, c.admitted,
                        c.violations, c.proved, c.countermodel,
                        c.origin] for c in pair.candidates],
        "cases": pair.cases,
        "synthesis": pair.synthesis,
    }


def pair_from_payload(payload: dict[str, Any],
                      elapsed: float = 0.0) -> PairStability:
    """Rebuild a verdict from a cached/worker payload (v2 shape only —
    the compiler-version bump retires every v1 cache entry, so a v1
    row can never reach this function through the engine)."""
    from .quantified import CandidateResult
    return PairStability(
        m1=payload["m1"], m2=payload["m2"],
        verdict=payload["verdict"],
        stable_text=payload.get("stable_text"),
        candidates=tuple(
            CandidateResult(text=text, passed=bool(passed),
                            armed=bool(armed), admitted=int(admitted),
                            violations=int(violations),
                            proved=bool(proved),
                            countermodel=countermodel,
                            origin=str(origin))
            for text, passed, armed, admitted, violations, proved,
            countermodel, origin in payload.get("candidates", ())),
        cases=int(payload.get("cases", 0)), elapsed=elapsed,
        synthesis=payload.get("synthesis"))
