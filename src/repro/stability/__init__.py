"""Drift-stable condition compilation for semantic admission under
state drift.

PR 4's drift guard made the gatekeeper sound but conservative: between
conditions that mention abstract state are refused once the verified
environment is gone, and hot-key Set/Map pairs and preloaded ArrayList
index pairs fall back to the shard-router oracle exactly where
contention is highest.  This package compiles each verified between
condition — once, offline, through the :mod:`repro.engine`
planner/cache — into a drift-stability verdict and, where possible, a
drift-stable weakening the runtime can evaluate in *any* environment:

- :mod:`.projector` classifies condition atoms as arg/result-only vs
  state-referencing and extracts the arg/result-only weakening;
- :mod:`.footprint` derives candidate atoms from the state projection
  both operations touch, reusing the shard routers' region logic;
- :mod:`.quantified` re-verifies every candidate with ``s2`` quantified
  over all in-scope intermediate states;
- :mod:`.compiler` / :mod:`.report` package the verdicts into
  registrable :class:`StableCondition` artifacts.

Consumption: :meth:`repro.api.Session.compile_stable` registers the
artifacts via :meth:`repro.api.Registry.register_stable_conditions`;
``Gatekeeper``/``ShardedGatekeeper`` constructed with ``stable=True``
try the compiled condition on the drift path before falling back to
the router oracle.
"""

from .compiler import (STABILITY_COMPILER_VERSION, StableCondition,
                       candidate_texts, compile_group, compile_pair,
                       merge_proofs, merge_synthesis)
from .footprint import footprint_candidates
from .projector import state_free_projection, top_level_disjuncts
from .quantified import CandidateResult, PairStability, check_pair
from .report import StabilityReport

__all__ = [
    "STABILITY_COMPILER_VERSION", "StableCondition", "candidate_texts",
    "compile_group", "compile_pair",
    "merge_proofs", "merge_synthesis",
    "footprint_candidates",
    "state_free_projection", "top_level_disjuncts",
    "CandidateResult", "PairStability", "check_pair",
    "StabilityReport",
]
