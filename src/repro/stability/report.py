"""Per-structure stability-compilation reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..specs.interface import DataStructureSpec
from .compiler import StableCondition
from .quantified import PairStability


@dataclass
class StabilityReport:
    """Outcome of compiling one structure's between-condition catalog."""

    name: str
    family: str
    pairs: list[PairStability] = field(default_factory=list)
    #: Sum of the report's task-shard times (engine convention: stable
    #: across serial, parallel, and cache-served runs).
    elapsed: float = field(default=0.0, compare=False)
    task_timings: list = field(default_factory=list, repr=False,
                               compare=False)

    def _count(self, verdict: str) -> int:
        return sum(1 for pair in self.pairs if pair.verdict == verdict)

    @property
    def stable_count(self) -> int:
        """Conditions that are arg/result-only verbatim."""
        return self._count("stable")

    @property
    def weakened_count(self) -> int:
        """Fragile conditions with a compiled drift-stable weakening."""
        return self._count("weakened")

    @property
    def proved_count(self) -> int:
        """Weakened pairs whose every armed candidate carries a
        symbolic all-states proof (``--prover`` runs only)."""
        return self._count("proved")

    @property
    def synthesized_count(self) -> int:
        """Pairs that gained at least one armed abduced candidate from
        the CEGIS loop (``--abduce`` runs only)."""
        return self._count("synthesized")

    @property
    def fragile_count(self) -> int:
        """Conditions left to the conservative runtime fallback."""
        return self._count("fragile")

    @property
    def cache_hits(self) -> int:
        return sum(1 for timing in self.task_timings if timing.cached)

    def stable_conditions(self, spec: DataStructureSpec) \
            -> tuple[StableCondition, ...]:
        """The registrable artifacts: one :class:`StableCondition` per
        weakened or proved pair (verbatim-stable conditions need none —
        the drift guard never fires for them)."""
        return tuple(
            StableCondition(family=self.family, m1=pair.m1, m2=pair.m2,
                            text=pair.stable_text, spec=spec,
                            tier=pair.verdict)
            for pair in self.pairs
            if pair.verdict in ("weakened", "proved", "synthesized"))

    def summary(self) -> str:
        proved = (f", {self.proved_count} proved"
                  if self.proved_count else "")
        synthesized = (f", {self.synthesized_count} synthesized"
                       if self.synthesized_count else "")
        return (f"{self.name}: {len(self.pairs)} between conditions — "
                f"{self.stable_count} stable, {self.weakened_count} "
                f"weakened{proved}{synthesized}, {self.fragile_count} "
                f"fragile ({self.elapsed:.2f}s)")
