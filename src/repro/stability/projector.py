"""Atom projection: classify condition fragments by drift stability.

A between condition's vocabulary splits into two classes at run time:

- **arg/result atoms** mention only the operation arguments and the
  first return value.  Verification quantified the enclosing condition
  over *every* in-scope state, so an arg/result-only fragment carries
  state-independent information — it can be evaluated in any runtime
  environment, however far the gatekeeper's state has drifted from the
  verified one.
- **state atoms** mention ``s1``/``s2`` (between conditions never see
  ``s3``).  Their runtime value is only meaningful in the environment
  the condition was verified for; once other operations have executed,
  evaluating them is reading tea leaves (PR 4's value-coincidence
  admissions).

The projector extracts the arg/result-only *weakening* of a condition:
the disjunction of its state-free top-level disjuncts.  Each disjunct
implies the full condition, and the full condition is verified sound,
so the projection admits only genuinely commuting pairs — it is a
candidate drift-stable condition, handed to the quantified re-verifier
(:mod:`repro.stability.quantified`) like every other candidate rather
than trusted outright.
"""

from __future__ import annotations

from ..commutativity.conditions import (CommutativityCondition,
                                        formula_references_state)
from ..logic import pretty
from ..logic import terms as t


def top_level_disjuncts(term: t.Term) -> tuple[t.Term, ...]:
    """The top-level disjuncts of a formula (itself, if not an ``Or``)."""
    if isinstance(term, t.Or):
        return term.args
    return (term,)


def split_disjuncts(term: t.Term) -> tuple[list[t.Term], list[t.Term]]:
    """Partition top-level disjuncts into (state-free, state-referencing)."""
    stable: list[t.Term] = []
    fragile: list[t.Term] = []
    for disjunct in top_level_disjuncts(term):
        (fragile if formula_references_state(disjunct)
         else stable).append(disjunct)
    return stable, fragile


def state_free_projection(cond: CommutativityCondition) -> str | None:
    """The arg/result-only weakening of a condition's dynamic formula,
    as re-parseable text — or ``None`` when every disjunct mentions
    state (conjunction-shaped conditions like the ArrayList tables,
    where dropping conjuncts would weaken in the *unsound* direction).
    """
    stable, fragile = split_disjuncts(cond.dynamic_formula)
    if not stable or not fragile:
        # Nothing to project: either fully fragile, or already
        # state-free (in which case the drift guard never fires).
        return None
    return " | ".join(pretty(d) for d in stable)
