"""Footprint analysis: candidate drift-stable atoms from the state
projection both operations touch.

The shard routers (:mod:`repro.runtime.sharding`) encode, per family,
*which* state projection an operation reads or writes: the Set/Map
routers key regions off the first argument (an element or key), the
ArrayList router off index bands ordered by the shift direction of
``add_at``/``remove_at``.  Their soundness contract — operations may
only be separated when they unconditionally commute — means the
argument relations behind the partition (key disequality, index order)
are themselves state-independent commutation witnesses.

This module turns that region logic into *candidate* condition atoms
over the pair's between vocabulary:

- **disjointness atoms** (``v1 ~= v2``, ``k1 ~= k2``): the pair touches
  different projections — for keyed families this is exactly the router
  partition, at per-value rather than per-hash-bucket granularity;
- **order atoms** (``i2 < i1``, ``i1 < i2``, ``i1 ~= i2``): the banded
  ArrayList logic at per-index granularity — an operation strictly
  below a shift's index lives in a projection the shift never moves;
- **result-link atoms** (``v2 = r1``, ``r1 ~= v2``): the first
  operation's observed return value pins the shared projection's
  content, so an argument agreeing with it is a write of what is
  already there;
- a **projection re-anchoring** of the original condition: every
  ``s1`` state query rewritten to ``s2`` — the same projection read
  against the *current* state instead of the verified snapshot.

Every candidate is speculative: the quantified re-verifier
(:mod:`repro.stability.quantified`) decides which of them actually
certify commutation in every drift context.  Structures without a
registered router get no footprint atoms (their interaction structure
is unknown), only the projector's output.
"""

from __future__ import annotations

from ..commutativity.conditions import CommutativityCondition
from ..logic import pretty, substitute
from ..logic import terms as t
from ..logic.sorts import Sort
from ..specs.interface import Operation

#: Caps the candidate pool per pair; the re-verifier's cost is linear
#: in it and the compiled disjunction should stay readable.
MAX_CANDIDATES = 12


def _first_params(op1: Operation, op2: Operation):
    p1 = op1.params[0] if op1.params else None
    p2 = op2.params[0] if op2.params else None
    return p1, p2


def disjointness_atoms(op1: Operation, op2: Operation) -> list[str]:
    """Key/element/index disequality over the pair's first arguments."""
    p1, p2 = _first_params(op1, op2)
    if p1 is None or p2 is None or p1.sort is not p2.sort:
        return []
    return [f"{p1.name}1 ~= {p2.name}2"]


def order_atoms(op1: Operation, op2: Operation) -> list[str]:
    """Index-order relations for integer-keyed (banded) footprints."""
    p1, p2 = _first_params(op1, op2)
    if p1 is None or p2 is None or p1.sort is not Sort.INT \
            or p2.sort is not Sort.INT:
        return []
    return [f"{p2.name}2 < {p1.name}1", f"{p1.name}1 < {p2.name}2"]


def result_link_atoms(op1: Operation, op2: Operation) -> list[str]:
    """Atoms linking the observed ``r1`` to the incoming arguments."""
    if op1.result_sort is None:
        return []
    atoms: list[str] = []
    if op1.result_sort is Sort.BOOL:
        atoms += ["r1", "~r1"]
    for param in op2.params:
        if param.sort is op1.result_sort:
            atoms.append(f"{param.name}2 = r1")
    return atoms


def reanchored_condition(cond: CommutativityCondition) -> str | None:
    """The condition with every ``s1`` query re-anchored to ``s2``.

    The projection the condition reads (membership of a key, a slot's
    content) is looked up in the current state instead of the verified
    snapshot.  Usually the re-verifier rejects this — the current value
    of the projection says nothing about the logged operation's context
    — but for observer-pinned pairs it survives and keeps the full
    condition's admission power under drift.
    """
    formula = cond.dynamic_formula
    rewritten = substitute(
        formula, {"s1": t.Var("s2", Sort.STATE)})
    if rewritten == formula:
        return None
    return pretty(rewritten)


def footprint_candidates(cond: CommutativityCondition,
                         has_router: bool) -> list[str]:
    """All footprint-derived candidate texts for one condition's pair.

    ``has_router`` gates the argument-relation atoms: a registered
    router asserts (by its soundness contract) that the family's
    interaction structure is argument-local, which is what makes
    argument relations candidate commutation witnesses at all.  Custom
    structures without a router only get the re-anchoring rewrite.
    """
    candidates: list[str] = []
    if has_router:
        op1, op2 = cond.op1, cond.op2
        candidates += disjointness_atoms(op1, op2)
        candidates += order_atoms(op1, op2)
        candidates += result_link_atoms(op1, op2)
    reanchored = reanchored_condition(cond)
    if reanchored is not None:
        candidates.append(reanchored)
    return candidates[:MAX_CANDIDATES]
