"""Symbolic abstract states: unbounded base state, finite observable part.

The key observation behind the symbolic backend: every operation and
condition in the paper's set/map/accumulator fragment observes only

- the membership/binding of the *mentioned* argument objects, and
- the structure's size relative to its initial size,

so an abstract state can be represented exactly by (1) a finite
membership/binding table over canonical equivalence-class tokens and
(2) a size that is symbolic: ``N + delta`` for an opaque initial size
``N``.  Verification over these symbolic states covers *all* initial
states, of any size, over any object universe — the same unbounded
guarantee Jahob's provers give the paper (the ArrayList case is handled
separately by canonical-partition enumeration, exact for unbounded
element universes at each bounded length).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eval.values import FMap


@dataclass(frozen=True)
class SymInt:
    """``base + delta`` where ``base`` names an opaque non-negative
    integer (or is None for a concrete value)."""

    base: str | None
    delta: int

    def plus(self, k: int) -> "SymInt":
        return SymInt(self.base, self.delta + k)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SymInt):
            return self.base == other.base and self.delta == other.delta
        if isinstance(other, int) and self.base is None:
            return self.delta == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.base, self.delta))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.base is None:
            return str(self.delta)
        if self.delta == 0:
            return self.base
        sign = "+" if self.delta > 0 else "-"
        return f"{self.base}{sign}{abs(self.delta)}"


@dataclass(frozen=True)
class SymSet:
    """A set known only through the membership of finitely many tokens.

    ``membership[token]`` says whether the token's class is in the set;
    the set may contain arbitrarily many unmentioned elements.
    """

    membership: FMap

    def __contains__(self, token: str) -> bool:
        try:
            return self.membership[token]
        except KeyError:
            raise KeyError(f"token {token!r} not tracked by this SymSet") \
                from None

    def add(self, token: str) -> "SymSet":
        return SymSet(self.membership.put(token, True))

    def remove(self, token: str) -> "SymSet":
        return SymSet(self.membership.put(token, False))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}{'∈' if v else '∉'}"
                          for k, v in sorted(self.membership.items()))
        return f"SymSet({inner})"


@dataclass(frozen=True)
class SymMap:
    """A partial map known only through the bindings of finitely many
    key tokens.  Absent-from-``binding`` keys are *unmapped*; mapped keys
    bind value tokens (possibly "fresh" tokens denoting unknown base
    values)."""

    binding: FMap
    #: key tokens tracked by this map (so absence is meaningful)
    tracked: frozenset[str]

    def __contains__(self, key: str) -> bool:
        if key not in self.tracked:
            raise KeyError(f"key token {key!r} not tracked by this SymMap")
        return key in self.binding

    def lookup(self, key: str):
        if key not in self.tracked:
            raise KeyError(f"key token {key!r} not tracked by this SymMap")
        return self.binding.lookup(key)

    def put(self, key: str, value: str) -> "SymMap":
        return SymMap(self.binding.put(key, value), self.tracked)

    def remove(self, key: str) -> "SymMap":
        return SymMap(self.binding.remove(key), self.tracked)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}->{v}"
                          for k, v in sorted(self.binding.items()))
        missing = ", ".join(sorted(self.tracked - set(self.binding)))
        return f"SymMap({inner}; unmapped: {missing})"
