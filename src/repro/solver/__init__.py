"""Verification engines: SAT core, congruence closure, and the symbolic
commutativity engine (the repository's replacement for Jahob's
integrated reasoning systems)."""

from .sat import SatResult, SatSolver
from .cnf import AtomMap, is_atom, to_cnf
from .euf import CongruenceClosure, entails_equality
from .partition import (bell_number, canonical_tokens, partitions,
                        restricted_growth_strings)
from .symbolic import SymInt, SymMap, SymSet
from .engine import (CANONICAL_INTS, check_condition_symbolic,
                     check_conditions_symbolic)

__all__ = [
    "SatResult", "SatSolver", "AtomMap", "is_atom", "to_cnf",
    "CongruenceClosure", "entails_equality",
    "bell_number", "canonical_tokens", "partitions",
    "restricted_growth_strings",
    "SymInt", "SymMap", "SymSet",
    "CANONICAL_INTS", "check_condition_symbolic",
    "check_conditions_symbolic",
]
