"""Tseitin transformation: boolean formula structure -> CNF clauses.

Works over an abstract atom space: callers map theory atoms to integer
SAT variables via :class:`AtomMap`, convert a formula with
:func:`to_cnf`, and hand the clauses to :class:`~repro.solver.sat.SatSolver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic import terms as t


@dataclass
class AtomMap:
    """Bijection between atomic formulas and SAT variables."""

    atom_to_var: dict[t.Term, int] = field(default_factory=dict)
    var_to_atom: dict[int, t.Term] = field(default_factory=dict)
    _next: int = 1

    def var_for(self, atom: t.Term) -> int:
        existing = self.atom_to_var.get(atom)
        if existing is not None:
            return existing
        var = self._next
        self._next += 1
        self.atom_to_var[atom] = var
        self.var_to_atom[var] = atom
        return var

    def fresh(self) -> int:
        var = self._next
        self._next += 1
        return var

    def atoms(self) -> list[t.Term]:
        return list(self.atom_to_var)


def is_atom(formula: t.Term) -> bool:
    """Atoms are anything that is not a boolean connective."""
    return not isinstance(formula, (t.Not, t.And, t.Or, t.Implies, t.Iff))


def to_cnf(formula: t.Term, atoms: AtomMap) -> tuple[list[list[int]], int]:
    """Tseitin-encode ``formula``; returns (clauses, root literal).

    The returned clauses are equisatisfiable with ``formula`` once the
    root literal is asserted.
    """
    clauses: list[list[int]] = []

    def encode(f: t.Term) -> int:
        if isinstance(f, t.BoolConst):
            var = atoms.fresh()
            clauses.append([var] if f.value else [-var])
            return var
        if is_atom(f):
            return atoms.var_for(f)
        if isinstance(f, t.Not):
            return -encode(f.arg)
        if isinstance(f, t.And):
            lits = [encode(a) for a in f.args]
            out = atoms.fresh()
            for lit in lits:
                clauses.append([-out, lit])
            clauses.append([out] + [-lit for lit in lits])
            return out
        if isinstance(f, t.Or):
            lits = [encode(a) for a in f.args]
            out = atoms.fresh()
            for lit in lits:
                clauses.append([out, -lit])
            clauses.append([-out] + lits)
            return out
        if isinstance(f, t.Implies):
            return encode(t.Or((t.neg(f.lhs), f.rhs)))
        if isinstance(f, t.Iff):
            a = encode(f.lhs)
            b = encode(f.rhs)
            out = atoms.fresh()
            clauses.append([-out, -a, b])
            clauses.append([-out, a, -b])
            clauses.append([out, a, b])
            clauses.append([out, -a, -b])
            return out
        raise TypeError(f"cannot CNF-encode {type(f).__name__}")

    root = encode(formula)
    return clauses, root
