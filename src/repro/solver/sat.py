"""A CDCL SAT solver (watched literals, first-UIP clause learning,
activity-based decisions, restarts).

This plays the role of the propositional core of the paper's integrated
reasoning systems (Jahob dispatches to Z3/CVC3 [10, 19]; neither is
available offline, so the repository carries its own engine).  The proof
layer (:mod:`repro.proof`) and validity facade (:mod:`repro.solver.smt`)
are built on top of it.

Literals are nonzero integers (DIMACS convention): variable ``v`` has
positive literal ``v`` and negative literal ``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SatResult:
    satisfiable: bool
    #: Assignment as {var: bool} when satisfiable.
    model: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0


class SatSolver:
    """CDCL solver over integer literals."""

    def __init__(self) -> None:
        self._clauses: list[list[int]] = []
        self._num_vars = 0

    def add_clause(self, literals: list[int] | tuple[int, ...]) -> None:
        """Add a clause (a disjunction of literals)."""
        clause = sorted(set(literals), key=abs)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a literal")
            self._num_vars = max(self._num_vars, abs(lit))
        # A clause containing both polarities of a variable is a tautology.
        seen = set(clause)
        if any(-lit in seen for lit in clause):
            return
        self._clauses.append(clause)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    # -- solving ------------------------------------------------------------

    def solve(self, assumptions: tuple[int, ...] = (),
              max_conflicts: int | None = None) -> SatResult:
        """Decide satisfiability under optional assumption literals."""
        state = _SolverState(self._num_vars, self._clauses, assumptions)
        return state.run(max_conflicts)

    def enumerate_models(self, variables: tuple[int, ...] | None = None,
                         limit: int = 100000):
        """Yield all models, projected onto ``variables`` when given.

        After each model a blocking clause over the projection is added,
        so each projected assignment appears exactly once.
        """
        blocking: list[list[int]] = []
        count = 0
        while count < limit:
            state = _SolverState(self._num_vars, self._clauses + blocking, ())
            result = state.run(None)
            if not result.satisfiable:
                return
            project = variables if variables is not None \
                else tuple(range(1, self._num_vars + 1))
            model = {v: result.model.get(v, False) for v in project}
            yield model
            blocking.append(
                [(-v if model[v] else v) for v in project])
            count += 1


class _SolverState:
    """One CDCL run (fresh watched-literal and trail structures)."""

    def __init__(self, num_vars: int, clauses: list[list[int]],
                 assumptions: tuple[int, ...]) -> None:
        self.num_vars = num_vars
        self.assign: dict[int, bool] = {}
        self.level: dict[int, int] = {}
        self.reason: dict[int, list[int] | None] = {}
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.activity: dict[int, float] = {v: 0.0
                                           for v in range(1, num_vars + 1)}
        self.var_inc = 1.0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[list[int]]] = {}
        self.assumptions = assumptions
        self.ok = True
        for clause in clauses:
            self._attach(list(clause))

    # -- clause management ----------------------------------------------------

    def _attach(self, clause: list[int]) -> None:
        if not self.ok:
            return
        if not clause:
            self.ok = False
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.ok = False
            return
        self.clauses.append(clause)
        self.watches.setdefault(clause[0], []).append(clause)
        self.watches.setdefault(clause[1], []).append(clause)

    # -- assignment ------------------------------------------------------------

    def _value(self, lit: int) -> bool | None:
        truth = self.assign.get(abs(lit))
        if truth is None:
            return None
        return truth if lit > 0 else not truth

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        index = getattr(self, "_qhead", 0)
        while index < len(self.trail):
            lit = self.trail[index]
            index += 1
            false_lit = -lit
            watchers = self.watches.get(false_lit, [])
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                # Normalize: watched literals are clause[0] and clause[1].
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    i += 1
                    continue
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) is not False:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._value(first) is False:
                    self._qhead = index
                    return clause
                self._enqueue(first, clause)
                i += 1
        self._qhead = index
        return None

    # -- conflict analysis --------------------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        current_level = len(self.trail_lim)
        seen: set[int] = set()
        learned: list[int] = []
        counter = 0
        lit = None
        reason: list[int] | None = conflict
        trail_index = len(self.trail) - 1
        while True:
            for q in reason or ():
                var = abs(q)
                if lit is not None and var == abs(lit):
                    continue  # skip the literal being resolved on
                if var in seen or self.level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learned.append(q)
            while True:
                lit = self.trail[trail_index]
                trail_index -= 1
                if abs(lit) in seen:
                    break
            counter -= 1
            seen.discard(abs(lit))
            if counter == 0:
                break
            reason = self.reason[abs(lit)]
        learned.insert(0, -lit)
        if len(learned) == 1:
            return learned, 0
        back_level = max(self.level[abs(q)] for q in learned[1:])
        # Move a literal of back_level into the second watch position.
        for j in range(1, len(learned)):
            if self.level[abs(learned[j])] == back_level:
                learned[1], learned[j] = learned[j], learned[1]
                break
        return learned, back_level

    def _bump(self, var: int) -> None:
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc
        if self.activity[var] > 1e100:
            for v in self.activity:
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _backjump(self, level: int) -> None:
        while len(self.trail_lim) > level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                lit = self.trail.pop()
                var = abs(lit)
                del self.assign[var]
                del self.level[var]
                del self.reason[var]
        self._qhead = min(getattr(self, "_qhead", 0), len(self.trail))

    # -- main loop -------------------------------------------------------------------

    def run(self, max_conflicts: int | None) -> SatResult:
        result = SatResult(satisfiable=False)
        if not self.ok:
            return result
        conflict = self._propagate()
        if conflict is not None:
            return result
        for lit in self.assumptions:
            if self._value(lit) is False:
                return result
            if self._value(lit) is None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    return result
        restart_interval = 64
        conflicts_at_restart = 0
        assumption_level = len(self.trail_lim)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                result.conflicts += 1
                conflicts_at_restart += 1
                if max_conflicts is not None \
                        and result.conflicts > max_conflicts:
                    return result
                if len(self.trail_lim) <= assumption_level:
                    return result
                learned, back_level = self._analyze(conflict)
                self._backjump(max(back_level, assumption_level))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return result
                else:
                    self.clauses.append(learned)
                    self.watches.setdefault(learned[0], []).append(learned)
                    self.watches.setdefault(learned[1], []).append(learned)
                    self._enqueue(learned[0], learned)
                self.var_inc *= 1.05
                if conflicts_at_restart >= restart_interval:
                    conflicts_at_restart = 0
                    restart_interval = int(restart_interval * 1.5)
                    self._backjump(assumption_level)
                continue
            # Pick an unassigned variable with maximal activity.
            decision = 0
            best = -1.0
            for var in range(1, self.num_vars + 1):
                if var not in self.assign and self.activity[var] > best:
                    best = self.activity[var]
                    decision = var
            if decision == 0:
                result.satisfiable = True
                result.model = dict(self.assign)
                return result
            result.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(-decision, None)
