"""Set-partition enumeration (restricted growth strings).

The symbolic backend's equality reasoning is exact because every
operation and condition in the paper's fragment is invariant under
injective renaming of objects: checking one canonical representative per
partition of the mentioned object symbols covers *every* object
instantiation over *any* universe.  Partitions are enumerated as
restricted growth strings: position ``i`` holds the class index of
symbol ``i``, and class ``k+1`` may appear only after class ``k``.
"""

from __future__ import annotations

from typing import Iterator


def restricted_growth_strings(n: int) -> Iterator[tuple[int, ...]]:
    """All RGS of length ``n`` (i.e. all partitions of n symbols)."""
    if n == 0:
        yield ()
        return
    string = [0] * n
    maxima = [0] * n
    while True:
        yield tuple(string)
        # Find the rightmost position we can increment.
        i = n - 1
        while i > 0 and string[i] > maxima[i - 1]:
            i -= 1
        if i == 0:
            return
        string[i] += 1
        maxima[i] = max(maxima[i - 1], string[i])
        for j in range(i + 1, n):
            string[j] = 0
            maxima[j] = maxima[i]


def partitions(symbols: tuple[str, ...]) -> Iterator[dict[str, int]]:
    """All partitions of ``symbols`` as symbol -> class-index maps."""
    for rgs in restricted_growth_strings(len(symbols)):
        yield {sym: cls for sym, cls in zip(symbols, rgs)}


def canonical_tokens(partition: dict[str, int],
                     prefix: str = "c") -> dict[str, str]:
    """Map each symbol to a canonical token shared within its class."""
    return {sym: f"{prefix}{cls}" for sym, cls in partition.items()}


def bell_number(n: int) -> int:
    """The number of partitions of ``n`` symbols (for test cross-checks)."""
    # Bell triangle.
    row = [1]
    for _ in range(n):
        new_row = [row[-1]]
        for value in row:
            new_row.append(new_row[-1] + value)
        row = new_row
    return row[0]
