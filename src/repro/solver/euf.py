"""Congruence closure: ground equality reasoning with uninterpreted
functions (the EUF theory solver).

Terms are hashable tuples ``(fn, arg1, ..., argn)`` or atomic constants;
:meth:`CongruenceClosure.merge` asserts equalities, and
:meth:`CongruenceClosure.are_equal` / :meth:`check_disequalities` query
the closure.  Used by the proof layer to discharge equality steps and by
the symbolic engine's consistency filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

Node = Hashable


@dataclass
class CongruenceClosure:
    """Union-find with congruence propagation."""

    parent: dict[Node, Node] = field(default_factory=dict)
    rank: dict[Node, int] = field(default_factory=dict)
    #: function applications in which each representative occurs
    uses: dict[Node, list[tuple]] = field(default_factory=dict)
    #: signature table: (fn, rep args...) -> application term
    signatures: dict[tuple, Node] = field(default_factory=dict)
    disequalities: list[tuple[Node, Node]] = field(default_factory=list)

    # -- union-find --------------------------------------------------------

    def _add(self, term: Node) -> None:
        if term in self.parent:
            return
        self.parent[term] = term
        self.rank[term] = 0
        self.uses[term] = []
        if isinstance(term, tuple):
            for arg in term[1:]:
                self._add(arg)
                self.uses[self.find(arg)].append(term)
            self._install_signature(term)

    def find(self, term: Node) -> Node:
        self._add(term)
        root = term
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[term] != root:
            self.parent[term], term = root, self.parent[term]
        return root

    def _install_signature(self, app: tuple) -> None:
        sig = (app[0],) + tuple(self.find(a) for a in app[1:])
        existing = self.signatures.get(sig)
        if existing is None:
            self.signatures[sig] = app
        elif self.find(existing) != self.find(app):
            self._union(existing, app)

    def _union(self, a: Node, b: Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        pending = self.uses.pop(rb, [])
        self.uses.setdefault(ra, []).extend(pending)
        # Re-canonicalize signatures of applications that used rb.
        for app in list(pending):
            self._install_signature(app)

    # -- public API -----------------------------------------------------------

    def merge(self, a: Node, b: Node) -> None:
        """Assert ``a = b`` and propagate congruences."""
        self._add(a)
        self._add(b)
        self._union(a, b)

    def assert_distinct(self, a: Node, b: Node) -> None:
        """Record a disequality ``a != b`` (checked by
        :meth:`is_consistent`)."""
        self._add(a)
        self._add(b)
        self.disequalities.append((a, b))

    def are_equal(self, a: Node, b: Node) -> bool:
        """Whether the closure entails ``a = b``."""
        return self.find(a) == self.find(b)

    def is_consistent(self) -> bool:
        """Whether no recorded disequality has been merged."""
        return all(self.find(a) != self.find(b)
                   for a, b in self.disequalities)

    def classes(self) -> dict[Node, list[Node]]:
        """Representative -> members."""
        result: dict[Node, list[Node]] = {}
        for term in self.parent:
            result.setdefault(self.find(term), []).append(term)
        return result


def entails_equality(equalities: list[tuple[Any, Any]],
                     query: tuple[Any, Any],
                     disequalities: list[tuple[Any, Any]] = ()) -> bool:
    """Convenience: do ``equalities`` (+ consistent ``disequalities``)
    entail ``query``?"""
    cc = CongruenceClosure()
    for a, b in equalities:
        cc.merge(a, b)
    for a, b in disequalities:
        cc.assert_distinct(a, b)
    if not cc.is_consistent():
        return True  # inconsistent premises entail anything
    return cc.are_equal(*query)
