"""The symbolic commutativity verification engine.

This backend plays the role Jahob's integrated provers play in the paper:
it establishes soundness and completeness of commutativity conditions for
*unbounded* initial states.  The decision procedure is theory-guided case
enumeration:

- the object symbols mentioned by the pair's arguments (and, for maps,
  the unknown base bindings) are partitioned into equality classes —
  exact because the fragment is invariant under injective renaming
  (:mod:`repro.solver.partition`);
- the base collection is a symbolic region: only the membership/binding
  of the mentioned classes plus a symbolic size ``N + delta`` are tracked
  (:mod:`repro.solver.symbolic`);
- both operation orders are executed with symbolic semantics and the
  condition is evaluated per case; soundness and completeness reduce to
  per-case boolean checks (Properties 1-2).

For the ArrayList, element universes are handled by the same partition
argument (exact for unbounded universes) while sequence *length* is
enumerated up to the scope bound — the honest deviation recorded in
DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Iterator

from ..commutativity.bounded import CheckResult, Counterexample
from ..commutativity.conditions import CommutativityCondition
from ..eval.enumeration import Scope
from ..eval.interpreter import EvalContext, evaluate
from ..eval.values import FMap, Record
from ..specs.interface import DataStructureSpec, Operation
from .partition import partitions
from .symbolic import SymInt, SymMap, SymSet

#: Canonical integer arguments: cover zero / positive / negative cases.
CANONICAL_INTS = (-1, 0, 1, 2)

Semantics = Callable[[Record, tuple[Any, ...]], tuple[Record, Any]]


# ---------------------------------------------------------------------------
# Symbolic operation semantics
# ---------------------------------------------------------------------------

def _set_add(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    contents: SymSet = state["contents"]
    if v in contents:
        return state, False
    return Record(contents=contents.add(v),
                  size=state["size"].plus(1)), True


def _set_remove(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    contents: SymSet = state["contents"]
    if v not in contents:
        return state, False
    return Record(contents=contents.remove(v),
                  size=state["size"].plus(-1)), True


def _discard(semantics: Semantics) -> Semantics:
    def wrapped(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
        new_state, _ = semantics(state, args)
        return new_state, None
    return wrapped


SET_SEMANTICS: dict[str, Semantics] = {
    "add": _set_add,
    "add_": _discard(_set_add),
    "contains": lambda s, a: (s, a[0] in s["contents"]),
    "remove": _set_remove,
    "remove_": _discard(_set_remove),
    "size": lambda s, a: (s, s["size"]),
}


def _map_put(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    k, v = args
    contents: SymMap = state["contents"]
    previous = contents.lookup(k)
    delta = 0 if k in contents else 1
    return Record(contents=contents.put(k, v),
                  size=state["size"].plus(delta)), previous


def _map_remove(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (k,) = args
    contents: SymMap = state["contents"]
    previous = contents.lookup(k)
    delta = -1 if k in contents else 0
    return Record(contents=contents.remove(k),
                  size=state["size"].plus(delta)), previous


MAP_SEMANTICS: dict[str, Semantics] = {
    "containsKey": lambda s, a: (s, a[0] in s["contents"]),
    "get": lambda s, a: (s, s["contents"].lookup(a[0])),
    "put": _map_put,
    "put_": _discard(_map_put),
    "remove": _map_remove,
    "remove_": _discard(_map_remove),
    "size": lambda s, a: (s, s["size"]),
}

ACCUMULATOR_SEMANTICS: dict[str, Semantics] = {
    "increase": lambda s, a: (Record(value=s["value"].plus(a[0])), None),
    "read": lambda s, a: (s, s["value"]),
}


# ---------------------------------------------------------------------------
# Case enumeration per family
# ---------------------------------------------------------------------------

def _obj_symbols(op1: Operation, op2: Operation,
                 sort_name: str = "obj") -> list[str]:
    syms = []
    for op, suffix in ((op1, "1"), (op2, "2")):
        for p in op.params:
            if p.sort.value == sort_name:
                syms.append(f"{p.name}{suffix}")
    return syms


def _args_from_tokens(op: Operation, suffix: str,
                      tokens: dict[str, str]) -> tuple[Any, ...]:
    return tuple(tokens[f"{p.name}{suffix}"] for p in op.params)


def set_cases(op1: Operation, op2: Operation) \
        -> Iterator[tuple[Record, tuple[Any, ...], tuple[Any, ...]]]:
    """Symbolic initial states/arguments for a set-family pair."""
    syms = _obj_symbols(op1, op2)
    for part in partitions(tuple(syms)):
        tokens = {sym: f"c{cls}" for sym, cls in part.items()}
        classes = sorted(set(tokens.values()))
        for bits in itertools.product((False, True), repeat=len(classes)):
            membership = FMap(dict(zip(classes, bits)))
            state = Record(contents=SymSet(membership),
                           size=SymInt("N", 0))
            yield (state, _args_from_tokens(op1, "1", tokens),
                   _args_from_tokens(op2, "2", tokens))


def map_cases(op1: Operation, op2: Operation) \
        -> Iterator[tuple[Record, tuple[Any, ...], tuple[Any, ...]]]:
    """Symbolic initial states/arguments for a map-family pair.

    Key tokens and value tokens live in separate namespaces (no
    operation or condition ever compares a key with a value); unknown
    base bindings are "fresh" tokens whose mutual equality is itself
    enumerated by partitioning.
    """
    key_syms = []
    val_syms = []
    for op, suffix in ((op1, "1"), (op2, "2")):
        for p in op.params:
            name = f"{p.name}{suffix}"
            if p.name == "k":
                key_syms.append(name)
            else:
                val_syms.append(name)
    for kpart in partitions(tuple(key_syms)):
        ktokens = {sym: f"k{cls}" for sym, cls in kpart.items()}
        kclasses = sorted(set(ktokens.values()))
        for vpart in partitions(tuple(val_syms)):
            vtokens = {sym: f"w{cls}" for sym, cls in vpart.items()}
            vclasses = sorted(set(vtokens.values()))
            options = ["absent", "fresh"] + vclasses
            for choice in itertools.product(options, repeat=len(kclasses)):
                fresh_keys = [kc for kc, tag in zip(kclasses, choice)
                              if tag == "fresh"]
                for fpart in partitions(tuple(fresh_keys)):
                    binding: dict[str, str] = {}
                    for kc, tag in zip(kclasses, choice):
                        if tag == "absent":
                            continue
                        binding[kc] = (f"f{fpart[kc]}" if tag == "fresh"
                                       else tag)
                    state = Record(
                        contents=SymMap(FMap(binding),
                                        frozenset(kclasses)),
                        size=SymInt("N", 0))
                    tokens = {**ktokens, **vtokens}
                    yield (state, _args_from_tokens(op1, "1", tokens),
                           _args_from_tokens(op2, "2", tokens))


def accumulator_cases(op1: Operation, op2: Operation) \
        -> Iterator[tuple[Record, tuple[Any, ...], tuple[Any, ...]]]:
    """Symbolic cases: opaque initial value, canonical increments."""
    domains1 = [CANONICAL_INTS for _ in op1.params]
    domains2 = [CANONICAL_INTS for _ in op2.params]
    state = Record(value=SymInt("N", 0))
    for args1 in itertools.product(*domains1):
        for args2 in itertools.product(*domains2):
            yield state, args1, args2


def arraylist_cases(op1: Operation, op2: Operation, max_len: int) \
        -> Iterator[tuple[Record, tuple[Any, ...], tuple[Any, ...]]]:
    """Canonical cases: partition elements + object args; enumerate
    index args concretely (preconditions filter later)."""
    obj_syms = _obj_symbols(op1, op2)
    for n in range(max_len + 1):
        elem_syms = [f"e{j}" for j in range(n)]
        for part in partitions(tuple(elem_syms + obj_syms)):
            tokens = {sym: f"c{cls}" for sym, cls in part.items()}
            elems = tuple(tokens[e] for e in elem_syms)
            state = Record(elems=elems, size=n)
            index_range = tuple(range(n + 1))

            def arg_domains(op: Operation, suffix: str) -> list[tuple]:
                domains: list[tuple] = []
                for p in op.params:
                    if p.sort.value == "int":
                        domains.append(index_range)
                    else:
                        domains.append((tokens[f"{p.name}{suffix}"],))
                return domains

            for args1 in itertools.product(*arg_domains(op1, "1")):
                for args2 in itertools.product(*arg_domains(op2, "2")):
                    yield state, args1, args2


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

def _family_tooling(spec: DataStructureSpec, scope: Scope):
    """(case iterator factory, symbolic semantics or None)."""
    if spec.name == "Set":
        return set_cases, SET_SEMANTICS
    if spec.name == "Map":
        return map_cases, MAP_SEMANTICS
    if spec.name == "Accumulator":
        return accumulator_cases, ACCUMULATOR_SEMANTICS
    if spec.name == "ArrayList":
        def cases(op1: Operation, op2: Operation):
            return arraylist_cases(op1, op2, scope.max_seq_len)
        return cases, None  # concrete semantics are exact per partition
    raise ValueError(f"no symbolic tooling for family {spec.name!r}")


def _symbolic_observe(semantics: dict[str, Semantics] | None,
                      spec: DataStructureSpec):
    def observe(state: Record, method: str, args: tuple[Any, ...]) -> Any:
        if semantics is not None:
            _, result = semantics[method](state, args)
            return result
        return spec.observe(state, method, args)
    return observe


def check_condition_symbolic(spec: DataStructureSpec,
                             cond: CommutativityCondition,
                             scope: Scope | None = None,
                             max_counterexamples: int = 3) -> CheckResult:
    """Verify soundness and completeness of one condition symbolically."""
    return check_conditions_symbolic(spec, [cond], scope,
                                     max_counterexamples)[0]


def check_conditions_symbolic(spec: DataStructureSpec,
                              conditions: list[CommutativityCondition],
                              scope: Scope | None = None,
                              max_counterexamples: int = 3) \
        -> list[CheckResult]:
    """Verify several conditions of one pair, sharing case enumeration."""
    scope = scope or Scope()
    pairs = {(c.m1, c.m2) for c in conditions}
    if len(pairs) != 1:
        raise ValueError("expected conditions for a single operation pair")
    op1, op2 = conditions[0].op1, conditions[0].op2
    cases, semantics = _family_tooling(spec, scope)
    apply1 = semantics[op1.name] if semantics else op1.semantics
    apply2 = semantics[op2.name] if semantics else op2.semantics
    ctx = EvalContext(observe=_symbolic_observe(semantics, spec))
    results = [CheckResult(condition=c) for c in conditions]
    formulas = [c.formula for c in conditions]
    start = time.perf_counter()
    for state, args1, args2 in cases(op1, op2):
        if not spec.precondition_holds(op1, state, args1):
            continue
        mid, r1 = apply1(state, args1)
        if not spec.precondition_holds(op2, mid, args2):
            continue
        fin, r2 = apply2(mid, args2)
        truth = _commutes_symbolic(spec, op1, op2, apply1, apply2,
                                   state, args1, args2, fin, r1, r2)
        env: dict[str, Any] = {"s1": state, "s2": mid, "s3": fin}
        for p, v in zip(op1.params, args1):
            env[f"{p.name}1"] = v
        for p, v in zip(op2.params, args2):
            env[f"{p.name}2"] = v
        if op1.result_sort is not None:
            env["r1"] = r1
        if op2.result_sort is not None:
            env["r2"] = r2
        for formula, result in zip(formulas, results):
            result.cases += 1
            phi = bool(evaluate(formula, env, ctx))
            if phi == truth:
                continue
            direction = "soundness" if phi else "completeness"
            if len(result.counterexamples) < max_counterexamples:
                result.counterexamples.append(Counterexample(
                    direction=direction, state=state, args1=args1,
                    args2=args2, condition_value=phi, commuted=truth))
    elapsed = time.perf_counter() - start
    for result in results:
        result.elapsed = elapsed
    return results


def _commutes_symbolic(spec: DataStructureSpec, op1: Operation,
                       op2: Operation, apply1: Semantics, apply2: Semantics,
                       state: Record, args1: tuple[Any, ...],
                       args2: tuple[Any, ...], fin: Record,
                       r1: Any, r2: Any) -> bool:
    if not spec.precondition_holds(op2, state, args2):
        return False
    mid_b, r2_b = apply2(state, args2)
    if not spec.precondition_holds(op1, mid_b, args1):
        return False
    fin_b, r1_b = apply1(mid_b, args1)
    if op1.result_sort is not None and r1 != r1_b:
        return False
    if op2.result_sort is not None and r2 != r2_b:
        return False
    return fin == fin_b
