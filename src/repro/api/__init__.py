"""``repro.api`` — the package's front door for extension and use.

Two objects organize everything:

- :class:`Registry` owns name resolution (spec, condition catalog,
  inverse catalog, concrete implementation) and is extended with
  ``register_spec`` / ``register_conditions`` / ``register_inverses`` /
  ``register_implementation`` or the ``@datastructure`` decorator;
- :class:`Session` binds a registry to a verification scope and backend
  and runs the verify -> synthesize -> execute pipeline.

:data:`DEFAULT_REGISTRY` holds the paper's six structures, registered
through the same public calls a user makes for a custom structure; all
legacy module-level entry points (``get_spec``, ``conditions_for``,
``verify_data_structure``, ``check_all_inverses``, the CLI, ...)
delegate to it.
"""

from .default import DEFAULT_REGISTRY, populate_builtins, resolve_registry
from .errors import DuplicateNameError, RegistryError, UnknownNameError
from .registry import Registry, RegistryEntry
from .session import Session


def datastructure(family, *, aliases=(), implementation=None):
    """Module-level ``@datastructure``: register into the default registry."""
    return DEFAULT_REGISTRY.datastructure(family, aliases=aliases,
                                          implementation=implementation)


__all__ = [
    "DEFAULT_REGISTRY", "populate_builtins", "resolve_registry",
    "DuplicateNameError", "RegistryError", "UnknownNameError",
    "Registry", "RegistryEntry", "Session", "datastructure",
]
