"""Registry error types.

:class:`UnknownNameError` doubles as a :class:`KeyError` so call sites
written against the old dict-backed resolvers (``get_spec``,
``catalog.condition``, ``inverse_for``) keep their exception contract,
while new callers get structured near-miss suggestions for free.
"""

from __future__ import annotations

import difflib


class RegistryError(ValueError):
    """Base class for registration and lookup failures."""


class DuplicateNameError(RegistryError):
    """A family, alias, or catalog is already registered."""


class UnknownNameError(RegistryError, KeyError):
    """A lookup name is not registered.

    Carries the lookup ``kind`` (what was being resolved), the offending
    ``name``, the valid ``candidates``, and close-match ``suggestions``.
    """

    def __init__(self, kind: str, name: object,
                 candidates: tuple = ()) -> None:
        self.kind = kind
        self.name = name
        self.candidates = tuple(str(c) for c in candidates)
        self.suggestions = difflib.get_close_matches(
            str(name), self.candidates, n=3, cutoff=0.5)
        self.message = f"unknown {kind}: {name!r}"
        if self.suggestions:
            self.message += \
                f" (did you mean: {', '.join(self.suggestions)}?)"
        elif self.candidates:
            self.message += \
                f" (choose from: {', '.join(sorted(self.candidates))})"
        # args must mirror the constructor signature so the exception
        # survives pickling (worker processes re-raise it in the parent
        # via cls(*args)).
        super().__init__(kind, name, tuple(candidates))

    def __str__(self) -> str:
        # KeyError's __str__ reprs the argument; show the message as-is.
        return self.message
