"""The pluggable data-structure registry.

A :class:`Registry` owns the full name resolution the rest of the
package needs: structure name -> specification family, family -> spec,
family -> commutativity-condition catalog, family -> inverse catalog,
and structure name -> concrete implementation class.  Every consumer
(verifiers, runtime, reporting, CLI) takes a registry and falls back to
:data:`repro.api.DEFAULT_REGISTRY`, which is pre-populated with the
paper's six structures through the same registration calls a downstream
user makes for their own structure (see ``examples/custom_datastructure.py``).

Caching is per instance: two registries never share built specs or
condition lists, so a user's experimental registration can never leak
into the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..commutativity.conditions import CommutativityCondition, Kind
from ..inverses.catalog import InverseSpec
from ..specs.interface import DataStructureSpec
from .errors import DuplicateNameError, UnknownNameError

def _coerce_kind(kind: Kind | str) -> Kind:
    return kind if isinstance(kind, Kind) else Kind(kind)


@dataclass(frozen=True)
class RegistryEntry:
    """One row of :meth:`Registry.describe` (and ``python -m repro list``)."""

    name: str
    family: str
    condition_count: int
    inverse_count: int
    implementation: type | None


class Registry:
    """Name -> (spec, conditions, inverses, implementation) resolution."""

    def __init__(self) -> None:
        self._spec_builders: dict[str, Callable[[], DataStructureSpec]] = {}
        #: Structure name -> family (a family registered without aliases
        #: maps to itself).
        self._aliases: dict[str, str] = {}
        #: Structure names in registration order (drives CLI choices).
        self._names: list[str] = []
        self._condition_builders: dict[
            str, Callable[[DataStructureSpec],
                          Iterable[CommutativityCondition]]] = {}
        self._inverse_specs: dict[str, tuple[InverseSpec, ...]] = {}
        #: Family -> compiled drift-stable conditions (artifacts of the
        #: :mod:`repro.stability` compiler, keyed like conditions).
        self._stable_conditions: dict[str, tuple] = {}
        self._implementations: dict[str, type] = {}
        #: Family -> shard router (see :mod:`repro.runtime.sharding`).
        self._shard_routers: dict[str, Callable] = {}
        # Per-instance caches (replace the old module-global lru_caches).
        self._spec_cache: dict[str, DataStructureSpec] = {}
        self._condition_cache: dict[
            str, tuple[CommutativityCondition, ...]] = {}

    @classmethod
    def with_builtins(cls) -> "Registry":
        """A fresh registry pre-populated with the paper's six structures."""
        from .default import populate_builtins
        return populate_builtins(cls())

    # -- registration --------------------------------------------------------

    def register_spec(self, family: str, spec: Any, *,
                      aliases: Sequence[str] = (),
                      implementation: type | None = None) -> None:
        """Register a specification family.

        ``spec`` is a :class:`DataStructureSpec` or a zero-argument
        builder for one (built lazily, cached per registry).  With no
        ``aliases`` the family itself becomes a structure name; each
        alias becomes a structure name sharing the family's spec,
        conditions, and inverses.  ``implementation`` optionally binds a
        concrete class to every registered structure name.
        """
        names = tuple(aliases) or (family,)
        # Validate everything before the first mutation so a rejected
        # registration leaves the registry untouched — including
        # duplicates *within* this call's alias list.
        seen: set[str] = set()
        for name in (family, *names):
            if name in self._aliases or name in self._spec_builders \
                    or (name in seen and name != family):
                raise DuplicateNameError(
                    f"data structure {name!r} is already registered")
            seen.add(name)
        builder = spec if callable(spec) else (lambda spec=spec: spec)
        self._spec_builders[family] = builder
        for name in names:
            self.register_alias(name, family)
            if implementation is not None:
                self.register_implementation(name, implementation)

    def register_alias(self, name: str, family: str) -> None:
        """Make ``name`` a structure name resolving to ``family``."""
        if family not in self._spec_builders:
            raise UnknownNameError("specification family", family,
                                   tuple(self._spec_builders))
        if name in self._aliases or (name != family
                                     and name in self._spec_builders):
            raise DuplicateNameError(
                f"data structure {name!r} is already registered")
        self._aliases[name] = family
        self._names.append(name)

    def register_conditions(self, name: str, conditions: Any) -> None:
        """Register the commutativity-condition catalog of ``name``'s family.

        ``conditions`` is either an iterable of
        :class:`CommutativityCondition` or a builder called with the
        family's spec (built lazily, cached per registry).
        """
        family = self.family_of(name)
        if family in self._condition_builders:
            raise DuplicateNameError(
                f"conditions for {family!r} are already registered")
        if callable(conditions):
            builder = conditions
        else:
            fixed = tuple(conditions)
            builder = lambda spec, fixed=fixed: fixed  # noqa: E731
        self._condition_builders[family] = builder
        self._condition_cache.pop(family, None)

    def register_inverses(self, name: str,
                          inverses: Iterable[InverseSpec]) -> None:
        """Register the inverse-operation catalog of ``name``'s family."""
        family = self.family_of(name)
        if family in self._inverse_specs:
            raise DuplicateNameError(
                f"inverses for {family!r} are already registered")
        self._inverse_specs[family] = tuple(inverses)

    def register_stable_conditions(self, name: str, conditions,
                                   replace: bool = False) -> None:
        """Register compiled drift-stable conditions for ``name``'s family.

        ``conditions`` is an iterable of
        :class:`~repro.stability.StableCondition` — the artifacts of
        :meth:`repro.api.Session.compile_stable`.  Unlike the
        source-of-truth catalogs, stable conditions are *derived* data:
        recompiling (e.g. with a different scope) is legitimate, so
        ``replace=True`` overwrites a previous registration instead of
        raising.
        """
        family = self.family_of(name)
        if family in self._stable_conditions and not replace:
            raise DuplicateNameError(
                f"stable conditions for {family!r} are already "
                f"registered (pass replace=True to recompile)")
        self._stable_conditions[family] = tuple(conditions)

    def has_stable_conditions(self, name: str) -> bool:
        return self.family_of(name) in self._stable_conditions

    def stable_conditions(self, name: str) -> list:
        """The compiled drift-stable conditions of a structure's family."""
        family = self.family_of(name)
        if family not in self._stable_conditions:
            raise UnknownNameError("stable-condition catalog", family,
                                   tuple(self._stable_conditions))
        return list(self._stable_conditions[family])

    def register_shard_router(self, name: str, router: Callable) -> None:
        """Register the shard router of ``name``'s family.

        A router is a callable ``(op_name, args, num_shards) -> shard
        ids | None`` (``None`` = every shard) that the sharded
        gatekeeper uses to partition its log into interaction regions.
        Soundness contract: the router may only place two operations in
        disjoint shard sets when they *unconditionally* commute (their
        between condition holds in every state) — see
        :mod:`repro.runtime.sharding`.  Structures without a router fall
        back to a single region (flat-log behaviour).
        """
        family = self.family_of(name)
        if family in self._shard_routers:
            raise DuplicateNameError(
                f"shard router for {family!r} is already registered")
        self._shard_routers[family] = router

    def has_shard_router(self, name: str) -> bool:
        return self.family_of(name) in self._shard_routers

    def shard_router(self, name: str) -> Callable | None:
        """The shard router of a structure's family, or ``None``."""
        return self._shard_routers.get(self.family_of(name))

    def register_implementation(self, name: str, cls: type) -> None:
        """Bind a concrete implementation class to a structure name."""
        self.family_of(name)  # validates the name
        if name in self._implementations:
            raise DuplicateNameError(
                f"implementation for {name!r} is already registered")
        self._implementations[name] = cls

    def datastructure(self, family: str, *, aliases: Sequence[str] = (),
                      implementation: type | None = None) -> Callable:
        """Decorator form of :meth:`register_spec` for builder functions::

            @registry.datastructure("Register")
            def make_register_spec() -> DataStructureSpec: ...
        """
        def decorate(builder: Callable[[], DataStructureSpec]) -> Callable:
            self.register_spec(family, builder, aliases=aliases,
                               implementation=implementation)
            return builder
        return decorate

    # -- lookup --------------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """Registered structure names, in registration order."""
        return tuple(self._names)

    def families(self) -> tuple[str, ...]:
        """Registered specification-family names, in registration order."""
        return tuple(self._spec_builders)

    def __contains__(self, name: object) -> bool:
        return name in self._aliases or name in self._spec_builders

    def family_of(self, name: str) -> str:
        """Resolve a structure or family name to its family."""
        family = self._aliases.get(name)
        if family is not None:
            return family
        if name in self._spec_builders:
            return name
        candidates = tuple(dict.fromkeys(
            self._names + list(self._spec_builders)))
        raise UnknownNameError("data structure", name, candidates)

    def spec(self, name: str) -> DataStructureSpec:
        """The (per-registry cached) spec of a structure or family name."""
        family = self.family_of(name)
        if family not in self._spec_cache:
            self._spec_cache[family] = self._spec_builders[family]()
        return self._spec_cache[family]

    def has_conditions(self, name: str) -> bool:
        return self.family_of(name) in self._condition_builders

    def conditions(self, name: str) -> list[CommutativityCondition]:
        """The condition catalog of a structure or family name."""
        family = self.family_of(name)
        if family not in self._condition_cache:
            builder = self._condition_builders.get(family)
            if builder is None:
                raise UnknownNameError("condition catalog", family,
                                       tuple(self._condition_builders))
            self._condition_cache[family] = tuple(builder(self.spec(family)))
        return list(self._condition_cache[family])

    def condition(self, name: str, m1: str, m2: str,
                  kind: Kind | str) -> CommutativityCondition:
        """Look up a single condition by operation pair and kind."""
        kind = _coerce_kind(kind)
        conditions = self.conditions(name)
        for cond in conditions:
            if cond.m1 == m1 and cond.m2 == m2 and cond.kind is kind:
                return cond
        operations = tuple(self.spec(name).operations)
        for op in (m1, m2):
            if op not in operations:
                raise UnknownNameError(
                    f"{self.family_of(name)} operation", op, operations)
        raise UnknownNameError(
            f"{kind} condition for {self.family_of(name)}", f"{m1};{m2}",
            tuple(f"{c.m1};{c.m2}" for c in conditions if c.kind is kind))

    def inverses(self, name: str) -> list[InverseSpec]:
        """The inverse catalog of a structure or family name."""
        return list(self._inverse_specs.get(self.family_of(name), ()))

    def inverse(self, name: str, op: str) -> InverseSpec:
        """The inverse spec of one operation."""
        inverses = self.inverses(name)
        for inv in inverses:
            if inv.op == op:
                return inv
        raise UnknownNameError(
            f"inverse for {self.family_of(name)} operation", op,
            tuple(inv.op for inv in inverses))

    def has_implementation(self, name: str) -> bool:
        return name in self._implementations

    def implementation(self, name: str) -> type:
        """The concrete class registered for a structure name."""
        self.family_of(name)  # friendlier error for unknown names
        cls = self._implementations.get(name)
        if cls is None:
            raise UnknownNameError("concrete implementation", name,
                                   tuple(self._implementations))
        return cls

    def new_instance(self, name: str) -> Any:
        """A fresh concrete structure for a registered name."""
        return self.implementation(name)()

    # -- aggregates ----------------------------------------------------------

    def total_condition_count(self) -> int:
        """Conditions summed per *structure name* (the paper counts the
        shared Set/Map catalogs once per implementing structure: 765)."""
        return sum(len(self.conditions(name)) for name in self._names
                   if self.has_conditions(name))

    def describe(self) -> list[RegistryEntry]:
        """One :class:`RegistryEntry` per structure name."""
        rows = []
        for name in self._names:
            family = self.family_of(name)
            rows.append(RegistryEntry(
                name=name, family=family,
                condition_count=(len(self.conditions(name))
                                 if self.has_conditions(name) else 0),
                inverse_count=len(self._inverse_specs.get(family, ())),
                implementation=self._implementations.get(name)))
        return rows
