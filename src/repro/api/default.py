"""The default registry: the paper's six data structures.

:func:`populate_builtins` registers Accumulator, ListSet, HashSet,
AssociationList, HashTable, and ArrayList through the *public*
registration calls — the exact path a downstream user takes for a custom
structure — so the built-ins exercise the extension API on every import.
"""

from __future__ import annotations

from ..commutativity.catalog import accumulator as accumulator_conditions
from ..commutativity.catalog import (arraylist_conditions, map_conditions,
                                     set_conditions)
from ..impls import (Accumulator, ArrayList, AssociationList, HashSet,
                     HashTable, ListSet)
from ..inverses.catalog import INVERSES
from ..specs import accumulator, arraylist_spec, map_spec, set_spec
from .registry import Registry


def populate_builtins(registry: Registry) -> Registry:
    """Register the paper's six structures (four spec families)."""
    registry.register_spec("Accumulator", accumulator.make_spec,
                           implementation=Accumulator)
    registry.register_spec("Set", set_spec.make_spec,
                           aliases=("ListSet", "HashSet"))
    registry.register_spec("Map", map_spec.make_spec,
                           aliases=("AssociationList", "HashTable"))
    registry.register_spec("ArrayList", arraylist_spec.make_spec,
                           implementation=ArrayList)
    registry.register_implementation("ListSet", ListSet)
    registry.register_implementation("HashSet", HashSet)
    registry.register_implementation("AssociationList", AssociationList)
    registry.register_implementation("HashTable", HashTable)

    registry.register_conditions("Accumulator", accumulator_conditions.build)
    registry.register_conditions("Set", set_conditions.build)
    registry.register_conditions("Map", map_conditions.build)
    registry.register_conditions("ArrayList", arraylist_conditions.build)

    for family in ("Accumulator", "Set", "Map", "ArrayList"):
        registry.register_inverses(
            family, [inv for inv in INVERSES if inv.family == family])

    # Shard routers: how each family's verified interaction structure
    # partitions the gatekeeper log (repro.runtime.sharding).
    from ..runtime.sharding import FAMILY_ROUTERS
    for family, router in FAMILY_ROUTERS.items():
        registry.register_shard_router(family, router)
    return registry


#: The registry behind every module-level back-compat entry point
#: (``get_spec``, ``conditions_for``, ``inverse_for``, the CLI, ...).
DEFAULT_REGISTRY: Registry = populate_builtins(Registry())


def resolve_registry(registry: Registry | None) -> Registry:
    """The injected registry, or the package default."""
    return registry if registry is not None else DEFAULT_REGISTRY
