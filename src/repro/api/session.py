"""The :class:`Session` facade: one object for the whole pipeline.

A session binds a :class:`~repro.api.registry.Registry`, a verification
:class:`~repro.eval.enumeration.Scope`, and a default backend, and
exposes the verify -> synthesize -> run workflow against them::

    session = Session(registry=registry, scope=Scope(), backend="bounded")
    session.verify("HashSet").all_verified
    session.check_inverses("HashSet")
    session.synthesize("HashSet", "contains", "add", Kind.BETWEEN, atoms)
    session.executor("HashSet").run(programs)

Custom structures registered on the session's registry verify through
exactly the same calls as the paper's six built-ins.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..commutativity.conditions import CommutativityCondition, Kind
from ..eval.enumeration import Scope
from ..inverses.catalog import InverseSpec
from ..specs.interface import DataStructureSpec
from .default import DEFAULT_REGISTRY
from .registry import Registry, _coerce_kind


class Session:
    """A registry + scope + backend bound into one pipeline object.

    ``jobs`` and ``cache`` set the session-wide defaults for the sharded
    verification engine (:mod:`repro.engine`): ``jobs=None`` honours the
    ``REPRO_JOBS`` environment variable (serial otherwise, ``0`` = all
    CPUs), and ``cache=True`` — the default — serves already-proven
    obligations from the content-addressed ``.repro-cache/`` store.
    Every verification call accepts per-call overrides.
    """

    def __init__(self, registry: Registry | None = None,
                 scope: Scope | None = None,
                 backend: str = "bounded",
                 jobs: int | None = None,
                 cache=True) -> None:
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.scope = scope or Scope()
        self.backend = backend
        self.jobs = jobs
        self.cache = cache

    def _jobs(self, jobs: int | None) -> int | None:
        return jobs if jobs is not None else self.jobs

    def _cache(self, cache):
        return cache if cache is not None else self.cache

    # -- lookups -------------------------------------------------------------

    def spec(self, name: str) -> DataStructureSpec:
        return self.registry.spec(name)

    def conditions(self, name: str) -> list[CommutativityCondition]:
        return self.registry.conditions(name)

    def condition(self, name: str, m1: str, m2: str,
                  kind: Kind | str) -> CommutativityCondition:
        return self.registry.condition(name, m1, m2, kind)

    def inverses(self, name: str) -> list[InverseSpec]:
        return self.registry.inverses(name)

    # -- verification --------------------------------------------------------

    def verify(self, name: str, backend: str | None = None,
               use_dynamic: bool = False, jobs: int | None = None,
               cache=None):
        """Verify every condition of one structure; a
        :class:`~repro.commutativity.verifier.VerificationReport`."""
        from ..commutativity.verifier import verify_data_structure
        return verify_data_structure(name, self.scope,
                                     backend=backend or self.backend,
                                     use_dynamic=use_dynamic,
                                     registry=self.registry,
                                     jobs=self._jobs(jobs),
                                     cache=self._cache(cache))

    def verify_all(self, names: Sequence[str] | None = None,
                   backend: str | None = None, jobs: int | None = None,
                   cache=None):
        """Verify every registered structure (or the ``names`` given),
        sharded over ``jobs`` workers with cache-served obligations."""
        from ..commutativity.verifier import verify_all
        return verify_all(self.scope, backend=backend or self.backend,
                          names=names, registry=self.registry,
                          jobs=self._jobs(jobs), cache=self._cache(cache))

    def check_inverses(self, name: str | None = None,
                       jobs: int | None = None, cache=None):
        """Check Property 3 for one structure's inverses (or all)."""
        from ..engine import run_inverse_verification
        names = None if name is None else (name,)
        return run_inverse_verification(self.scope, names=names,
                                        registry=self.registry,
                                        jobs=self._jobs(jobs),
                                        cache=self._cache(cache))

    def compile_stable(self, names: Sequence[str] | None = None,
                       scope: Scope | None = None,
                       jobs: int | None = None, cache=None,
                       register: bool = True, prover: bool = False,
                       abduce: bool = False):
        """Compile drift-stable conditions for the named structures (or
        every structure with a condition catalog) and register the
        artifacts on this session's registry.

        Returns ``{name: StabilityReport}``.  Runs through the sharded
        engine — compiled verdicts are content-addressed and served
        from ``.repro-cache/`` on reruns — and by default registers
        each family's weakenings via
        :meth:`~repro.api.Registry.register_stable_conditions`
        (``replace=True``: recompiling with a new scope is routine), so
        a subsequent :meth:`run_workload` with ``stable=True`` picks
        them up.  ``prover=True`` additionally discharges symbolic
        proof obligations through :mod:`repro.prover`, arming proved
        state-reading candidates and promoting fully-proved pairs to
        the ``proved`` tier.  ``abduce=True`` (implies ``prover``) runs
        the CEGIS synthesis loop of :mod:`repro.abduction` on top,
        abducing brand-new stable conditions for pairs — and whole
        structures — the projector and footprint machinery cannot
        touch; pairs that gain one carry the ``synthesized`` tier.
        """
        from ..engine import run_stability_compilation
        reports = run_stability_compilation(
            scope or self.scope, names=names, registry=self.registry,
            jobs=self._jobs(jobs), cache=self._cache(cache),
            prover=prover or abduce, abduce=abduce)
        if register:
            for name, report in reports.items():
                self.registry.register_stable_conditions(
                    name, report.stable_conditions(self.spec(name)),
                    replace=True)
        return reports

    def abduce_stable(self, names: Sequence[str] | None = None,
                      scope: Scope | None = None,
                      jobs: int | None = None, cache=None,
                      register: bool = True):
        """:meth:`compile_stable` with the full pipeline armed —
        bounded sweep, symbolic prover, and the abduction loop."""
        return self.compile_stable(names, scope=scope, jobs=jobs,
                                   cache=cache, register=register,
                                   prover=True, abduce=True)

    # -- synthesis -----------------------------------------------------------

    def synthesize(self, name: str, m1: str, m2: str, kind: Kind | str,
                   atoms: Iterable[Any]):
        """Synthesize a sound-and-complete condition over ``atoms``
        (formula texts or pre-parsed terms)."""
        from ..commutativity.synthesis import parse_atoms, synthesize
        spec = self.registry.spec(name)
        atoms = list(atoms)
        if all(isinstance(atom, str) for atom in atoms):
            atoms = parse_atoms(spec, m1, m2, atoms)
        return synthesize(spec, m1, m2, _coerce_kind(kind), atoms,
                          self.scope)

    # -- runtime -------------------------------------------------------------

    def executor(self, name: str, policy: str = "commutativity",
                 seed: int = 0, **kwargs):
        """A speculative executor over the named structure's registered
        concrete implementation."""
        from ..runtime.executor import SpeculativeExecutor
        self.registry.implementation(name)  # fail early with suggestions
        return SpeculativeExecutor(name, policy=policy, seed=seed,
                                   registry=self.registry, **kwargs)

    def run_workload(self, name: str, workload=None, *,
                     policy: str = "commutativity",
                     conflict_mode: str = "abort",
                     workers: int | None = None, batch: int = 1,
                     shards: int | None = None,
                     adaptive: str | None = None,
                     stable: bool = False,
                     compiled: bool = False,
                     backend=None,
                     max_rounds: int = 200_000, **spec_fields):
        """Generate a deterministic workload for ``name`` and execute it
        speculatively; an :class:`~repro.runtime.executor.ExecutionReport`.

        ``workload`` is a :class:`~repro.workloads.WorkloadSpec`, a
        profile name (``"read-heavy"``, ``"mixed"``, ``"write-heavy"``),
        or ``None``; remaining keyword fields (``distribution=``,
        ``transactions=``, ``seed=``, ...) override spec fields.  The
        generated programs depend only on the workload spec — never on
        ``workers`` or ``shards`` — so serial, multi-worker, and sharded
        runs execute byte-identical transactions.

        ``shards`` partitions the conflict-manager log by interaction
        region (``1`` = the flat-log gatekeeper); ``adaptive`` selects a
        contention controller (``"backoff"``, ``"wait-die"``,
        ``"hybrid"``, or ``None``); ``stable=True`` arms the drift
        guard with the conditions a prior :meth:`compile_stable`
        registered; ``compiled=True`` lowers the admission vocabulary
        into closures at arm time (:mod:`repro.compiled`) — same
        decisions, faster checks.

        ``backend`` selects where admission decisions come from:
        ``None`` is the in-process path; a
        :class:`~repro.service.client.ServiceBackend` routes every
        decision to a remote admission server — byte-identical
        ``decision_digest()`` either way.
        """
        from ..runtime.executor import SpeculativeExecutor
        from ..workloads import WorkloadGenerator, resolve_workload
        workload = resolve_workload(workload, **spec_fields)
        self.registry.implementation(name)  # fail early with suggestions
        generator = WorkloadGenerator(self.registry)
        programs = generator.generate(name, workload)
        setup = generator.generate_setup(name, workload)
        executor = SpeculativeExecutor(
            name, policy=policy, seed=workload.seed,
            max_rounds=max_rounds, conflict_mode=conflict_mode,
            registry=self.registry,
            workers=workers if workers is not None else workload.workers,
            batch=batch,
            shards=shards if shards is not None else workload.shards,
            adaptive=adaptive, stable=stable, compiled=compiled,
            backend=backend)
        return executor.run(programs, setup=setup)

    def throughput_sweep(self, structures: Sequence[str] | None = None,
                         workloads=None, policies=None,
                         conflict_modes: Sequence[str] = ("abort",),
                         workers: int | None = None,
                         shard_counts: Sequence[int] | None = None,
                         adaptive: str | None = None):
        """Sweep (structure x policy x workload x conflict-mode
        [x shard-count]) through the speculative executor; a list of
        :class:`~repro.workloads.WorkloadRun`."""
        from ..runtime.gatekeeper import POLICIES
        from ..workloads import ThroughputHarness
        harness = ThroughputHarness(registry=self.registry,
                                    workers=workers, adaptive=adaptive)
        return harness.sweep(structures=structures, workloads=workloads,
                             policies=(policies if policies is not None
                                       else POLICIES),
                             conflict_modes=conflict_modes,
                             shard_counts=shard_counts)
