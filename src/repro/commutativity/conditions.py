"""Commutativity conditions (Chapter 4).

A :class:`CommutativityCondition` packages, for an ordered pair of
operations ``m1(args1); m2(args2)`` on one data structure, a *kind*
(before / between / after, Section 4.1.2) and a logical formula over the
vocabulary that kind permits:

- **before**: the arguments and the initial abstract state ``s1``;
- **between**: additionally the first return value ``r1`` and the
  intermediate abstract state ``s2``;
- **after**: additionally the second return value ``r2`` and the final
  abstract state ``s3``.

Argument naming: the parameters of ``m1`` are suffixed with ``1``
(``v -> v1``, ``i -> i1``, ``k -> k1``) and those of ``m2`` with ``2``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

from ..logic import free_vars, parse_formula
from ..logic.sorts import Sort
from ..logic.symbols import SymbolTable
from ..logic import terms as t
from ..specs.interface import DataStructureSpec, Operation


class Kind(enum.Enum):
    """When a commutativity condition can be evaluated (Section 4.1.2)."""

    BEFORE = "before"
    BETWEEN = "between"
    AFTER = "after"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Abstract-state variables a condition formula may mention.  Formulas
#: over arguments and return values only were verified to match the
#: commute relation in *every* enumerated state, so their verdict
#: transfers to any runtime context; formulas mentioning any of these
#: are only trusted in the exact environment they were verified for
#: (see the drift guard in :mod:`repro.runtime.gatekeeper` and the
#: stability compiler in :mod:`repro.stability`).
STATE_VARS = frozenset({"s1", "s2", "s3"})


def formula_references_state(term: t.Term) -> bool:
    """Whether a formula mentions any abstract-state variable."""
    return bool(STATE_VARS & free_vars(term))


class VocabularyError(ValueError):
    """A condition references variables its kind does not permit."""


def suffixed_params(op: Operation, suffix: str) -> dict[str, Sort]:
    """Parameter names of ``op`` with an order suffix (``v`` -> ``v1``)."""
    return {f"{p.name}{suffix}": p.sort for p in op.params}


def condition_symbols(spec: DataStructureSpec, m1: Operation,
                      m2: Operation) -> SymbolTable:
    """The full (after-kind) symbol table for a pair's conditions."""
    variables: dict[str, Sort] = {
        "s1": Sort.STATE, "s2": Sort.STATE, "s3": Sort.STATE,
    }
    variables.update(suffixed_params(m1, "1"))
    variables.update(suffixed_params(m2, "2"))
    if m1.result_sort is not None:
        variables["r1"] = m1.result_sort
    if m2.result_sort is not None:
        variables["r2"] = m2.result_sort
    return spec.symbols(variables)


def allowed_variables(kind: Kind, m1: Operation, m2: Operation) -> frozenset[str]:
    """Free variables a condition of ``kind`` may mention (Section 4.1.2)."""
    allowed = set(suffixed_params(m1, "1")) | set(suffixed_params(m2, "2"))
    allowed.add("s1")
    if kind in (Kind.BETWEEN, Kind.AFTER):
        allowed.add("s2")
        if m1.result_sort is not None:
            allowed.add("r1")
    if kind is Kind.AFTER:
        allowed.add("s3")
        if m2.result_sort is not None:
            allowed.add("r2")
    return frozenset(allowed)


@dataclass
class CommutativityCondition:
    """A developer-specified commutativity condition for one ordered pair."""

    family: str
    m1: str
    m2: str
    kind: Kind
    #: Formula text over the abstract state (Tables 5.1-5.7, third column).
    text: str
    #: Optional formula usable for dynamic checks against a concrete
    #: structure (Tables 5.1-5.7, fourth column); defaults to ``text``.
    dynamic_text: str | None = None
    spec: DataStructureSpec = field(repr=False, default=None)

    def __post_init__(self) -> None:
        if self.spec is None:
            raise ValueError("CommutativityCondition requires a spec")
        self._validate_vocabulary()

    @property
    def op1(self) -> Operation:
        return self.spec.operations[self.m1]

    @property
    def op2(self) -> Operation:
        return self.spec.operations[self.m2]

    @cached_property
    def formula(self) -> t.Term:
        """The parsed abstract-state formula."""
        table = condition_symbols(self.spec, self.op1, self.op2)
        return parse_formula(self.text, table)

    @cached_property
    def dynamic_formula(self) -> t.Term:
        """The parsed dynamically-checkable formula."""
        if self.dynamic_text is None:
            return self.formula
        table = condition_symbols(self.spec, self.op1, self.op2)
        return parse_formula(self.dynamic_text, table)

    @cached_property
    def drift_fragile(self) -> bool:
        """Whether the dynamically-checkable formula mentions abstract
        state — if so, its runtime verdict is only trustworthy in the
        environment it was verified for (the drift guard refuses it once
        the gatekeeper's state has moved on)."""
        return formula_references_state(self.dynamic_formula)

    def _validate_vocabulary(self) -> None:
        allowed = allowed_variables(self.kind, self.op1, self.op2)
        used = free_vars(self.formula)
        extra = used - allowed
        if extra:
            raise VocabularyError(
                f"{self.family} {self.m1}/{self.m2} {self.kind} condition "
                f"references {sorted(extra)} outside its vocabulary")

    @property
    def pair_label(self) -> str:
        return f"{self.m1};{self.m2}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.family}: {self.m1}; {self.m2} [{self.kind}] "
                f"{self.text}")
