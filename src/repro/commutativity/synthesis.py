"""Condition synthesis: derive a sound-and-complete commutativity
condition from the semantics alone.

Given an operation pair, a kind, and a pool of candidate atomic
predicates over that kind's vocabulary, the synthesizer evaluates every
in-scope case (Figure 4-1), records each case's atom valuation and
ground-truth commutativity, and — when the atoms suffice to separate
commuting from non-commuting cases — emits a minimized DNF condition.

This is how the repository cross-validates the hand-derived catalog: the
synthesized condition must be logically equivalent (both are sound and
complete of the same kind, Section 4.1.2) to the catalog entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eval.enumeration import Scope
from ..eval.interpreter import EvalContext, evaluate
from ..logic import parse_formula, pretty
from ..logic import terms as t
from ..specs import DataStructureSpec
from .bounded import case_environment, commutes, enumerate_cases
from .conditions import (CommutativityCondition, Kind, allowed_variables,
                         condition_symbols)


@dataclass
class SynthesisResult:
    """Outcome of a synthesis attempt."""

    formula: t.Term | None
    atoms: tuple[t.Term, ...]
    cases: int
    #: Two cases with identical atom valuations but different ground
    #: truth — evidence the atom pool cannot express the condition.
    ambiguous: tuple | None = None

    @property
    def succeeded(self) -> bool:
        return self.formula is not None

    @property
    def text(self) -> str:
        return pretty(self.formula) if self.formula is not None else "<none>"


def parse_atoms(spec: DataStructureSpec, m1: str, m2: str,
                texts: list[str]) -> list[t.Term]:
    """Parse candidate atoms against the pair's condition vocabulary."""
    op1 = spec.operations[m1]
    op2 = spec.operations[m2]
    table = condition_symbols(spec, op1, op2)
    return [parse_formula(text, table) for text in texts]


def synthesize(spec: DataStructureSpec, m1: str, m2: str, kind: Kind,
               atoms: list[t.Term], scope: Scope | None = None) \
        -> SynthesisResult:
    """Synthesize the sound-and-complete condition over ``atoms``."""
    scope = scope or Scope()
    op1 = spec.operations[m1]
    op2 = spec.operations[m2]
    allowed = allowed_variables(kind, op1, op2)
    from ..logic import free_vars
    for atom in atoms:
        extra = free_vars(atom) - allowed
        if extra:
            raise ValueError(
                f"atom {pretty(atom)} uses {sorted(extra)} outside the "
                f"{kind} vocabulary")
    ctx = EvalContext(observe=spec.observe)
    #: atom valuation -> ground truth
    table: dict[tuple[bool, ...], bool] = {}
    witnesses: dict[tuple[bool, ...], object] = {}
    cases = 0
    for case in enumerate_cases(spec, op1, op2, scope):
        cases += 1
        env = case_environment(op1, op2, case)
        valuation = tuple(bool(evaluate(a, env, ctx)) for a in atoms)
        truth = commutes(spec, op1, op2, case)
        if valuation in table:
            if table[valuation] != truth:
                return SynthesisResult(
                    formula=None, atoms=tuple(atoms), cases=cases,
                    ambiguous=(witnesses[valuation], case))
        else:
            table[valuation] = truth
            witnesses[valuation] = case
    formula = _minimized_dnf(atoms, table)
    return SynthesisResult(formula=formula, atoms=tuple(atoms), cases=cases)


def _minimized_dnf(atoms: list[t.Term],
                   table: dict[tuple[bool, ...], bool]) -> t.Term:
    """Build a DNF over the observed valuations and greedily drop
    literals/terms while the table stays correctly classified."""
    minterms = [v for v, truth in table.items() if truth]
    if not minterms:
        return t.FALSE
    if all(table.values()):
        return t.TRUE

    def classify(terms: list[dict[int, bool]],
                 valuation: tuple[bool, ...]) -> bool:
        return any(all(valuation[i] == want for i, want in term.items())
                   for term in terms)

    def consistent(terms: list[dict[int, bool]]) -> bool:
        return all(classify(terms, v) == truth
                   for v, truth in table.items())

    terms = [dict(enumerate(v)) for v in minterms]
    # Greedy literal elimination.
    for term in terms:
        for index in sorted(term):
            saved = term.pop(index)
            if not consistent(terms):
                term[index] = saved
    # Greedy term elimination (duplicates collapse naturally).
    pruned: list[dict[int, bool]] = []
    for i, term in enumerate(terms):
        trial = pruned + terms[i + 1:]
        if not consistent(trial):
            pruned.append(term)
    terms = pruned

    def literal(index: int, want: bool) -> t.Term:
        return atoms[index] if want else t.neg(atoms[index])

    return t.disj(*(
        t.conj(*(literal(i, want) for i, want in sorted(term.items())))
        for term in terms))


def validate_against_catalog(cond: CommutativityCondition,
                             atoms: list[str],
                             scope: Scope | None = None) -> bool:
    """Synthesize from semantics and confirm the catalog condition is
    pointwise equal over the scope."""
    scope = scope or Scope()
    spec = cond.spec
    parsed = parse_atoms(spec, cond.m1, cond.m2, atoms)
    result = synthesize(spec, cond.m1, cond.m2, cond.kind, parsed, scope)
    if not result.succeeded:
        return False
    ctx = EvalContext(observe=spec.observe)
    op1, op2 = cond.op1, cond.op2
    for case in enumerate_cases(spec, op1, op2, scope):
        env = case_environment(op1, op2, case)
        if bool(evaluate(result.formula, env, ctx)) \
                != bool(evaluate(cond.formula, env, ctx)):
            return False
    return True
