"""Verification orchestration: run every testing method for a data
structure through a backend and record timings (Table 5.8).

Backends:

- ``"bounded"`` — the exhaustive finite-scope checker
  (:mod:`repro.commutativity.bounded`);
- ``"symbolic"`` — the unbounded-base-state symbolic engine
  (:mod:`repro.solver.engine`), which mirrors the role Jahob's integrated
  provers play in the paper.

Since the sharded-engine rewrite (:mod:`repro.engine`) both entry
points expand into per-operation-pair task shards that can fan out over
worker processes (``jobs``) and be served from a content-addressed
result cache (``cache``); the defaults — serial, uncached — reproduce
the historical behaviour exactly.  A report's ``elapsed`` is the sum of
its task times, so it is deterministic across serial, parallel, and
cache-served runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..eval.enumeration import Scope
from .bounded import CheckResult


@dataclass
class VerificationReport:
    """Outcome of verifying all conditions of one data structure."""

    name: str
    backend: str
    results: list[CheckResult] = field(default_factory=list)
    #: Sum of the report's task-shard times (deterministic across serial,
    #: parallel, and cache-served runs).  Not part of equality.
    elapsed: float = field(default=0.0, compare=False)
    #: Per-shard timing/cache breakdown (engine metadata; excluded from
    #: repr/eq so warm and cold reports stay byte-identical).
    task_timings: list = field(default_factory=list, repr=False,
                               compare=False)

    @property
    def condition_count(self) -> int:
        return len(self.results)

    @property
    def method_count(self) -> int:
        """Soundness + completeness testing methods (2 per condition)."""
        return 2 * len(self.results)

    @property
    def verified_count(self) -> int:
        return sum(1 for r in self.results if r.verified)

    @property
    def all_verified(self) -> bool:
        return self.verified_count == self.condition_count

    @property
    def cache_hits(self) -> int:
        """Task shards answered from the result cache."""
        return sum(1 for t in self.task_timings if t.cached)

    @property
    def cache_misses(self) -> int:
        """Task shards that actually ran this time."""
        return sum(1 for t in self.task_timings if not t.cached)

    @property
    def slowest_task(self):
        """The most expensive shard (a :class:`~repro.engine.TaskTiming`),
        or ``None`` for an empty report."""
        if not self.task_timings:
            return None
        return max(self.task_timings, key=lambda t: t.elapsed)

    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if not r.verified]

    def summary(self) -> str:
        status = "all verified" if self.all_verified else (
            f"{self.condition_count - self.verified_count} FAILED")
        return (f"{self.name}: {self.condition_count} conditions "
                f"({self.method_count} testing methods) via {self.backend} "
                f"backend, {status}, {self.elapsed:.2f}s")


def verify_data_structure(name: str, scope: Scope | None = None,
                          backend: str = "bounded",
                          use_dynamic: bool = False,
                          registry=None, jobs: int | None = None,
                          cache=False) -> VerificationReport:
    """Verify every commutativity condition of one data structure."""
    from ..engine import run_verification
    return run_verification(scope, backend=backend, names=(name,),
                            registry=registry, jobs=jobs, cache=cache,
                            use_dynamic=use_dynamic)[name]


def verify_all(scope: Scope | None = None, backend: str = "bounded",
               names: tuple[str, ...] | None = None,
               registry=None, jobs: int | None = None,
               cache=False) -> dict[str, VerificationReport]:
    """Verify the full catalog for every registered data structure
    (Table 5.8 for the default registry's six)."""
    from ..engine import run_verification
    return run_verification(scope, backend=backend, names=names,
                            registry=registry, jobs=jobs, cache=cache)
