"""Verification orchestration: run every testing method for a data
structure through a backend and record timings (Table 5.8).

Backends:

- ``"bounded"`` — the exhaustive finite-scope checker
  (:mod:`repro.commutativity.bounded`);
- ``"symbolic"`` — the unbounded-base-state symbolic engine
  (:mod:`repro.solver.engine`), which mirrors the role Jahob's integrated
  provers play in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..eval.enumeration import Scope
from .bounded import CheckResult, check_conditions
from .conditions import CommutativityCondition


def _registry(registry):
    from ..api import resolve_registry
    return resolve_registry(registry)


@dataclass
class VerificationReport:
    """Outcome of verifying all conditions of one data structure."""

    name: str
    backend: str
    results: list[CheckResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def condition_count(self) -> int:
        return len(self.results)

    @property
    def method_count(self) -> int:
        """Soundness + completeness testing methods (2 per condition)."""
        return 2 * len(self.results)

    @property
    def verified_count(self) -> int:
        return sum(1 for r in self.results if r.verified)

    @property
    def all_verified(self) -> bool:
        return self.verified_count == self.condition_count

    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if not r.verified]

    def summary(self) -> str:
        status = "all verified" if self.all_verified else (
            f"{self.condition_count - self.verified_count} FAILED")
        return (f"{self.name}: {self.condition_count} conditions "
                f"({self.method_count} testing methods) via {self.backend} "
                f"backend, {status}, {self.elapsed:.2f}s")


def _group_by_pair(conditions: list[CommutativityCondition]) \
        -> dict[tuple[str, str], list[CommutativityCondition]]:
    groups: dict[tuple[str, str], list[CommutativityCondition]] = {}
    for cond in conditions:
        groups.setdefault((cond.m1, cond.m2), []).append(cond)
    return groups


def verify_data_structure(name: str, scope: Scope | None = None,
                          backend: str = "bounded",
                          use_dynamic: bool = False,
                          registry=None) -> VerificationReport:
    """Verify every commutativity condition of one data structure."""
    scope = scope or Scope()
    registry = _registry(registry)
    spec = registry.spec(name)
    conditions = registry.conditions(name)
    report = VerificationReport(name=name, backend=backend)
    start = time.perf_counter()
    if backend == "bounded":
        for group in _group_by_pair(conditions).values():
            report.results.extend(
                check_conditions(spec, group, scope, use_dynamic=use_dynamic))
    elif backend == "symbolic":
        from ..solver.engine import check_condition_symbolic
        for cond in conditions:
            report.results.append(
                check_condition_symbolic(spec, cond, scope))
    else:
        raise ValueError(f"unknown backend {backend!r}")
    report.elapsed = time.perf_counter() - start
    return report


def verify_all(scope: Scope | None = None, backend: str = "bounded",
               names: tuple[str, ...] | None = None,
               registry=None) -> dict[str, VerificationReport]:
    """Verify the full catalog for every registered data structure
    (Table 5.8 for the default registry's six)."""
    registry = _registry(registry)
    if names is None:
        names = tuple(name for name in registry.names()
                      if registry.has_conditions(name))
    return {name: verify_data_structure(name, scope, backend,
                                        registry=registry)
            for name in names}
