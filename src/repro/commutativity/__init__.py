"""Semantic commutativity analysis (the paper's primary contribution)."""

from .conditions import (CommutativityCondition, Kind, STATE_VARS,
                         VocabularyError, formula_references_state)
from .bounded import (Case, CheckResult, Counterexample, check_condition,
                      check_conditions, commutes, enumerate_cases,
                      exact_condition_table)
from .catalog import (all_conditions, condition, conditions_for,
                      total_condition_count)
from .generator import Direction, TestingMethod, generate_methods
from .verifier import VerificationReport, verify_all, verify_data_structure

__all__ = [
    "CommutativityCondition", "Kind", "STATE_VARS", "VocabularyError",
    "formula_references_state",
    "Case", "CheckResult", "Counterexample", "check_condition",
    "check_conditions", "commutes", "enumerate_cases",
    "exact_condition_table",
    "all_conditions", "condition", "conditions_for",
    "total_condition_count",
    "Direction", "TestingMethod", "generate_methods",
    "VerificationReport", "verify_all", "verify_data_structure",
]
