"""Bounded exhaustive verification of commutativity conditions.

This backend realizes the semantics of the generated testing methods
(Figures 2-2, 3-1) directly: it enumerates every abstract state and
argument tuple within a :class:`~repro.eval.enumeration.Scope`, executes
both operation orders of Figure 4-1, and checks

- **soundness** (Property 1): condition true  => both orders defined,
  same return values, same final abstract state;
- **completeness** (Property 2): condition false => some order undefined,
  or different return values, or different final abstract states.

Within the scope this is a decision procedure; the symbolic backend in
:mod:`repro.solver` extends the guarantee to unbounded base states.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..eval.enumeration import Scope
from ..eval.interpreter import EvalContext
from ..eval.values import Record
from ..specs.interface import DataStructureSpec, Operation
from .conditions import CommutativityCondition


@dataclass(frozen=True)
class Case:
    """One first-order execution of ``m1(args1); m2(args2)`` (Figure 4-1)."""

    state: Record
    args1: tuple[Any, ...]
    args2: tuple[Any, ...]
    mid: Record
    fin: Record
    r1: Any
    r2: Any


@dataclass(frozen=True)
class Counterexample:
    """A state/argument combination violating soundness or completeness."""

    direction: str  # "soundness" or "completeness"
    state: Record
    args1: tuple[Any, ...]
    args2: tuple[Any, ...]
    condition_value: bool
    commuted: bool


@dataclass
class CheckResult:
    """Outcome of checking one condition over a scope."""

    condition: CommutativityCondition
    cases: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: Wall time of the shard that produced this result.  Not part of
    #: equality: two runs of the same obligation are the same result.
    elapsed: float = field(default=0.0, compare=False)
    #: Served from the engine's content-addressed result cache.  Excluded
    #: from repr/eq so warm and cold reports stay byte-identical.
    cached: bool = field(default=False, repr=False, compare=False)

    @property
    def verified(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        status = "verified" if self.verified else "FAILED"
        cond = self.condition
        return (f"{cond.family} {cond.m1};{cond.m2} [{cond.kind}] "
                f"{status} over {self.cases} cases in {self.elapsed:.2f}s")


def enumerate_cases(spec: DataStructureSpec, op1: Operation, op2: Operation,
                    scope: Scope) -> Iterator[Case]:
    """All first-order executions within scope (premises of Props 1-2)."""
    args1_list = list(spec.arguments(op1, scope))
    args2_list = list(spec.arguments(op2, scope))
    for state in spec.states(scope):
        for args1 in args1_list:
            if not spec.precondition_holds(op1, state, args1):
                continue
            mid, r1 = op1.semantics(state, args1)
            for args2 in args2_list:
                if not spec.precondition_holds(op2, mid, args2):
                    continue
                fin, r2 = op2.semantics(mid, args2)
                yield Case(state, args1, args2, mid, fin, r1, r2)


def commutes(spec: DataStructureSpec, op1: Operation, op2: Operation,
             case: Case) -> bool:
    """Ground-truth semantic commutativity for one case.

    True iff the reverse order is defined (preconditions hold), produces
    the same return values for result-bearing operations, and reaches the
    same abstract final state.
    """
    if not spec.precondition_holds(op2, case.state, case.args2):
        return False
    mid_b, r2_b = op2.semantics(case.state, case.args2)
    if not spec.precondition_holds(op1, mid_b, case.args1):
        return False
    fin_b, r1_b = op1.semantics(mid_b, case.args1)
    if op1.result_sort is not None and case.r1 != r1_b:
        return False
    if op2.result_sort is not None and case.r2 != r2_b:
        return False
    return case.fin == fin_b


def case_environment(op1: Operation, op2: Operation,
                     case: Case) -> dict[str, Any]:
    """Build the evaluation environment for a condition formula."""
    env: dict[str, Any] = {
        "s1": case.state, "s2": case.mid, "s3": case.fin,
    }
    for param, value in zip(op1.params, case.args1):
        env[f"{param.name}1"] = value
    for param, value in zip(op2.params, case.args2):
        env[f"{param.name}2"] = value
    if op1.result_sort is not None:
        env["r1"] = case.r1
    if op2.result_sort is not None:
        env["r2"] = case.r2
    return env


def check_conditions(spec: DataStructureSpec,
                     conditions: list[CommutativityCondition],
                     scope: Scope,
                     max_counterexamples: int = 3,
                     use_dynamic: bool = False) -> list[CheckResult]:
    """Check several conditions for the *same* operation pair at once.

    Sharing the case enumeration across the pair's before/between/after
    conditions triples throughput, which matters for the ArrayList sweep.
    """
    pairs = {(c.m1, c.m2) for c in conditions}
    if len(pairs) != 1:
        raise ValueError("check_conditions expects a single operation pair")
    op1 = conditions[0].op1
    op2 = conditions[0].op2
    ctx = EvalContext(observe=spec.observe)
    from ..logic.compile import compile_term
    formulas = [compile_term(
        c.dynamic_formula if use_dynamic else c.formula, ctx)
        for c in conditions]
    results = [CheckResult(condition=c) for c in conditions]
    start = time.perf_counter()
    for case in enumerate_cases(spec, op1, op2, scope):
        truth = commutes(spec, op1, op2, case)
        env = case_environment(op1, op2, case)
        for formula, result in zip(formulas, results):
            result.cases += 1
            phi = bool(formula(env))
            if phi and not truth:
                direction = "soundness"
            elif not phi and truth:
                direction = "completeness"
            else:
                continue
            if len(result.counterexamples) < max_counterexamples:
                result.counterexamples.append(Counterexample(
                    direction=direction, state=case.state,
                    args1=case.args1, args2=case.args2,
                    condition_value=phi, commuted=truth))
    elapsed = time.perf_counter() - start
    for result in results:
        result.elapsed = elapsed
    return results


def check_condition(spec: DataStructureSpec, cond: CommutativityCondition,
                    scope: Scope, max_counterexamples: int = 3,
                    use_dynamic: bool = False) -> CheckResult:
    """Check a single condition over a scope."""
    return check_conditions(spec, [cond], scope, max_counterexamples,
                            use_dynamic)[0]


def exact_condition_table(spec: DataStructureSpec, op1: Operation,
                          op2: Operation, scope: Scope) \
        -> dict[tuple[Record, tuple[Any, ...], tuple[Any, ...]], bool]:
    """The ground-truth commute relation over the scope, as a table.

    Used by the condition synthesizer and by tests that validate the
    catalog against semantics rather than against formulas.
    """
    table = {}
    for case in enumerate_cases(spec, op1, op2, scope):
        table[(case.state, case.args1, case.args2)] = \
            commutes(spec, op1, op2, case)
    return table
