"""Commutativity testing method generator (Chapter 3, Figures 3-1/3-2).

For each commutativity condition the generator produces two testing
methods: a *soundness* method (assume the condition, assert equal returns
and equal abstract states) and a *completeness* method (assume the
negation, assert some observable difference).  765 conditions give 1530
methods, matching Section 5.1.

A :class:`TestingMethod` carries everything a backend needs to discharge
it, and can render itself as the paper's Java-with-Jahob-annotations
surface syntax (compare :meth:`TestingMethod.render_java` with
Figure 2-2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from ..logic import pretty
from ..logic import terms as t
from ..specs.interface import DataStructureSpec, Operation
from .conditions import CommutativityCondition, Kind


class Direction(enum.Enum):
    SOUNDNESS = "s"
    COMPLETENESS = "c"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "soundness" if self is Direction.SOUNDNESS else "completeness"


@dataclass
class TestingMethod:
    """One generated commutativity testing method."""

    condition: CommutativityCondition
    direction: Direction
    ident: int

    @property
    def spec(self) -> DataStructureSpec:
        return self.condition.spec

    @property
    def op1(self) -> Operation:
        return self.condition.op1

    @property
    def op2(self) -> Operation:
        return self.condition.op2

    @property
    def name(self) -> str:
        """Paper-style method name, e.g. ``contains_add_between_s_40``."""
        return (f"{self.op1.name.rstrip('_')}_{self.op2.name.rstrip('_')}_"
                f"{self.condition.kind.value}_{self.direction.value}_"
                f"{self.ident}")

    @cached_property
    def assumed_formula(self) -> t.Term:
        """The formula inserted by the ``assume`` command: the condition
        for soundness methods, its negation for completeness methods."""
        phi = self.condition.formula
        if self.direction is Direction.COMPLETENESS:
            return t.neg(phi)
        return phi

    # -- rendering ----------------------------------------------------------

    def _param_decls(self) -> str:
        decls = [f"{self.spec.name} sa", f"{self.spec.name} sb"]
        java_types = {"obj": "Object", "int": "int", "bool": "boolean"}
        for op, suffix in ((self.op1, "1"), (self.op2, "2")):
            for p in op.params:
                decls.append(f"{java_types[p.sort.value]} {p.name}{suffix}")
        return ", ".join(decls)

    def _result_decl(self, op: Operation, var: str, call: str) -> str:
        java_types = {"obj": "Object", "int": "int", "bool": "boolean"}
        if op.result_sort is None:
            return f"    {call};"
        rtype = java_types[op.result_sort.value]
        return f"    {rtype} {var} = {call};"

    def render_java(self) -> str:
        """Render the method in the paper's Java + Jahob style (Fig. 2-2)."""
        cond = self.condition
        state_eq = " & ".join(
            f"sa..{f} = sb..{f}" for f in self.spec.state_fields)
        frame = ", ".join(f'"s{x}..{f}"' for x in ("a", "b")
                          for f in self.spec.state_fields
                          if self.op1.mutator or self.op2.mutator)
        args1 = ", ".join(f"{p.name}1" for p in self.op1.params)
        args2 = ", ".join(f"{p.name}2" for p in self.op2.params)
        call1a = f"sa.{self.op1.name.rstrip('_')}({args1})"
        call2a = f"sa.{self.op2.name.rstrip('_')}({args2})"
        call2b = f"sb.{self.op2.name.rstrip('_')}({args2})"
        call1b = f"sb.{self.op1.name.rstrip('_')}({args1})"
        phi = pretty(cond.formula)
        if self.direction is Direction.COMPLETENESS:
            phi = f"~({phi})"
        returns_eq = []
        if self.op1.result_sort is not None:
            returns_eq.append("r1a = r1b")
        if self.op2.result_sort is not None:
            returns_eq.append("r2a = r2b")
        final = " & ".join(returns_eq + [state_eq])
        if self.direction is Direction.COMPLETENESS:
            final = f"~({final})"
        assume_at = {Kind.BEFORE: 0, Kind.BETWEEN: 1, Kind.AFTER: 2}
        lines = [
            f"void {self.name}({self._param_decls()})",
            f'/*: requires "sa ~= null & sb ~= null & sa ~= sb & {state_eq}"',
            f"    modifies {frame}" if frame else "    modifies \"\"",
            '    ensures "True" */',
            "{",
        ]
        body = []
        if assume_at[cond.kind] == 0:
            body.append(f'    /*: assume "{phi}" */')
        body.append(self._result_decl(self.op1, "r1a", call1a))
        if assume_at[cond.kind] == 1:
            body.append(f'    /*: assume "{phi}" */')
        body.append(self._result_decl(self.op2, "r2a", call2a))
        if assume_at[cond.kind] == 2:
            body.append(f'    /*: assume "{phi}" */')
        body.append(self._result_decl(self.op2, "r2b", call2b))
        body.append(self._result_decl(self.op1, "r1b", call1b))
        body.append(f'    /*: assert "{final}" */')
        lines.extend(body)
        lines.append("}")
        return "\n".join(lines)


def generate_methods(conditions: list[CommutativityCondition]) \
        -> list[TestingMethod]:
    """Generate the soundness and completeness testing methods for each
    condition — two per condition, 1530 in total over the full catalog."""
    methods = []
    for ident, cond in enumerate(conditions):
        methods.append(TestingMethod(cond, Direction.SOUNDNESS, ident))
        methods.append(TestingMethod(cond, Direction.COMPLETENESS, ident))
    return methods
