"""The commutativity lattice: dropping clauses from sound-and-complete
conditions (Chapter 6, after Kulkarni et al. [29]).

"Our sound and complete commutativity conditions typically take the form
of a disjunction of clauses.  Dropping clauses produces sound, simpler,
but in general incomplete commutativity conditions. ... It is possible to
start with a sound and complete commutativity condition and generate a
lattice of sound commutativity conditions by dropping clauses (here the
least upper bound is disjunction)."

:func:`lattice_of` enumerates the lattice for one condition and checks
each point's soundness (always preserved) and completeness (generally
lost) with the bounded oracle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..eval.enumeration import Scope
from ..logic import pretty
from ..logic import terms as t
from .bounded import check_condition
from .conditions import CommutativityCondition


def clauses_of(condition: CommutativityCondition) -> tuple[t.Term, ...]:
    """The top-level disjuncts of the condition's formula."""
    formula = condition.formula
    if isinstance(formula, t.Or):
        return formula.args
    return (formula,)


@dataclass(frozen=True)
class LatticePoint:
    """One condition in the lattice: a subset of the full disjunction."""

    condition: CommutativityCondition
    kept: tuple[int, ...]
    formula: t.Term
    sound: bool
    complete: bool

    @property
    def text(self) -> str:
        return pretty(self.formula)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tags = []
        if self.sound:
            tags.append("sound")
        if self.complete:
            tags.append("complete")
        return f"{self.text}  [{', '.join(tags) or 'unsound'}]"


def _point_condition(base: CommutativityCondition,
                     formula: t.Term) -> CommutativityCondition:
    return CommutativityCondition(
        family=base.family, m1=base.m1, m2=base.m2, kind=base.kind,
        text=pretty(formula), spec=base.spec)


def lattice_of(condition: CommutativityCondition,
               scope: Scope | None = None,
               registry=None) -> list[LatticePoint]:
    """All clause subsets of ``condition``, each classified by the
    bounded oracle.  The bottom point (no clauses, i.e. ``false``) is the
    maximally conservative sound condition; the top is the original."""
    scope = scope or Scope()
    spec = registry.spec(condition.family) if registry is not None \
        else condition.spec
    disjuncts = clauses_of(condition)
    points: list[LatticePoint] = []
    for r in range(len(disjuncts) + 1):
        for kept in itertools.combinations(range(len(disjuncts)), r):
            formula = t.disj(*(disjuncts[i] for i in kept))
            result = check_condition(
                spec, _point_condition(condition, formula), scope)
            sound = not any(c.direction == "soundness"
                            for c in result.counterexamples)
            complete = not any(c.direction == "completeness"
                               for c in result.counterexamples)
            points.append(LatticePoint(condition, kept, formula,
                                       sound, complete))
    return points


def soundness_is_preserved(points: list[LatticePoint]) -> bool:
    """The lattice theorem: every clause subset of a sound disjunctive
    condition is sound (checked empirically by the oracle)."""
    return all(p.sound for p in points)


def completeness_frontier(points: list[LatticePoint]) -> list[LatticePoint]:
    """The minimal complete points: no proper subset is still complete."""
    complete = [p for p in points if p.complete]
    frontier = []
    for p in complete:
        kept = set(p.kept)
        if not any(set(q.kept) < kept for q in complete):
            frontier.append(p)
    return frontier
