"""Commutativity conditions for the set interface (Tables 5.2 and 5.3).

Shared by ListSet and HashSet.  Six operations (``add``, ``add_``,
``contains``, ``remove``, ``remove_``, ``size``) give 36 ordered pairs
and 3 * 6^2 = 108 conditions per data structure.

Condition shapes follow the paper exactly:

- before conditions are state queries over the initial state ``s1``
  (``v1 : s1`` abbreviates ``v1 : s1.contents``);
- between/after conditions replace initial-state membership queries with
  the first operation's return value where one exists (the
  ``v1 ~= v2 | r1`` pattern of Figure 2-2), and otherwise fall back to
  the (saved) initial state as Section 4.1.2 permits.

The ``dynamic`` column mirrors the fourth column of Tables 5.2/5.3:
membership queries become ``contains`` observer calls that a run-time
gatekeeper can execute against the concrete structure.
"""

from __future__ import annotations

from ...specs import get_spec
from ..conditions import CommutativityCondition, Kind

_D = "v1 ~= v2"
_IN1 = "v1 : s1"
_OUT1 = "v1 ~: s1"
_IN2 = "v2 : s1"
_OUT2 = "v2 ~: s1"

#: (m1, m2) -> (before, between, after); None means ``true``.
TABLE: dict[tuple[str, str], tuple[str | None, str | None, str | None]] = {
    # -- add as first operation ------------------------------------------
    ("add", "add"): (f"{_D} | {_IN1}", f"{_D} | ~r1", f"{_D} | ~r1"),
    ("add", "add_"): (f"{_D} | {_IN1}", f"{_D} | ~r1", f"{_D} | ~r1"),
    ("add", "contains"): (f"{_D} | {_IN1}", f"{_D} | ~r1", f"{_D} | ~r1"),
    ("add", "remove"): (_D, _D, _D),
    ("add", "remove_"): (_D, _D, _D),
    ("add", "size"): (_IN1, "~r1", "~r1"),
    # -- add_ (discarded result) as first operation ----------------------
    ("add_", "add"): (f"{_D} | {_IN1}", f"{_D} | {_IN1}", f"{_D} | {_IN1}"),
    ("add_", "add_"): (None, None, None),
    ("add_", "contains"): (f"{_D} | {_IN1}", f"{_D} | {_IN1}",
                           f"{_D} | {_IN1}"),
    ("add_", "remove"): (_D, _D, _D),
    ("add_", "remove_"): (_D, _D, _D),
    ("add_", "size"): (_IN1, _IN1, _IN1),
    # -- contains as first operation --------------------------------------
    ("contains", "add"): (f"{_D} | {_IN1}", f"{_D} | r1", f"{_D} | r1"),
    ("contains", "add_"): (f"{_D} | {_IN1}", f"{_D} | r1", f"{_D} | r1"),
    ("contains", "contains"): (None, None, None),
    ("contains", "remove"): (f"{_D} | {_OUT1}", f"{_D} | ~r1",
                             f"{_D} | ~r1"),
    ("contains", "remove_"): (f"{_D} | {_OUT1}", f"{_D} | ~r1",
                              f"{_D} | ~r1"),
    ("contains", "size"): (None, None, None),
    # -- remove as first operation ----------------------------------------
    ("remove", "add"): (_D, _D, _D),
    ("remove", "add_"): (_D, _D, _D),
    ("remove", "contains"): (f"{_D} | {_OUT1}", f"{_D} | ~r1",
                             f"{_D} | ~r1"),
    ("remove", "remove"): (f"{_D} | {_OUT1}", f"{_D} | ~r1", f"{_D} | ~r1"),
    ("remove", "remove_"): (f"{_D} | {_OUT1}", f"{_D} | ~r1",
                            f"{_D} | ~r1"),
    ("remove", "size"): (_OUT1, "~r1", "~r1"),
    # -- remove_ (discarded result) as first operation --------------------
    ("remove_", "add"): (_D, _D, _D),
    ("remove_", "add_"): (_D, _D, _D),
    ("remove_", "contains"): (f"{_D} | {_OUT1}", f"{_D} | {_OUT1}",
                              f"{_D} | {_OUT1}"),
    ("remove_", "remove"): (f"{_D} | {_OUT1}", f"{_D} | {_OUT1}",
                            f"{_D} | {_OUT1}"),
    ("remove_", "remove_"): (None, None, None),
    ("remove_", "size"): (_OUT1, _OUT1, _OUT1),
    # -- size as first operation ------------------------------------------
    ("size", "add"): (_IN2, _IN2, "~r2"),
    ("size", "add_"): (_IN2, _IN2, _IN2),
    ("size", "contains"): (None, None, None),
    ("size", "remove"): (_OUT2, _OUT2, "r2 = false"),
    ("size", "remove_"): (_OUT2, _OUT2, _OUT2),
    ("size", "size"): (None, None, None),
}

#: Translation of initial-state membership queries into observer calls,
#: for the dynamically-checkable fourth column of Tables 5.2/5.3.
_DYNAMIC_REWRITES = (
    (_IN1, "s1.contains(v1) = true"),
    (_OUT1, "s1.contains(v1) = false"),
    (_IN2, "s1.contains(v2) = true"),
    (_OUT2, "s1.contains(v2) = false"),
)


def dynamic_text(text: str) -> str:
    """Rewrite abstract membership queries into observer calls."""
    for abstract, concrete in _DYNAMIC_REWRITES:
        text = text.replace(abstract, concrete)
    return text


def build(spec=None) -> list[CommutativityCondition]:
    """All 108 set-interface conditions."""
    spec = spec or get_spec("Set")
    conditions = []
    for (m1, m2), texts in TABLE.items():
        for kind, text in zip((Kind.BEFORE, Kind.BETWEEN, Kind.AFTER), texts):
            abstract = text if text is not None else "true"
            conditions.append(CommutativityCondition(
                family="Set", m1=m1, m2=m2, kind=kind, text=abstract,
                dynamic_text=dynamic_text(abstract), spec=spec))
    return conditions
