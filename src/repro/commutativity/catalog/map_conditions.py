"""Commutativity conditions for the map interface (Tables 5.4 and 5.5).

Shared by AssociationList and HashTable.  Seven operations
(``containsKey``, ``get``, ``put``, ``put_``, ``remove``, ``remove_``,
``size``) give 49 ordered pairs and 3 * 7^2 = 147 conditions per data
structure.

The abstract column of the paper writes ``(k1, v2) : s1`` for "s1 maps k1
to v2"; we use the equivalent observer form ``s1.get(k1) = v2`` which
doubles as the dynamically-checkable fourth column.  Between/after
conditions use the first operation's return value where one exists —
``put`` and ``remove`` return the *previous* value for the key (``null``
when absent), so ``r1 = null`` is exactly "k1 was unmapped" (the pattern
of Table 5.5).
"""

from __future__ import annotations

from ...specs import get_spec
from ..conditions import CommutativityCondition, Kind

_D = "k1 ~= k2"
_HK1 = "s1.containsKey(k1) = true"
_NK1 = "s1.containsKey(k1) = false"
_HK2 = "s1.containsKey(k2) = true"
_NK2 = "s1.containsKey(k2) = false"
_G1V1 = "s1.get(k1) = v1"
_G1V2 = "s1.get(k1) = v2"
_AGREE = f"{_D} | (v1 = v2 & {_G1V1})"
_AGREE_R1 = f"{_D} | (v1 = v2 & r1 = v1)"

#: (m1, m2) -> (before, between, after); None means ``true``.
TABLE: dict[tuple[str, str], tuple[str | None, str | None, str | None]] = {
    # -- reads commute with reads -----------------------------------------
    ("containsKey", "containsKey"): (None, None, None),
    ("containsKey", "get"): (None, None, None),
    ("containsKey", "size"): (None, None, None),
    ("get", "containsKey"): (None, None, None),
    ("get", "get"): (None, None, None),
    ("get", "size"): (None, None, None),
    ("size", "containsKey"): (None, None, None),
    ("size", "get"): (None, None, None),
    ("size", "size"): (None, None, None),
    # -- get vs put/remove (rows 1 of Tables 5.4/5.5) ----------------------
    ("get", "put"): (f"{_D} | {_G1V2}", f"{_D} | r1 = v2",
                     f"{_D} | r1 = v2"),
    ("get", "put_"): (f"{_D} | {_G1V2}", f"{_D} | r1 = v2",
                      f"{_D} | r1 = v2"),
    ("get", "remove"): (f"{_D} | {_NK1}", f"{_D} | r1 = null",
                        f"{_D} | r1 = null"),
    ("get", "remove_"): (f"{_D} | {_NK1}", f"{_D} | r1 = null",
                         f"{_D} | r1 = null"),
    ("put", "get"): (f"{_D} | {_G1V1}", f"{_D} | r1 = v1",
                     f"{_D} | r1 = v1"),
    ("put_", "get"): (f"{_D} | {_G1V1}", f"{_D} | {_G1V1}",
                      f"{_D} | {_G1V1}"),
    ("remove", "get"): (f"{_D} | {_NK1}", f"{_D} | r1 = null",
                        f"{_D} | r1 = null"),
    ("remove_", "get"): (f"{_D} | {_NK1}", f"{_D} | {_NK1}",
                         f"{_D} | {_NK1}"),
    # -- containsKey vs put/remove -----------------------------------------
    ("containsKey", "put"): (f"{_D} | {_HK1}", f"{_D} | r1", f"{_D} | r1"),
    ("containsKey", "put_"): (f"{_D} | {_HK1}", f"{_D} | r1", f"{_D} | r1"),
    ("containsKey", "remove"): (f"{_D} | {_NK1}", f"{_D} | ~r1",
                                f"{_D} | ~r1"),
    ("containsKey", "remove_"): (f"{_D} | {_NK1}", f"{_D} | ~r1",
                                 f"{_D} | ~r1"),
    ("put", "containsKey"): (f"{_D} | {_HK1}", f"{_D} | r1 ~= null",
                             f"{_D} | r1 ~= null"),
    ("put_", "containsKey"): (f"{_D} | {_HK1}", f"{_D} | {_HK1}",
                              f"{_D} | {_HK1}"),
    ("remove", "containsKey"): (f"{_D} | {_NK1}", f"{_D} | r1 = null",
                                f"{_D} | r1 = null"),
    ("remove_", "containsKey"): (f"{_D} | {_NK1}", f"{_D} | {_NK1}",
                                 f"{_D} | {_NK1}"),
    # -- put vs put (row 2 of Table 5.4, return-value variants) ------------
    ("put", "put"): (_AGREE, _AGREE_R1, _AGREE_R1),
    ("put", "put_"): (_AGREE, _AGREE_R1, _AGREE_R1),
    ("put_", "put"): (_AGREE, _AGREE, _AGREE),
    ("put_", "put_"): (f"{_D} | v1 = v2", f"{_D} | v1 = v2",
                       f"{_D} | v1 = v2"),
    # -- put vs remove: never commute on the same key ----------------------
    ("put", "remove"): (_D, _D, _D),
    ("put", "remove_"): (_D, _D, _D),
    ("put_", "remove"): (_D, _D, _D),
    ("put_", "remove_"): (_D, _D, _D),
    ("remove", "put"): (_D, _D, _D),
    ("remove", "put_"): (_D, _D, _D),
    ("remove_", "put"): (_D, _D, _D),
    ("remove_", "put_"): (_D, _D, _D),
    # -- remove vs remove ---------------------------------------------------
    ("remove", "remove"): (f"{_D} | {_NK1}", f"{_D} | r1 = null",
                           f"{_D} | r1 = null"),
    ("remove", "remove_"): (f"{_D} | {_NK1}", f"{_D} | r1 = null",
                            f"{_D} | r1 = null"),
    ("remove_", "remove"): (f"{_D} | {_NK1}", f"{_D} | {_NK1}",
                            f"{_D} | {_NK1}"),
    ("remove_", "remove_"): (None, None, None),
    # -- updates vs size -----------------------------------------------------
    ("put", "size"): (_HK1, "r1 ~= null", "r1 ~= null"),
    ("put_", "size"): (_HK1, _HK1, _HK1),
    ("size", "put"): (_HK2, _HK2, "r2 ~= null"),
    ("size", "put_"): (_HK2, _HK2, _HK2),
    ("remove", "size"): (_NK1, "r1 = null", "r1 = null"),
    ("remove_", "size"): (_NK1, _NK1, _NK1),
    ("size", "remove"): (_NK2, _NK2, "r2 = null"),
    ("size", "remove_"): (_NK2, _NK2, _NK2),
}


def build(spec=None) -> list[CommutativityCondition]:
    """All 147 map-interface conditions."""
    spec = spec or get_spec("Map")
    conditions = []
    for (m1, m2), texts in TABLE.items():
        for kind, text in zip((Kind.BEFORE, Kind.BETWEEN, Kind.AFTER), texts):
            abstract = text if text is not None else "true"
            conditions.append(CommutativityCondition(
                family="Map", m1=m1, m2=m2, kind=kind, text=abstract,
                dynamic_text=abstract, spec=spec))
    return conditions
