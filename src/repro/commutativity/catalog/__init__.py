"""The catalog of all 765 commutativity conditions (Chapter 5).

Per the paper's counting: (3 * 2^2) + 2 * (3 * 6^2) + 2 * (3 * 7^2)
+ (3 * 9^2) = 12 + 216 + 294 + 243 = 765 conditions across the six data
structures; ListSet/HashSet share the Set family conditions and
AssociationList/HashTable share the Map family conditions.

Name resolution and caching now live in the pluggable registry
(:mod:`repro.api`); the functions here are back-compat wrappers over
:data:`repro.api.DEFAULT_REGISTRY`.  The per-family ``build`` functions
in the submodules are registered there as condition builders.
"""

from __future__ import annotations

from ..conditions import CommutativityCondition, Kind
from . import accumulator, arraylist_conditions, map_conditions, set_conditions


def _default_registry():
    from ...api import DEFAULT_REGISTRY
    return DEFAULT_REGISTRY


def conditions_for(name: str) -> list[CommutativityCondition]:
    """Conditions for a data structure or family name."""
    return _default_registry().conditions(name)


def condition(name: str, m1: str, m2: str,
              kind: Kind) -> CommutativityCondition:
    """Look up a single condition."""
    return _default_registry().condition(name, m1, m2, kind)


def all_conditions() -> dict[str, list[CommutativityCondition]]:
    """Family name -> conditions."""
    registry = _default_registry()
    return {family: registry.conditions(family)
            for family in registry.families()
            if registry.has_conditions(family)}


def total_condition_count() -> int:
    """The paper's headline count: 765 across the six data structures."""
    return _default_registry().total_condition_count()
