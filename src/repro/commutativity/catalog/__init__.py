"""The catalog of all 765 commutativity conditions (Chapter 5).

Per the paper's counting: (3 * 2^2) + 2 * (3 * 6^2) + 2 * (3 * 7^2)
+ (3 * 9^2) = 12 + 216 + 294 + 243 = 765 conditions across the six data
structures; ListSet/HashSet share the Set family conditions and
AssociationList/HashTable share the Map family conditions.
"""

from __future__ import annotations

from functools import lru_cache

from ...specs.registry import SPEC_FAMILIES
from ..conditions import CommutativityCondition, Kind
from . import accumulator, arraylist_conditions, map_conditions, set_conditions

_BUILDERS = {
    "Accumulator": accumulator.build,
    "Set": set_conditions.build,
    "Map": map_conditions.build,
    "ArrayList": arraylist_conditions.build,
}


@lru_cache(maxsize=None)
def _family_conditions(family: str) -> tuple[CommutativityCondition, ...]:
    return tuple(_BUILDERS[family]())


def conditions_for(name: str) -> list[CommutativityCondition]:
    """Conditions for a data structure or family name."""
    family = SPEC_FAMILIES.get(name, name)
    return list(_family_conditions(family))


def condition(name: str, m1: str, m2: str,
              kind: Kind) -> CommutativityCondition:
    """Look up a single condition."""
    for cond in conditions_for(name):
        if cond.m1 == m1 and cond.m2 == m2 and cond.kind is kind:
            return cond
    raise KeyError(f"no {kind} condition for {name} {m1};{m2}")


def all_conditions() -> dict[str, list[CommutativityCondition]]:
    """Family name -> conditions."""
    return {family: list(_family_conditions(family)) for family in _BUILDERS}


def total_condition_count() -> int:
    """The paper's headline count: 765 across the six data structures."""
    per_family = {f: len(c) for f, c in all_conditions().items()}
    return (per_family["Accumulator"]
            + 2 * per_family["Set"]
            + 2 * per_family["Map"]
            + per_family["ArrayList"])
