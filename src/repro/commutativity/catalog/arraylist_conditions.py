"""Commutativity conditions for the ArrayList (Tables 5.6 and 5.7).

Nine operations (``add_at``, ``get``, ``indexOf``, ``lastIndexOf``,
``remove_at``, ``remove_at_``, ``set``, ``set_``, ``size``) give 81
ordered pairs and 3 * 9^2 = 243 conditions.

The thesis presents the ArrayList between/after conditions as expanded
case analyses over index positions (Tables 5.6/5.7).  We state each
condition in an equivalent *compact* form built from the sequence term
constructors (``ins``/``del_``/``upd``) and observers (``at``/``idx``/
``lidx``/``len``) applied to the initial state — e.g. the condition for
``add_at(i1,v1); indexOf(v2)`` is literally "inserting v1 at i1 does not
change the index of v2":

    idx(ins(s1, i1, v1), v2) = idx(s1, v2)

Because every condition here is machine-verified to be both sound and
complete, it is logically equivalent to the paper's expanded form of the
same kind (sound + complete conditions of one kind are unique up to
equivalence; Section 4.1.2).  The expanded paper-style rendering of the
Table 5.6/5.7 rows is reproduced by :mod:`repro.reporting.tables`.

Structure of the formulas: a conjunction of (1) index-bound guards that
capture *precondition preservation* in the reverse order (e.g. appending
at ``i1 = size`` cannot commute with a ``remove_at``, because re-running
``add_at`` after the removal would be out of bounds), (2) return-value
agreement clauses, and (3) a final-state agreement clause.  Between/after
variants replace initial-state queries by return values exactly as the
paper does: ``r1`` is ``at(s1, i1)`` for ``get``/``remove_at``/``set``
and ``idx(s1, v1)`` for ``indexOf``, etc.
"""

from __future__ import annotations

from ...specs import get_spec
from ..conditions import CommutativityCondition, Kind

# -- shared clause fragments -------------------------------------------------

_FALSE = "false"

# State-agreement clauses (final abstract states equal in both orders).
_ST_AA_AA = "ins(ins(s1, i1, v1), i2, v2) = ins(ins(s1, i2, v2), i1, v1)"
_ST_AA_RA = "del_(ins(s1, i1, v1), i2) = ins(del_(s1, i2), i1, v1)"
_ST_AA_SE = "upd(ins(s1, i1, v1), i2, v2) = ins(upd(s1, i2, v2), i1, v1)"
_ST_RA_AA = "ins(del_(s1, i1), i2, v2) = del_(ins(s1, i2, v2), i1)"
_ST_RA_RA = "del_(del_(s1, i1), i2) = del_(del_(s1, i2), i1)"
_ST_RA_SE = "upd(del_(s1, i1), i2, v2) = del_(upd(s1, i2, v2), i1)"
_ST_SE_AA = "ins(upd(s1, i1, v1), i2, v2) = upd(ins(s1, i2, v2), i1, v1)"
_ST_SE_RA = "del_(upd(s1, i1, v1), i2) = upd(del_(s1, i2), i1, v1)"
_ST_SE_SE = "upd(upd(s1, i1, v1), i2, v2) = upd(upd(s1, i2, v2), i1, v1)"

# Index-bound guards for reverse-order preconditions.
_G_I1_LT_LEN = "i1 < len(s1)"
_G_I2_LT_LEN = "i2 < len(s1)"
_G_I1_LT_LEN1 = "i1 < len(s1) - 1"


def _conj(*clauses: str) -> str:
    return " & ".join(clauses)


#: (m1, m2) -> (before, between, after); None means ``true``.
TABLE: dict[tuple[str, str], tuple[str | None, str | None, str | None]] = {}


def _entry(m1: str, m2: str, before: str | None,
           between: str | None = ..., after: str | None = ...) -> None:
    if between is ...:
        between = before
    if after is ...:
        after = between
    TABLE[(m1, m2)] = (before, between, after)


# -- reads commute with reads -------------------------------------------------
_READS = ("get", "indexOf", "lastIndexOf", "size")
for _m1 in _READS:
    for _m2 in _READS:
        _entry(_m1, _m2, None)

# -- add_at as first operation -------------------------------------------------
_entry("add_at", "add_at",
       _conj("i2 <= len(s1)", _ST_AA_AA))
_entry("add_at", "get",
       _conj(_G_I2_LT_LEN, "at(ins(s1, i1, v1), i2) = at(s1, i2)"),
       ...,
       _conj(_G_I2_LT_LEN, "r2 = at(s1, i2)"))
_entry("add_at", "indexOf",
       "idx(ins(s1, i1, v1), v2) = idx(s1, v2)",
       ...,
       "r2 = idx(s1, v2)")
_entry("add_at", "lastIndexOf",
       "lidx(ins(s1, i1, v1), v2) = lidx(s1, v2)",
       ...,
       "r2 = lidx(s1, v2)")
_entry("add_at", "remove_at",
       _conj(_G_I1_LT_LEN, _G_I2_LT_LEN,
             "at(ins(s1, i1, v1), i2) = at(s1, i2)", _ST_AA_RA),
       ...,
       _conj(_G_I1_LT_LEN, _G_I2_LT_LEN, "r2 = at(s1, i2)", _ST_AA_RA))
_entry("add_at", "remove_at_",
       _conj(_G_I1_LT_LEN, _G_I2_LT_LEN, _ST_AA_RA))
_entry("add_at", "set",
       _conj(_G_I2_LT_LEN,
             "at(ins(s1, i1, v1), i2) = at(s1, i2)", _ST_AA_SE),
       ...,
       _conj(_G_I2_LT_LEN, "r2 = at(s1, i2)", _ST_AA_SE))
_entry("add_at", "set_",
       _conj(_G_I2_LT_LEN, _ST_AA_SE))
_entry("add_at", "size", _FALSE)

# -- get as first operation -----------------------------------------------------
_entry("get", "add_at",
       "at(ins(s1, i2, v2), i1) = at(s1, i1)",
       "at(ins(s1, i2, v2), i1) = r1")
_entry("get", "remove_at",
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = at(s1, i1)"),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1"))
_entry("get", "remove_at_",
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = at(s1, i1)"),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1"))
_entry("get", "set",
       "at(upd(s1, i2, v2), i1) = at(s1, i1)",
       "at(upd(s1, i2, v2), i1) = r1")
_entry("get", "set_",
       "at(upd(s1, i2, v2), i1) = at(s1, i1)",
       "at(upd(s1, i2, v2), i1) = r1")

# -- indexOf / lastIndexOf as first operation -----------------------------------
for _name, _fn in (("indexOf", "idx"), ("lastIndexOf", "lidx")):
    _entry(_name, "add_at",
           f"{_fn}(ins(s1, i2, v2), v1) = {_fn}(s1, v1)",
           f"{_fn}(ins(s1, i2, v2), v1) = r1")
    for _m2 in ("remove_at", "remove_at_"):
        _entry(_name, _m2,
               f"{_fn}(del_(s1, i2), v1) = {_fn}(s1, v1)",
               f"{_fn}(del_(s1, i2), v1) = r1")
    for _m2 in ("set", "set_"):
        _entry(_name, _m2,
               f"{_fn}(upd(s1, i2, v2), v1) = {_fn}(s1, v1)",
               f"{_fn}(upd(s1, i2, v2), v1) = r1")

# -- remove_at as first operation -------------------------------------------------
_entry("remove_at", "add_at",
       _conj("at(ins(s1, i2, v2), i1) = at(s1, i1)", _ST_RA_AA),
       _conj("at(ins(s1, i2, v2), i1) = r1", _ST_RA_AA))
_entry("remove_at_", "add_at", _ST_RA_AA)
_entry("remove_at", "get",
       "at(del_(s1, i1), i2) = at(s1, i2)",
       ...,
       "r2 = at(s1, i2)")
_entry("remove_at_", "get",
       "at(del_(s1, i1), i2) = at(s1, i2)",
       ...,
       "r2 = at(s1, i2)")
for _m1 in ("remove_at", "remove_at_"):
    _entry(_m1, "indexOf",
           "idx(del_(s1, i1), v2) = idx(s1, v2)",
           ...,
           "r2 = idx(s1, v2)")
    _entry(_m1, "lastIndexOf",
           "lidx(del_(s1, i1), v2) = lidx(s1, v2)",
           ...,
           "r2 = lidx(s1, v2)")
_entry("remove_at", "remove_at",
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = at(s1, i1)",
             "at(del_(s1, i1), i2) = at(s1, i2)", _ST_RA_RA),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1",
             "at(del_(s1, i1), i2) = at(s1, i2)", _ST_RA_RA),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1",
             "r2 = at(s1, i2)", _ST_RA_RA))
_entry("remove_at", "remove_at_",
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = at(s1, i1)", _ST_RA_RA),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1", _ST_RA_RA))
_entry("remove_at_", "remove_at",
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i1), i2) = at(s1, i2)", _ST_RA_RA),
       ...,
       _conj(_G_I1_LT_LEN1, "r2 = at(s1, i2)", _ST_RA_RA))
_entry("remove_at_", "remove_at_",
       _conj(_G_I1_LT_LEN1, _ST_RA_RA))
_entry("remove_at", "set",
       _conj("at(upd(s1, i2, v2), i1) = at(s1, i1)",
             "at(del_(s1, i1), i2) = at(s1, i2)", _ST_RA_SE),
       _conj("at(upd(s1, i2, v2), i1) = r1",
             "at(del_(s1, i1), i2) = at(s1, i2)", _ST_RA_SE),
       _conj("at(upd(s1, i2, v2), i1) = r1", "r2 = at(s1, i2)", _ST_RA_SE))
_entry("remove_at", "set_",
       _conj("at(upd(s1, i2, v2), i1) = at(s1, i1)", _ST_RA_SE),
       _conj("at(upd(s1, i2, v2), i1) = r1", _ST_RA_SE))
_entry("remove_at_", "set",
       _conj("at(del_(s1, i1), i2) = at(s1, i2)", _ST_RA_SE),
       ...,
       _conj("r2 = at(s1, i2)", _ST_RA_SE))
_entry("remove_at_", "set_", _ST_RA_SE)
_entry("remove_at", "size", _FALSE)
_entry("remove_at_", "size", _FALSE)

# -- set as first operation --------------------------------------------------------
_entry("set", "add_at",
       _conj("at(ins(s1, i2, v2), i1) = at(s1, i1)", _ST_SE_AA),
       _conj("at(ins(s1, i2, v2), i1) = r1", _ST_SE_AA))
_entry("set_", "add_at", _ST_SE_AA)
_entry("set", "get",
       "at(upd(s1, i1, v1), i2) = at(s1, i2)",
       ...,
       "r2 = at(s1, i2)")
_entry("set_", "get",
       "at(upd(s1, i1, v1), i2) = at(s1, i2)",
       ...,
       "r2 = at(s1, i2)")
for _m1 in ("set", "set_"):
    _entry(_m1, "indexOf",
           "idx(upd(s1, i1, v1), v2) = idx(s1, v2)",
           ...,
           "r2 = idx(s1, v2)")
    _entry(_m1, "lastIndexOf",
           "lidx(upd(s1, i1, v1), v2) = lidx(s1, v2)",
           ...,
           "r2 = lidx(s1, v2)")
_entry("set", "remove_at",
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = at(s1, i1)",
             "at(upd(s1, i1, v1), i2) = at(s1, i2)", _ST_SE_RA),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1",
             "at(upd(s1, i1, v1), i2) = at(s1, i2)", _ST_SE_RA),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1",
             "r2 = at(s1, i2)", _ST_SE_RA))
_entry("set", "remove_at_",
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = at(s1, i1)", _ST_SE_RA),
       _conj(_G_I1_LT_LEN1, "at(del_(s1, i2), i1) = r1", _ST_SE_RA))
_entry("set_", "remove_at",
       _conj(_G_I1_LT_LEN1, "at(upd(s1, i1, v1), i2) = at(s1, i2)",
             _ST_SE_RA),
       ...,
       _conj(_G_I1_LT_LEN1, "r2 = at(s1, i2)", _ST_SE_RA))
_entry("set_", "remove_at_",
       _conj(_G_I1_LT_LEN1, _ST_SE_RA))
_entry("set", "set",
       _conj("at(upd(s1, i2, v2), i1) = at(s1, i1)",
             "at(upd(s1, i1, v1), i2) = at(s1, i2)", _ST_SE_SE),
       _conj("at(upd(s1, i2, v2), i1) = r1",
             "at(upd(s1, i1, v1), i2) = at(s1, i2)", _ST_SE_SE),
       _conj("at(upd(s1, i2, v2), i1) = r1", "r2 = at(s1, i2)", _ST_SE_SE))
_entry("set", "set_",
       _conj("at(upd(s1, i2, v2), i1) = at(s1, i1)", _ST_SE_SE),
       _conj("at(upd(s1, i2, v2), i1) = r1", _ST_SE_SE))
_entry("set_", "set",
       _conj("at(upd(s1, i1, v1), i2) = at(s1, i2)", _ST_SE_SE),
       ...,
       _conj("r2 = at(s1, i2)", _ST_SE_SE))
_entry("set_", "set_", _ST_SE_SE)
_entry("set", "size", None)
_entry("set_", "size", None)

# -- size as first operation ---------------------------------------------------------
_entry("size", "add_at", _FALSE)
_entry("size", "remove_at", _FALSE)
_entry("size", "remove_at_", _FALSE)
_entry("size", "set", None)
_entry("size", "set_", None)


def build(spec=None) -> list[CommutativityCondition]:
    """All 243 ArrayList conditions."""
    spec = spec or get_spec("ArrayList")
    conditions = []
    for (m1, m2), texts in TABLE.items():
        for kind, text in zip((Kind.BEFORE, Kind.BETWEEN, Kind.AFTER), texts):
            abstract = text if text is not None else "true"
            conditions.append(CommutativityCondition(
                family="ArrayList", m1=m1, m2=m2, kind=kind, text=abstract,
                dynamic_text=abstract, spec=spec))
    return conditions
