"""Commutativity conditions for the Accumulator (Table 5.1).

Two operations (``increase``, ``read``) give four ordered pairs and
3 * 2^2 = 12 conditions.  ``increase`` operations always commute (integer
addition is commutative); an ``increase(v)`` commutes with a ``read``
exactly when ``v = 0``.
"""

from __future__ import annotations

from ...specs import get_spec
from ..conditions import CommutativityCondition, Kind

#: (m1, m2) -> (before, between, after); None means ``true``.
TABLE: dict[tuple[str, str], tuple[str | None, str | None, str | None]] = {
    ("increase", "increase"): (None, None, None),
    ("increase", "read"): ("v1 = 0", "v1 = 0", "v1 = 0"),
    ("read", "increase"): ("v2 = 0", "v2 = 0", "v2 = 0"),
    ("read", "read"): (None, None, None),
}


def build(spec=None) -> list[CommutativityCondition]:
    """All 12 Accumulator conditions."""
    spec = spec or get_spec("Accumulator")
    conditions = []
    for (m1, m2), texts in TABLE.items():
        for kind, text in zip((Kind.BEFORE, Kind.BETWEEN, Kind.AFTER), texts):
            conditions.append(CommutativityCondition(
                family="Accumulator", m1=m1, m2=m2, kind=kind,
                text=text if text is not None else "true", spec=spec))
    return conditions
