"""Throughput harness: sweep (structure x policy x workload x
conflict-mode) through the speculative executor.

This is the execution-side sibling of the PR-2 verification bench: it
generates deterministic workloads, runs them under every conflict-
detection policy, and collects commits / aborts / conflict-rate /
ops-per-second — the numbers behind the paper's thesis that verified
semantic commutativity admits more concurrency than read/write conflict
detection, which in turn beats a global mutex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..runtime.executor import ExecutionReport, SpeculativeExecutor
from ..runtime.gatekeeper import POLICIES
from .generator import WorkloadGenerator
from .spec import WorkloadSpec


@dataclass
class WorkloadRun:
    """One (structure, workload, policy, conflict-mode) execution."""

    structure: str
    workload: WorkloadSpec
    policy: str
    conflict_mode: str
    workers: int
    report: ExecutionReport

    @property
    def commits(self) -> int:
        return self.report.commits

    @property
    def aborts(self) -> int:
        return self.report.aborts

    @property
    def operations(self) -> int:
        return self.report.operations

    @property
    def conflicts(self) -> int:
        return self.report.conflicts

    @property
    def conflict_checks(self) -> int:
        return self.report.conflict_checks

    @property
    def conflict_rate(self) -> float:
        return self.report.conflict_rate

    @property
    def ops_per_second(self) -> float:
        return self.report.ops_per_second

    @property
    def wall_seconds(self) -> float:
        return self.report.wall_seconds

    @property
    def serializable(self) -> bool:
        return self.report.serializable

    def summary(self) -> str:
        return (f"{self.structure} [{self.workload.label}] "
                f"{self.report.summary()} "
                f"({self.ops_per_second:.0f} ops/s, "
                f"workers={self.workers})")


#: The default sweep: three contention shapes over a shared key space
#: (every transaction draws from the same keys, so nothing is disjoint).
DEFAULT_WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(name="mixed-uniform", profile="mixed",
                 distribution="uniform", transactions=6,
                 ops_per_transaction=5, key_space=8, value_space=3,
                 seed=42),
    WorkloadSpec(name="write-heavy-hotkey", profile="write-heavy",
                 distribution="hot-key", transactions=6,
                 ops_per_transaction=5, key_space=8, value_space=3,
                 seed=43),
    WorkloadSpec(name="read-heavy-zipfian", profile="read-heavy",
                 distribution="zipfian", transactions=6,
                 ops_per_transaction=5, key_space=8, value_space=3,
                 seed=44),
)

#: The workloads the ``bench --suite runtime`` CLI sweeps (kept separate
#: from DEFAULT_WORKLOADS so baseline-gated numbers stay stable even if
#: the interactive defaults evolve).
BENCH_WORKLOADS: tuple[WorkloadSpec, ...] = DEFAULT_WORKLOADS


class ThroughputHarness:
    """Runs workload sweeps and collects :class:`WorkloadRun` results."""

    def __init__(self, registry=None, workers: int | None = None,
                 batch: int = 1, max_rounds: int = 200_000) -> None:
        from ..api import resolve_registry
        self.registry = resolve_registry(registry)
        #: None defers to each workload's ``workers`` hint; an explicit
        #: value (1 included) overrides every hint, so a serial harness
        #: can never be escalated to threaded execution by a spec.
        self.workers = workers
        self.batch = batch
        self.max_rounds = max_rounds
        self.generator = WorkloadGenerator(self.registry)

    def runnable_structures(self) -> list[str]:
        """Registered structures the executor can drive: they need a
        concrete implementation and a condition catalog."""
        return [name for name in self.registry.names()
                if self.registry.has_implementation(name)
                and self.registry.has_conditions(name)]

    def run_one(self, structure: str, workload: WorkloadSpec,
                policy: str = "commutativity",
                conflict_mode: str = "abort",
                workers: int | None = None) -> WorkloadRun:
        """Generate ``workload`` for ``structure`` and execute it.

        Worker-count precedence: the ``workers`` argument, then the
        harness's configured ``workers``, then the workload's hint.
        """
        if workers is None:
            workers = self.workers if self.workers is not None \
                else workload.workers
        programs = self.generator.generate(structure, workload)
        executor = SpeculativeExecutor(
            structure, policy=policy, seed=workload.seed,
            max_rounds=self.max_rounds, conflict_mode=conflict_mode,
            registry=self.registry, workers=workers, batch=self.batch)
        return WorkloadRun(structure=structure, workload=workload,
                           policy=policy, conflict_mode=conflict_mode,
                           workers=workers,
                           report=executor.run(programs))

    def sweep(self, structures: Sequence[str] | None = None,
              workloads: Iterable[WorkloadSpec] | None = None,
              policies: Sequence[str] = POLICIES,
              conflict_modes: Sequence[str] = ("abort",),
              workers: int | None = None) -> list[WorkloadRun]:
        """The full cross product, in deterministic order."""
        structures = list(structures) if structures is not None \
            else self.runnable_structures()
        workloads = tuple(workloads) if workloads is not None \
            else DEFAULT_WORKLOADS
        return [self.run_one(structure, workload, policy=policy,
                             conflict_mode=mode, workers=workers)
                for structure in structures
                for workload in workloads
                for policy in policies
                for mode in conflict_modes]
