"""Throughput harness: sweep (structure x policy x workload x
conflict-mode) through the speculative executor.

This is the execution-side sibling of the PR-2 verification bench: it
generates deterministic workloads, runs them under every conflict-
detection policy, and collects commits / aborts / conflict-rate /
ops-per-second — the numbers behind the paper's thesis that verified
semantic commutativity admits more concurrency than read/write conflict
detection, which in turn beats a global mutex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..runtime.executor import ExecutionReport, SpeculativeExecutor
from ..runtime.gatekeeper import POLICIES
from .generator import WorkloadGenerator
from .spec import WorkloadSpec


@dataclass
class WorkloadRun:
    """One (structure, workload, policy, conflict-mode) execution."""

    structure: str
    workload: WorkloadSpec
    policy: str
    conflict_mode: str
    workers: int
    report: ExecutionReport
    shards: int = 1
    adaptive: str | None = None
    stable: bool = False
    compiled: bool = False
    #: Which admission backend decided the run ("local" or "service").
    backend: str = "local"

    @property
    def commits(self) -> int:
        return self.report.commits

    @property
    def aborts(self) -> int:
        return self.report.aborts

    @property
    def operations(self) -> int:
        return self.report.operations

    @property
    def conflicts(self) -> int:
        return self.report.conflicts

    @property
    def conflict_checks(self) -> int:
        return self.report.conflict_checks

    @property
    def drift_checks(self) -> int:
        return self.report.drift_checks

    @property
    def stable_hits(self) -> int:
        return self.report.stable_hits

    @property
    def proved_hits(self) -> int:
        return self.report.proved_hits

    @property
    def synthesized_hits(self) -> int:
        return self.report.synthesized_hits

    @property
    def drift_fallbacks(self) -> int:
        return self.report.drift_fallbacks

    @property
    def fallback_admits(self) -> int:
        return self.report.fallback_admits

    @property
    def compiled_hits(self) -> int:
        return self.report.compiled_hits

    @property
    def eval_errors(self) -> int:
        return self.report.eval_errors

    @property
    def conflict_rate(self) -> float:
        return self.report.conflict_rate

    @property
    def ops_per_second(self) -> float:
        return self.report.ops_per_second

    @property
    def committed_ops_per_second(self) -> float:
        return self.report.committed_ops_per_second

    @property
    def wall_seconds(self) -> float:
        return self.report.wall_seconds

    @property
    def serializable(self) -> bool:
        return self.report.serializable

    @property
    def shard_stats(self) -> list[dict[str, int]]:
        return self.report.shard_stats

    def summary(self) -> str:
        return (f"{self.structure} [{self.workload.label}] "
                f"{self.report.summary()} "
                f"({self.ops_per_second:.0f} ops/s, "
                f"workers={self.workers}, shards={self.shards})")


#: The default sweep: three contention shapes over a shared key space
#: (every transaction draws from the same keys, so nothing is disjoint).
DEFAULT_WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(name="mixed-uniform", profile="mixed",
                 distribution="uniform", transactions=6,
                 ops_per_transaction=5, key_space=8, value_space=3,
                 seed=42),
    WorkloadSpec(name="write-heavy-hotkey", profile="write-heavy",
                 distribution="hot-key", transactions=6,
                 ops_per_transaction=5, key_space=8, value_space=3,
                 seed=43),
    WorkloadSpec(name="read-heavy-zipfian", profile="read-heavy",
                 distribution="zipfian", transactions=6,
                 ops_per_transaction=5, key_space=8, value_space=3,
                 seed=44),
    WorkloadSpec(name="shifting-hotspot", profile="write-heavy",
                 distribution="shifting-hot-key", transactions=6,
                 ops_per_transaction=5, key_space=8, value_space=3,
                 seed=45),
)

#: The workloads the ``bench --suite runtime`` CLI sweeps (kept separate
#: from DEFAULT_WORKLOADS so baseline-gated numbers stay stable even if
#: the interactive defaults evolve).
BENCH_WORKLOADS: tuple[WorkloadSpec, ...] = DEFAULT_WORKLOADS

#: Larger workloads for the flat-vs-sharded scaling comparison: enough
#: transactions and operations that the outstanding log has real depth
#: (the flat gatekeeper's full-log scans are what sharding removes), a
#: key space wide enough that most operation pairs are key-disjoint,
#: and a YCSB-style load phase so ArrayList indices spread over bands.
#: Still non-disjoint: every transaction draws from one shared key
#: space over one shared (preloaded) structure.
SCALING_WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(name="scale-mixed-uniform", profile="mixed",
                 distribution="uniform", transactions=16,
                 ops_per_transaction=12, key_space=128, value_space=4,
                 preload=32, seed=52),
    WorkloadSpec(name="scale-write-uniform", profile="write-heavy",
                 distribution="uniform", transactions=16,
                 ops_per_transaction=12, key_space=128, value_space=4,
                 preload=32, seed=53),
    WorkloadSpec(name="scale-read-uniform", profile="read-heavy",
                 distribution="uniform", transactions=16,
                 ops_per_transaction=12, key_space=128, value_space=4,
                 preload=32, seed=54),
    # YCSB workload C: pure reads over the preloaded structure.  No
    # mutation means no drift, so the outstanding log grows to full
    # depth and admission cost is pure pair-scan volume — the quantity
    # sharding cuts.
    WorkloadSpec(name="scale-readonly-zipfian", profile="read-only",
                 distribution="zipfian", transactions=16,
                 ops_per_transaction=18, key_space=128, value_space=4,
                 preload=64, seed=55),
)


class ThroughputHarness:
    """Runs workload sweeps and collects :class:`WorkloadRun` results."""

    def __init__(self, registry=None, workers: int | None = None,
                 batch: int = 1, max_rounds: int = 200_000,
                 shards: int | None = None,
                 adaptive: str | None = None,
                 stable: bool = False,
                 compiled: bool = False,
                 backend=None) -> None:
        from ..api import resolve_registry
        self.registry = resolve_registry(registry)
        #: None defers to each workload's ``workers`` hint; an explicit
        #: value (1 included) overrides every hint, so a serial harness
        #: can never be escalated to threaded execution by a spec.
        self.workers = workers
        self.batch = batch
        self.max_rounds = max_rounds
        #: Same precedence scheme as ``workers``: None defers to each
        #: workload's ``shards`` hint.
        self.shards = shards
        self.adaptive = adaptive
        #: Arm every run's drift guard with the registry's compiled
        #: drift-stable conditions.
        self.stable = stable
        #: Lower admission conditions into closures at arm time
        #: (:mod:`repro.compiled`); same decisions, faster checks.
        self.compiled = compiled
        #: Where admission decisions come from: None is the in-process
        #: path; a :class:`~repro.service.client.ServiceBackend` routes
        #: every decision to a remote admission server.
        self.backend = backend
        self.generator = WorkloadGenerator(self.registry)

    def runnable_structures(self) -> list[str]:
        """Registered structures the executor can drive: they need a
        concrete implementation and a condition catalog."""
        return [name for name in self.registry.names()
                if self.registry.has_implementation(name)
                and self.registry.has_conditions(name)]

    def run_one(self, structure: str, workload: WorkloadSpec,
                policy: str = "commutativity",
                conflict_mode: str = "abort",
                workers: int | None = None,
                shards: int | None = None,
                adaptive: str | None = None,
                stable: bool | None = None,
                compiled: bool | None = None,
                backend=None) -> WorkloadRun:
        """Generate ``workload`` for ``structure`` and execute it.

        Worker/shard-count precedence: the argument, then the harness's
        configured value, then the workload's hint.  The generated
        programs depend on none of them.
        """
        if workers is None:
            workers = self.workers if self.workers is not None \
                else workload.workers
        if shards is None:
            shards = self.shards if self.shards is not None \
                else workload.shards
        if adaptive is None:
            adaptive = self.adaptive
        if stable is None:
            stable = self.stable
        if compiled is None:
            compiled = self.compiled
        if backend is None:
            backend = self.backend
        programs = self.generator.generate(structure, workload)
        setup = self.generator.generate_setup(structure, workload)
        executor = SpeculativeExecutor(
            structure, policy=policy, seed=workload.seed,
            max_rounds=self.max_rounds, conflict_mode=conflict_mode,
            registry=self.registry, workers=workers, batch=self.batch,
            shards=shards, adaptive=adaptive, stable=stable,
            compiled=compiled, backend=backend)
        report = executor.run(programs, setup=setup)
        return WorkloadRun(structure=structure, workload=workload,
                           policy=policy, conflict_mode=conflict_mode,
                           workers=workers, shards=shards,
                           adaptive=adaptive, stable=stable,
                           compiled=compiled, backend=report.backend,
                           report=report)

    def sweep(self, structures: Sequence[str] | None = None,
              workloads: Iterable[WorkloadSpec] | None = None,
              policies: Sequence[str] = POLICIES,
              conflict_modes: Sequence[str] = ("abort",),
              workers: int | None = None,
              shard_counts: Sequence[int] | None = None,
              adaptive: str | None = None) -> list[WorkloadRun]:
        """The full cross product, in deterministic order.

        ``shard_counts`` adds a sharding dimension to the sweep (e.g.
        ``(1, 4)`` runs every cell with the flat log and with four
        shards); ``None`` keeps the harness/workload default.
        """
        structures = list(structures) if structures is not None \
            else self.runnable_structures()
        workloads = tuple(workloads) if workloads is not None \
            else DEFAULT_WORKLOADS
        shard_axis: tuple[int | None, ...] = (
            tuple(shard_counts) if shard_counts is not None else (None,))
        return [self.run_one(structure, workload, policy=policy,
                             conflict_mode=mode, workers=workers,
                             shards=shards, adaptive=adaptive)
                for structure in structures
                for workload in workloads
                for policy in policies
                for mode in conflict_modes
                for shards in shard_axis]
