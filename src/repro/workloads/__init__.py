"""Parameterized workloads and the execution-throughput harness.

The verification side of this reproduction got its sharded engine in
``repro.engine``; this package gives the *runtime* side the same
treatment: seeded, deterministic workload generation (op-mix profiles x
key distributions) for every registered structure, and a harness that
sweeps (structure x policy x workload x conflict-mode) through the
speculative executor to measure how much concurrency each conflict-
detection policy admits.
"""

from .spec import (DISTRIBUTIONS, HotKeyDistribution, KeyDistribution,
                   OpMix, PROFILES, ShiftingHotKeyDistribution,
                   UniformDistribution, WorkloadSpec,
                   ZipfianDistribution, resolve_workload)
from .generator import (Program, WorkloadError, WorkloadGenerator,
                        generate_workload)
from .harness import (BENCH_WORKLOADS, DEFAULT_WORKLOADS,
                      SCALING_WORKLOADS, ThroughputHarness, WorkloadRun)

__all__ = [
    "DISTRIBUTIONS", "HotKeyDistribution", "KeyDistribution", "OpMix",
    "PROFILES", "ShiftingHotKeyDistribution", "UniformDistribution",
    "WorkloadSpec", "ZipfianDistribution", "resolve_workload",
    "Program", "WorkloadError", "WorkloadGenerator", "generate_workload",
    "BENCH_WORKLOADS", "DEFAULT_WORKLOADS", "SCALING_WORKLOADS",
    "ThroughputHarness", "WorkloadRun",
]
