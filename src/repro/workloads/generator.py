"""Parameterized transaction-program generation.

The paper's introduction motivates speculative execution with irregular
parallel workloads over shared sets, maps, and lists.  This module turns
a :class:`~repro.workloads.spec.WorkloadSpec` into concrete transaction
programs for any registry-registered structure:

- the four built-in specification families (Set, Map, ArrayList,
  Accumulator) get tailored op palettes that honour the profile's
  read/write mix and the key distribution;
- every other (custom) family falls back to a generic generator that
  enumerates candidate argument tuples from the spec itself, keeping
  only operations whose preconditions hold in every in-scope state.

Generation is deterministic: a given ``(structure, WorkloadSpec)`` pair
always produces byte-identical programs, independent of process, hash
randomization, and the ``workers`` execution hint.  Seeds are strings
(``"seed:structure"``) because :class:`random.Random` hashes string
seeds with SHA-512 — stable across interpreters — while tuple seeds fall
back to randomized ``hash()``.
"""

from __future__ import annotations

import itertools
import random
from typing import Any

from ..eval.enumeration import Scope
from .spec import KeyDistribution, OpMix, WorkloadSpec

#: One transaction program: a list of (operation name, argument tuple).
Program = list[tuple[str, tuple[Any, ...]]]


class WorkloadError(ValueError):
    """A structure offers no operations the generator can safely emit."""


def _weighted(rng: random.Random, choices: list[tuple[int, str]]) -> str:
    """Pick a choice with probability proportional to its weight."""
    total = sum(weight for weight, _ in choices)
    r = rng.random() * total
    for weight, item in choices:
        r -= weight
        if r < 0:
            return item
    return choices[-1][1]


class WorkloadGenerator:
    """Emits transaction programs for a registry's structures."""

    def __init__(self, registry=None) -> None:
        from ..api import resolve_registry
        self.registry = resolve_registry(registry)

    def generate(self, ds_name: str,
                 workload: WorkloadSpec) -> list[Program]:
        """All transaction programs of ``workload`` for ``ds_name``."""
        spec = self.registry.spec(ds_name)
        family = self.registry.family_of(ds_name)
        rng = random.Random(f"{workload.seed}:{ds_name}")
        mix = workload.mix
        dist = workload.make_distribution()
        keys = [f"k{i}" for i in range(workload.key_space)]
        values = [f"v{i}" for i in range(workload.value_space)]
        builders = {
            "Set": self._set_program,
            "Map": self._map_program,
            "ArrayList": self._arraylist_program,
            "Accumulator": self._accumulator_program,
        }
        builder = builders.get(family)
        if builder is None:
            palette = self._generic_palette(spec)

            def builder(spec, rng, mix, dist, keys, values, n,
                        preload=0):
                return self._generic_program(palette, rng, mix, dist, n)
        return [builder(spec, rng, mix, dist, keys, values,
                        workload.ops_per_transaction,
                        preload=workload.preload)
                for _ in range(workload.transactions)]

    def generate_setup(self, ds_name: str,
                       workload: WorkloadSpec) -> Program:
        """The YCSB-style load-phase program of ``workload``: applied to
        the shared structure once, outside any transaction, before the
        generated transactions run.  Deterministic, like generation."""
        if workload.preload <= 0:
            return []
        family = self.registry.family_of(ds_name)
        rng = random.Random(f"setup:{workload.seed}:{ds_name}")
        keys = [f"k{i}" for i in range(workload.key_space)]
        values = [f"v{i}" for i in range(workload.value_space)]
        if family == "Set":
            return [("add_", (keys[i],))
                    for i in range(min(workload.preload, len(keys)))]
        if family == "Map":
            return [("put_", (keys[i], values[rng.randrange(len(values))]))
                    for i in range(min(workload.preload, len(keys)))]
        if family == "ArrayList":
            return [("add_at", (i, values[rng.randrange(len(values))]))
                    for i in range(workload.preload)]
        if family == "Accumulator":
            return [("increase", (workload.preload,))]
        # Custom structures: no family knowledge, no safe generic setup.
        return []

    # -- built-in family palettes ---------------------------------------------

    def _is_read(self, rng: random.Random, mix: OpMix) -> bool:
        return rng.random() < mix.read_fraction

    def _set_program(self, spec, rng, mix, dist: KeyDistribution,
                     keys, values, n, preload=0) -> Program:
        ops: Program = []
        for _ in range(n):
            is_read = self._is_read(rng, mix)
            key = keys[dist.pick(rng, len(keys))]
            if is_read:
                kind = _weighted(rng, [(3, "contains"), (1, "size")])
            else:
                kind = _weighted(rng, [(2, "add"), (1, "add_"),
                                       (2, "remove"), (1, "remove_")])
            ops.append((kind, () if kind == "size" else (key,)))
        return ops

    def _map_program(self, spec, rng, mix, dist: KeyDistribution,
                     keys, values, n, preload=0) -> Program:
        ops: Program = []
        for _ in range(n):
            is_read = self._is_read(rng, mix)
            key = keys[dist.pick(rng, len(keys))]
            if is_read:
                kind = _weighted(rng, [(2, "get"), (1, "containsKey"),
                                       (1, "size")])
                ops.append((kind, () if kind == "size" else (key,)))
            else:
                kind = _weighted(rng, [(2, "put"), (1, "put_"),
                                       (1, "remove"), (1, "remove_")])
                if kind in ("put", "put_"):
                    value = values[rng.randrange(len(values))]
                    ops.append((kind, (key, value)))
                else:
                    ops.append((kind, (key,)))
        return ops

    def _accumulator_program(self, spec, rng, mix, dist: KeyDistribution,
                             keys, values, n, preload=0) -> Program:
        ops: Program = []
        for _ in range(n):
            if self._is_read(rng, mix):
                ops.append(("read", ()))
            else:
                # The distribution shapes the increment magnitude.
                ops.append(("increase", (1 + dist.pick(rng, len(keys)),)))
        return ops

    def _arraylist_program(self, spec, rng, mix, dist: KeyDistribution,
                           keys, values, n, preload=0) -> Program:
        """Index-safe ArrayList programs via balance tracking.

        ``balance`` is this transaction's net insertions over its program
        prefix; the generator only emits indices below ``preload +
        balance`` (at most equal for ``add_at``).  Because every
        generated program keeps its prefix balances non-negative, every
        other transaction's in-flight or committed contribution to the
        shared list's size is >= 0 at all times (aborts roll whole
        contributions back), so the global size is always >= the
        preloaded ``preload`` elements plus this transaction's balance,
        and every emitted index satisfies its operation's precondition
        under *any* interleaving.  (Removals stay gated on ``balance >
        0`` — a transaction never shrinks the list below its own net
        contribution — but their *indices* may fall in the preloaded
        range.)
        """
        ops: Program = []
        balance = 0
        for _ in range(n):
            is_read = self._is_read(rng, mix)
            if is_read:
                choices = [(2, "indexOf"), (1, "lastIndexOf"), (1, "size")]
                if preload + balance > 0:
                    # Over a preloaded list positional reads dominate
                    # (the YCSB-C analogue for lists); without a load
                    # phase the historical weights are kept exactly.
                    choices.append((12 if preload else 2, "get"))
            else:
                choices = [(3, "add_at")]
                if preload + balance > 0:
                    choices += [(2, "set"), (1, "set_")]
                if balance > 0:
                    choices += [(1, "remove_at"), (1, "remove_at_")]
            kind = _weighted(rng, choices)
            if kind in ("indexOf", "lastIndexOf"):
                ops.append((kind, (values[dist.pick(rng, len(values))],)))
            elif kind == "size":
                ops.append((kind, ()))
            elif kind == "get":
                ops.append((kind, (rng.randrange(preload + balance),)))
            elif kind == "add_at":
                index = rng.randrange(preload + balance + 1)
                ops.append((kind, (index,
                                   values[dist.pick(rng, len(values))])))
                balance += 1
            elif kind in ("set", "set_"):
                ops.append((kind, (rng.randrange(preload + balance),
                                   values[dist.pick(rng, len(values))])))
            else:  # remove_at / remove_at_
                ops.append((kind, (rng.randrange(preload + balance),)))
                balance -= 1
        return ops

    # -- generic fallback for custom structures --------------------------------

    #: Enumeration caps keeping palette construction cheap for rich specs.
    _GENERIC_MAX_STATES = 64
    _GENERIC_MAX_ARGS = 128

    def _generic_palette(self, spec) -> tuple[list, list]:
        """Safe (operation, candidate-args) palettes from the spec alone.

        An argument tuple is *safe* when the operation's precondition
        holds in every in-scope abstract state: such operations can be
        issued at any point of any interleaving, which is all the
        generator can guarantee without family knowledge.
        """
        scope = Scope()
        states = list(itertools.islice(spec.states(scope),
                                       self._GENERIC_MAX_STATES))
        reads: list[tuple[str, list[tuple]]] = []
        writes: list[tuple[str, list[tuple]]] = []
        for op in spec.operations.values():
            candidates = [
                args for args in itertools.islice(
                    spec.arguments(op, scope), self._GENERIC_MAX_ARGS)
                if all(spec.precondition_holds(op, state, args)
                       for state in states)]
            if not candidates:
                continue
            (writes if op.mutator else reads).append((op.name, candidates))
        if not reads and not writes:
            raise WorkloadError(
                f"no operation of {spec.name} is safely invocable in "
                f"every in-scope state; register the structure under a "
                f"built-in family or generate programs by hand")
        return reads, writes

    def _generic_program(self, palette, rng, mix,
                         dist: KeyDistribution, n) -> Program:
        reads, writes = palette
        ops: Program = []
        for _ in range(n):
            pool = reads if (reads and (not writes
                                        or self._is_read(rng, mix))) \
                else writes
            op_name, candidates = pool[rng.randrange(len(pool))]
            ops.append((op_name,
                        candidates[dist.pick(rng, len(candidates))]))
        return ops


def generate_workload(ds_name: str, workload: WorkloadSpec,
                      registry=None) -> list[Program]:
    """Convenience wrapper over :class:`WorkloadGenerator`."""
    return WorkloadGenerator(registry).generate(ds_name, workload)
