"""Workload parameterization: op-mix profiles and key distributions.

A :class:`WorkloadSpec` is a small, hashable description of a synthetic
transaction mix — how many transactions, how long, how read-heavy, and
how skewed the key traffic is.  Generation is fully determined by the
spec (see :mod:`repro.workloads.generator`): the same spec always yields
byte-identical programs, regardless of how many executor workers later
run them.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, replace
from typing import Callable


@dataclass(frozen=True)
class OpMix:
    """An op-mix profile: the fraction of observer (read) operations."""

    name: str
    read_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}")


#: Built-in op-mix profiles (YCSB-style shorthand names; ``read-only``
#: is YCSB workload C — meaningful over a preloaded structure).
PROFILES: dict[str, OpMix] = {
    "read-only": OpMix("read-only", 1.0),
    "read-heavy": OpMix("read-heavy", 0.875),
    "mixed": OpMix("mixed", 0.5),
    "write-heavy": OpMix("write-heavy", 0.125),
    "write-only": OpMix("write-only", 0.0),
}


class KeyDistribution:
    """How transaction operations pick keys from a finite universe.

    ``pick(rng, n)`` returns an index in ``[0, n)``; subclasses only
    shape the index distribution, so the same machinery serves set
    elements, map keys, ArrayList values, and (for custom structures)
    whole candidate argument tuples.
    """

    name = "abstract"

    def pick(self, rng: random.Random, n: int) -> int:
        raise NotImplementedError


class UniformDistribution(KeyDistribution):
    """Every key equally likely."""

    name = "uniform"

    def pick(self, rng: random.Random, n: int) -> int:
        return rng.randrange(n)


class ZipfianDistribution(KeyDistribution):
    """Rank-based Zipfian skew: key ``i`` has weight ``1/(i+1)**skew``."""

    name = "zipfian"

    def __init__(self, skew: float = 1.2) -> None:
        if skew <= 0:
            raise ValueError(f"zipfian skew must be positive, got {skew}")
        self.skew = skew
        self._cdf_cache: dict[int, list[float]] = {}

    def _cdf(self, n: int) -> list[float]:
        cdf = self._cdf_cache.get(n)
        if cdf is None:
            weights = [1.0 / (rank + 1) ** self.skew for rank in range(n)]
            total = sum(weights)
            acc, cdf = 0.0, []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            self._cdf_cache[n] = cdf
        return cdf

    def pick(self, rng: random.Random, n: int) -> int:
        return min(bisect.bisect(self._cdf(n), rng.random()), n - 1)


class HotKeyDistribution(KeyDistribution):
    """A hot set absorbs most traffic: with probability ``hot_fraction``
    pick uniformly among the first ``hot_keys`` keys, else uniformly
    among the rest."""

    name = "hot-key"

    def __init__(self, hot_fraction: float = 0.8, hot_keys: int = 1) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if hot_keys < 1:
            raise ValueError(f"hot_keys must be >= 1, got {hot_keys}")
        self.hot_fraction = hot_fraction
        self.hot_keys = hot_keys

    def pick(self, rng: random.Random, n: int) -> int:
        hot = min(self.hot_keys, n)
        # Draw order is fixed so generation stays deterministic.
        r = rng.random()
        if hot >= n or r < self.hot_fraction:
            return rng.randrange(hot)
        return hot + rng.randrange(n - hot)


class ShiftingHotKeyDistribution(KeyDistribution):
    """A time-varying hotspot: the hot key rotates through the key
    space every ``period`` picks.

    Early transactions hammer one key, later transactions a different
    one — so per-region contention *changes over the run*, which is
    exactly the shape a contention-adaptive policy (per-shard sliding
    windows) has to track.  The distribution is stateful but
    deterministic: picks are made in generation order, so the same spec
    always produces the same key sequence.
    """

    name = "shifting-hot-key"

    def __init__(self, hot_fraction: float = 0.8, period: int = 24) -> None:
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.hot_fraction = hot_fraction
        self.period = period
        self._tick = 0

    def pick(self, rng: random.Random, n: int) -> int:
        hot = (self._tick // self.period) % n
        self._tick += 1
        # Draw order is fixed so generation stays deterministic.
        if n == 1 or rng.random() < self.hot_fraction:
            return hot
        other = rng.randrange(n - 1)
        return other if other < hot else other + 1


#: Built-in key-distribution factories.
DISTRIBUTIONS: dict[str, Callable[[], KeyDistribution]] = {
    "uniform": UniformDistribution,
    "zipfian": ZipfianDistribution,
    "hot-key": HotKeyDistribution,
    "shifting-hot-key": ShiftingHotKeyDistribution,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A parameterized, seeded, deterministic workload description.

    ``workers`` and ``shards`` are execution hints for the throughput
    harness only: generation MUST NOT depend on them (the property the
    workload tests pin down), so the same spec drives serial,
    multi-worker, and sharded runs over byte-identical programs.
    """

    profile: str = "mixed"
    distribution: str = "uniform"
    transactions: int = 8
    ops_per_transaction: int = 6
    key_space: int = 16
    value_space: int = 4
    #: YCSB-style load phase: the structure is prepopulated with this
    #: many elements (family-specific: Set/Map keys, ArrayList slots,
    #: Accumulator increments) before speculation starts.  The setup
    #: program is applied outside any transaction and is never logged.
    preload: int = 0
    seed: int = 0
    workers: int = 1
    shards: int = 1
    name: str | None = None

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}; choose "
                             f"from {', '.join(sorted(PROFILES))}")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; choose "
                f"from {', '.join(sorted(DISTRIBUTIONS))}")
        for field_name in ("transactions", "ops_per_transaction",
                           "key_space", "value_space"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.preload < 0:
            raise ValueError("preload must be >= 0")

    @property
    def mix(self) -> OpMix:
        return PROFILES[self.profile]

    def make_distribution(self) -> KeyDistribution:
        return DISTRIBUTIONS[self.distribution]()

    @property
    def label(self) -> str:
        """A short human-readable identity for tables and JSON keys."""
        if self.name is not None:
            return self.name
        return (f"{self.profile}/{self.distribution}"
                f" {self.transactions}x{self.ops_per_transaction}"
                f" k{self.key_space} s{self.seed}")

    def describe(self) -> dict:
        """A JSON-serializable description (benchmark payloads)."""
        return {
            "profile": self.profile,
            "distribution": self.distribution,
            "transactions": self.transactions,
            "ops_per_transaction": self.ops_per_transaction,
            "key_space": self.key_space,
            "value_space": self.value_space,
            "preload": self.preload,
            "seed": self.seed,
        }

    def with_(self, **changes) -> "WorkloadSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def resolve_workload(workload=None, **spec_fields) -> WorkloadSpec:
    """Coerce ``None`` (defaults), a profile name, or a spec into a
    :class:`WorkloadSpec`; keyword fields override."""
    if workload is None:
        return WorkloadSpec(**spec_fields)
    if isinstance(workload, str):
        return WorkloadSpec(profile=workload, **spec_fields)
    if isinstance(workload, WorkloadSpec):
        return workload.with_(**spec_fields) if spec_fields else workload
    raise TypeError(f"cannot build a WorkloadSpec from {workload!r}")
