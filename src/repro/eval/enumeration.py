"""Finite-scope enumeration of abstract states and operation arguments.

The bounded verification backend checks Properties 1-3 of Chapter 4 by
exhaustively executing the generated testing methods over every abstract
state and argument tuple within a :class:`Scope`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator

from .values import FMap, Obj


@dataclass(frozen=True)
class Scope:
    """Bounds of an exhaustive check.

    ``objects`` are candidate set elements / map keys / sequence elements;
    ``values`` are candidate map values; ``ints`` are candidate integer
    arguments (Accumulator increments); ``max_seq_len`` bounds ArrayList
    states.
    """

    objects: tuple[str, ...] = ("a", "b", "c")
    values: tuple[str, ...] = ("x", "y")
    ints: tuple[int, ...] = (-2, -1, 0, 1, 2)
    max_seq_len: int = 3

    def smaller(self) -> "Scope":
        """A reduced scope for quick smoke checks."""
        return Scope(objects=self.objects[:2], values=self.values[:2],
                     ints=(-1, 0, 1), max_seq_len=2)


def paper_scope(max_seq_len: int | None = None) -> Scope:
    """The canonical scope behind the paper's headline numbers.

    Three objects, two map values, integer increments in ``[-2, 2]``,
    and ArrayList states up to length three — the configuration every
    table/benchmark (Tables 5.1-5.10) and the ``bench`` CLI use.
    ``max_seq_len`` optionally overrides the ArrayList bound (the one
    knob the evaluation varies).
    """
    scope = Scope(objects=("a", "b", "c"), values=("x", "y"),
                  ints=(-2, -1, 0, 1, 2), max_seq_len=3)
    if max_seq_len is not None:
        scope = Scope(objects=scope.objects, values=scope.values,
                      ints=scope.ints, max_seq_len=max_seq_len)
    return scope


def subsets(objects: tuple[str, ...]) -> Iterator[frozenset[str]]:
    """All subsets of ``objects``."""
    for r in range(len(objects) + 1):
        for combo in itertools.combinations(objects, r):
            yield frozenset(combo)


def partial_maps(keys: tuple[str, ...],
                 values: tuple[str, ...]) -> Iterator[FMap]:
    """All partial maps from ``keys`` to ``values``."""
    choices: list[tuple[Any, ...]] = [(None,) + values for _ in keys]
    for assignment in itertools.product(*choices):
        yield FMap({k: v for k, v in zip(keys, assignment) if v is not None})


def sequences(objects: tuple[str, ...],
              max_len: int) -> Iterator[tuple[Obj, ...]]:
    """All sequences over ``objects`` up to length ``max_len``."""
    for length in range(max_len + 1):
        yield from itertools.product(objects, repeat=length)


def argument_tuples(*domains: tuple[Any, ...]) -> Iterator[tuple[Any, ...]]:
    """Cartesian product of argument domains."""
    yield from itertools.product(*domains)
