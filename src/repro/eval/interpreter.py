"""Big-step interpreter for the specification logic over finite values.

This is the semantic ground truth of the repository: the bounded
verification backend evaluates commutativity conditions and the generated
testing methods with this interpreter, and both the compiled-formula
backend and the symbolic engine are tested against it.

Quantifiers range over finite domains.  For the paper's conditions every
quantifier is index- or element-bounded, so the interpreter derives a
sufficient domain from the environment (all integers that index into any
sequence in scope, all objects present in any collection or variable),
and callers can override the domains explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..logic import terms as t
from ..logic.sorts import Sort
from .values import (FMap, Record, seq_index_of, seq_insert,
                     seq_last_index_of, seq_remove, seq_update)

#: Dispatch for semantic observer calls: (state_value, method, args) -> value.
Observer = Callable[[Any, str, tuple[Any, ...]], Any]


class EvalError(ValueError):
    """Raised when a term cannot be evaluated in the given environment."""


@dataclass
class EvalContext:
    """Evaluation parameters: observer dispatch and quantifier domains."""

    observe: Observer | None = None
    int_domain: tuple[int, ...] | None = None
    obj_domain: tuple[Any, ...] | None = None

    def domains_for(self, env: Mapping[str, Any]) \
            -> tuple[tuple[int, ...], tuple[Any, ...]]:
        """Quantifier domains: explicit if set, else derived from ``env``."""
        if self.int_domain is not None and self.obj_domain is not None:
            return self.int_domain, self.obj_domain
        ints: set[int] = {-1, 0}
        objs: set[Any] = {None}

        def visit(value: Any) -> None:
            if isinstance(value, bool):
                return
            if isinstance(value, int):
                ints.add(value)
                ints.add(value + 1)
                ints.add(value - 1)
            elif isinstance(value, str) or value is None:
                objs.add(value)
            elif isinstance(value, frozenset):
                objs.update(value)
            elif isinstance(value, tuple):
                ints.update(range(len(value) + 2))
                objs.update(value)
            elif isinstance(value, FMap):
                for k, v in value.items():
                    objs.add(k)
                    objs.add(v)
                ints.add(len(value))
            elif isinstance(value, Record):
                for v in value.values():
                    visit(v)

        for value in env.values():
            visit(value)
        return (tuple(sorted(ints)),
                tuple(sorted(objs, key=lambda o: (o is None, o or ""))))


def evaluate(term: t.Term, env: Mapping[str, Any],
             ctx: EvalContext | None = None) -> Any:
    """Evaluate ``term`` in environment ``env``."""
    if ctx is None:
        ctx = EvalContext()
    return _eval(term, dict(env), ctx)


def _eval(term: t.Term, env: dict[str, Any], ctx: EvalContext) -> Any:
    if isinstance(term, t.Var):
        try:
            return env[term.name]
        except KeyError:
            raise EvalError(f"unbound variable {term.name!r}") from None
    if isinstance(term, t.BoolConst):
        return term.value
    if isinstance(term, t.IntConst):
        return term.value
    if isinstance(term, t.ObjConst):
        return term.name
    if isinstance(term, t.Null):
        return None
    if isinstance(term, t.Not):
        return not _eval(term.arg, env, ctx)
    if isinstance(term, t.And):
        return all(_eval(a, env, ctx) for a in term.args)
    if isinstance(term, t.Or):
        return any(_eval(a, env, ctx) for a in term.args)
    if isinstance(term, t.Implies):
        return (not _eval(term.lhs, env, ctx)) or _eval(term.rhs, env, ctx)
    if isinstance(term, t.Iff):
        return _eval(term.lhs, env, ctx) == _eval(term.rhs, env, ctx)
    if isinstance(term, t.Ite):
        branch = term.then if _eval(term.cond, env, ctx) else term.els
        return _eval(branch, env, ctx)
    if isinstance(term, t.Eq):
        return _eval(term.lhs, env, ctx) == _eval(term.rhs, env, ctx)
    if isinstance(term, t.Lt):
        return _eval(term.lhs, env, ctx) < _eval(term.rhs, env, ctx)
    if isinstance(term, t.Le):
        return _eval(term.lhs, env, ctx) <= _eval(term.rhs, env, ctx)
    if isinstance(term, t.Add):
        return sum(_eval(a, env, ctx) for a in term.args)
    if isinstance(term, t.Sub):
        return _eval(term.lhs, env, ctx) - _eval(term.rhs, env, ctx)
    if isinstance(term, t.Neg):
        return -_eval(term.arg, env, ctx)
    if isinstance(term, t.Member):
        return _eval(term.elem, env, ctx) in _eval(term.set_, env, ctx)
    if isinstance(term, t.Union):
        return _eval(term.lhs, env, ctx) | _eval(term.rhs, env, ctx)
    if isinstance(term, t.Inter):
        return _eval(term.lhs, env, ctx) & _eval(term.rhs, env, ctx)
    if isinstance(term, t.Diff):
        return _eval(term.lhs, env, ctx) - _eval(term.rhs, env, ctx)
    if isinstance(term, t.FiniteSet):
        return frozenset(_eval(e, env, ctx) for e in term.elems)
    if isinstance(term, t.Card):
        return len(_eval(term.set_, env, ctx))
    if isinstance(term, t.SubsetEq):
        return _eval(term.lhs, env, ctx) <= _eval(term.rhs, env, ctx)
    if isinstance(term, t.MapGet):
        return _eval(term.map_, env, ctx).lookup(_eval(term.key, env, ctx))
    if isinstance(term, t.MapHasKey):
        return _eval(term.key, env, ctx) in _eval(term.map_, env, ctx)
    if isinstance(term, t.MapPut):
        return _eval(term.map_, env, ctx).put(
            _eval(term.key, env, ctx), _eval(term.value, env, ctx))
    if isinstance(term, t.MapRemoveKey):
        return _eval(term.map_, env, ctx).remove(_eval(term.key, env, ctx))
    if isinstance(term, t.MapSize):
        return len(_eval(term.map_, env, ctx))
    if isinstance(term, t.MapKeys):
        return frozenset(_eval(term.map_, env, ctx))
    if isinstance(term, t.SeqLen):
        return len(_eval(term.seq, env, ctx))
    if isinstance(term, t.SeqGet):
        seq = _eval(term.seq, env, ctx)
        index = _eval(term.index, env, ctx)
        if not 0 <= index < len(seq):
            raise EvalError(f"sequence index {index} out of range "
                            f"0..{len(seq) - 1}")
        return seq[index]
    if isinstance(term, t.SeqInsert):
        seq = _eval(term.seq, env, ctx)
        index = _eval(term.index, env, ctx)
        if not 0 <= index <= len(seq):
            raise EvalError(f"insert index {index} out of range 0..{len(seq)}")
        return seq_insert(seq, index, _eval(term.value, env, ctx))
    if isinstance(term, t.SeqRemove):
        seq = _eval(term.seq, env, ctx)
        index = _eval(term.index, env, ctx)
        if not 0 <= index < len(seq):
            raise EvalError(f"remove index {index} out of range")
        return seq_remove(seq, index)
    if isinstance(term, t.SeqUpdate):
        seq = _eval(term.seq, env, ctx)
        index = _eval(term.index, env, ctx)
        if not 0 <= index < len(seq):
            raise EvalError(f"update index {index} out of range")
        return seq_update(seq, index, _eval(term.value, env, ctx))
    if isinstance(term, t.SeqIndexOf):
        return seq_index_of(_eval(term.seq, env, ctx),
                            _eval(term.value, env, ctx))
    if isinstance(term, t.SeqLastIndexOf):
        return seq_last_index_of(_eval(term.seq, env, ctx),
                                 _eval(term.value, env, ctx))
    if isinstance(term, t.SeqContains):
        return _eval(term.value, env, ctx) in _eval(term.seq, env, ctx)
    if isinstance(term, t.Field):
        state = _eval(term.state, env, ctx)
        return state[term.name]
    if isinstance(term, t.ObserverCall):
        if ctx.observe is None:
            raise EvalError(
                f"observer {term.method!r} used without a dispatcher")
        state = _eval(term.state, env, ctx)
        args = tuple(_eval(a, env, ctx) for a in term.args)
        return ctx.observe(state, term.method, args)
    if isinstance(term, (t.Forall, t.Exists)):
        ints, objs = ctx.domains_for(env)
        domain = ints if term.var.var_sort is Sort.INT else objs
        saved = env.get(term.var.name, _MISSING)
        result = isinstance(term, t.Forall)
        try:
            for value in domain:
                env[term.var.name] = value
                truth = _eval(term.body, env, ctx)
                if isinstance(term, t.Forall) and not truth:
                    result = False
                    break
                if isinstance(term, t.Exists) and truth:
                    result = True
                    break
        finally:
            if saved is _MISSING:
                env.pop(term.var.name, None)
            else:
                env[term.var.name] = saved
        return result
    raise EvalError(f"cannot evaluate {type(term).__name__}")


_MISSING = object()
