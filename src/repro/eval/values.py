"""Finite semantic values for the specification logic.

Object references are interned strings (``"a"``, ``"b"``, ...) with
``None`` playing the role of ``null``.  Sets are ``frozenset``; sequences
are tuples; partial maps are :class:`FMap`, a small immutable hashable
dictionary; abstract data-structure states are :class:`Record`.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

Obj = str | None


class FMap(Mapping[str, Any]):
    """An immutable, hashable partial map used as the map abstract state."""

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Mapping[str, Any] | None = None) -> None:
        data = dict(items) if items else {}
        object.__setattr__(self, "_items", data)
        object.__setattr__(
            self, "_hash", hash(frozenset(data.items())))

    # Mapping interface -----------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self._items[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FMap):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(self._items.items()))
        return "FMap({" + inner + "})"

    # Functional updates ----------------------------------------------------

    def put(self, key: str, value: Any) -> "FMap":
        data = dict(self._items)
        data[key] = value
        return FMap(data)

    def remove(self, key: str) -> "FMap":
        if key not in self._items:
            return self
        data = dict(self._items)
        del data[key]
        return FMap(data)

    def lookup(self, key: str) -> Any:
        """Value for ``key``, or ``None`` (null) when unmapped."""
        return self._items.get(key)


class Record(Mapping[str, Any]):
    """An immutable record of named fields — an abstract data-structure
    state such as ``{contents: {a, b}, size: 2}``."""

    __slots__ = ("_fields", "_hash")

    def __init__(self, **fields: Any) -> None:
        object.__setattr__(self, "_fields", dict(fields))
        object.__setattr__(
            self, "_hash", hash(tuple(sorted(
                (k, v) for k, v in fields.items()))))

    def __getitem__(self, name: str) -> Any:
        return self._fields[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Record):
            return self._fields == other._fields
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._fields.items()))
        return f"Record({inner})"

    def replace(self, **updates: Any) -> "Record":
        data = dict(self._fields)
        data.update(updates)
        return Record(**data)


def seq_index_of(seq: tuple[Obj, ...], value: Obj) -> int:
    """Index of the first occurrence of ``value`` in ``seq``, or -1."""
    for i, item in enumerate(seq):
        if item == value:
            return i
    return -1


def seq_last_index_of(seq: tuple[Obj, ...], value: Obj) -> int:
    """Index of the last occurrence of ``value`` in ``seq``, or -1."""
    for i in range(len(seq) - 1, -1, -1):
        if seq[i] == value:
            return i
    return -1


def seq_insert(seq: tuple[Obj, ...], index: int, value: Obj) -> tuple[Obj, ...]:
    """The sequence with ``value`` inserted at ``index`` (0 <= i <= len)."""
    return seq[:index] + (value,) + seq[index:]


def seq_remove(seq: tuple[Obj, ...], index: int) -> tuple[Obj, ...]:
    """The sequence with the element at ``index`` removed."""
    return seq[:index] + seq[index + 1:]


def seq_update(seq: tuple[Obj, ...], index: int, value: Obj) -> tuple[Obj, ...]:
    """The sequence with the element at ``index`` replaced by ``value``."""
    return seq[:index] + (value,) + seq[index + 1:]
