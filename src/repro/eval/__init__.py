"""Finite semantics: values, interpreter, and scope enumeration."""

from .values import (FMap, Record, Obj, seq_index_of, seq_last_index_of,
                     seq_insert, seq_remove, seq_update)
from .interpreter import EvalContext, EvalError, evaluate
from .enumeration import (Scope, paper_scope, subsets, partial_maps,
                          sequences, argument_tuples)

__all__ = [
    "FMap", "Record", "Obj",
    "seq_index_of", "seq_last_index_of", "seq_insert", "seq_remove",
    "seq_update",
    "EvalContext", "EvalError", "evaluate",
    "Scope", "paper_scope", "subsets", "partial_maps", "sequences",
    "argument_tuples",
]
