"""Lowering: candidate condition formulas into prover obligations.

A drift-stability obligation for a candidate ``C`` over the between
vocabulary of a pair ``m1;m2`` is the quantifier-free implication

    pre1(w, args1)  &  pre2(mid(w), args2)  &  pre2(d, args2)
    &  C(args, r1(w), s2 := d)
        =>  m1(args1); m2(args2) commute at w

universally quantified over every root state ``w``, argument tuple, and
drifted current state ``d``.  This is the unbounded counterpart of the
bounded criterion in :func:`repro.stability.quantified.check_pair`: for
``s1``-free candidates the per-observation root bucketing collapses to
the root itself (``C`` depends on the root only through the observed
``r1``, and every root is consistent with its own observation), so the
obligation above is *exactly* the certificate the runtime needs —
whenever the gatekeeper's drift guard admits on a cleanly-true ``C``,
the reordering commutes wherever the serialization lands it.  Roots
where the second operation's precondition fails after the first are
outside the case universe, mirroring the catalog verification and the
bounded sweep.

The lowering classifies each candidate as **supported** (dischargeable
over the symbolic theory stack) or **unsupported**, with a reason.
Unsupported candidates keep their bounded verdict — reported, never
armed.  The support criteria are driven by what the symbolic state
representation (:mod:`repro.solver.symbolic`) can decide *point-wise*:

- candidates reading the verified snapshot ``s1`` are not liftable (a
  drifted admission has no access to the snapshot's state, only to the
  arguments and observed result that survive the journey);
- for the symbolically-unbounded families (Set/Map/Accumulator),
  integer observations of state (sizes, index-of) are opaque symbols
  ``N + delta`` — comparing them against constants is not point-wise
  decidable, so candidates reading them are unsupported rather than
  silently mis-evaluated;
- quantified candidates are outside the quantifier-free fragment (the
  candidate generators never produce them; this is a guard).

Soundness of the *clean-admission contract*: the prover counts an
admission only when ``C`` evaluates cleanly true.  At run time the
gatekeeper's ``_stable_holds`` treats an evaluation error as ``False``
(conservative fallback), so a proved candidate's runtime admissions are
a subset of the admissions the proof covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..commutativity.conditions import (CommutativityCondition, Kind,
                                        allowed_variables,
                                        condition_symbols,
                                        formula_references_state)
from ..logic import ParseError, free_vars, parse_formula
from ..logic import terms as t
from ..logic.sorts import Sort
from ..specs.interface import DataStructureSpec

#: Families whose base state the prover represents symbolically —
#: obligations over them are discharged for *unbounded* states.  The
#: ArrayList is handled by canonical-partition enumeration instead,
#: exact for unbounded element universes at bounded lengths (the
#: regime annotation on its results says so).
SYMBOLIC_FAMILIES = ("Set", "Map", "Accumulator")

#: Regime annotations attached to proof results.
REGIME_UNBOUNDED = "symbolic/unbounded"
REGIME_BOUNDED_LENGTH = "symbolic/bounded-length"


@dataclass(frozen=True)
class Obligation:
    """One candidate's lowered proof obligation."""

    text: str
    term: t.Term = field(repr=False)
    #: The candidate reads the drifted current state ``s2`` — its
    #: admissions are quantified over every drifted binding; state-free
    #: candidates are checked once per case, at the verified no-drift
    #: binding, exactly as in the bounded sweep.
    wants_s2: bool = False
    state_free: bool = False
    supported: bool = True
    reason: str | None = None


def family_regime(family: str) -> str:
    return (REGIME_UNBOUNDED if family in SYMBOLIC_FAMILIES
            else REGIME_BOUNDED_LENGTH)


def _int_state_read(term: t.Term) -> str | None:
    """A description of the first integer-valued state observation in
    ``term``, or ``None`` — these are opaque ``N + delta`` symbols for
    the symbolic families, not point-wise decidable."""
    for node in term.walk():
        if isinstance(node, (t.Card, t.MapSize, t.SeqLen,
                             t.SeqIndexOf, t.SeqLastIndexOf)):
            return type(node).__name__.lower()
        if isinstance(node, t.ObserverCall) \
                and node.result_sort is Sort.INT:
            return f"observer {node.method}"
        if isinstance(node, t.Field) and node.field_sort is Sort.INT:
            return f"field {node.name}"
    return None


def _classify(spec: DataStructureSpec, cond: CommutativityCondition,
              text: str, term: t.Term,
              variables: frozenset[str]) -> Obligation:
    wants_s2 = "s2" in variables
    state_free = not formula_references_state(term)
    supported, reason = True, None
    if spec.name not in SYMBOLIC_FAMILIES + ("ArrayList",):
        supported = False
        reason = f"no symbolic tooling for family {spec.name!r}"
    elif "s1" in variables:
        supported = False
        reason = "reads the verified snapshot s1"
    elif any(isinstance(node, (t.Forall, t.Exists))
             for node in term.walk()):
        supported = False
        reason = "quantified candidate"
    elif spec.name in SYMBOLIC_FAMILIES:
        int_read = _int_state_read(term)
        if int_read is not None:
            supported = False
            reason = (f"integer state observation ({int_read}) is "
                      f"symbolic for this family")
        elif "r1" in variables and cond.op1.result_sort is Sort.INT:
            supported = False
            reason = "integer result r1 is symbolic for this family"
    return Obligation(text=text, term=term, wants_s2=wants_s2,
                      state_free=state_free, supported=supported,
                      reason=reason)


def lower_pair(spec: DataStructureSpec, cond: CommutativityCondition,
               texts: list[str]) -> list[Obligation]:
    """Lower one pair's candidate texts into obligations.

    Parsing and vocabulary checks mirror the bounded sweep's candidate
    intake (malformed machine-generated candidates are dropped, not
    errors), so the prover judges exactly the candidate set the bounded
    verdict reports on.
    """
    table = condition_symbols(spec, cond.op1, cond.op2)
    allowed = allowed_variables(Kind.BETWEEN, cond.op1, cond.op2)
    obligations: list[Obligation] = []
    seen: set[str] = set()
    for text in texts:
        if text in seen:
            continue
        seen.add(text)
        try:
            term = parse_formula(text, table)
        except ParseError:
            continue
        variables = frozenset(free_vars(term))
        if variables - allowed:
            continue
        obligations.append(_classify(spec, cond, text, term, variables))
    return obligations
