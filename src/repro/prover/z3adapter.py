"""Optional external-solver adapter: discharge emitted SMT-LIB scripts
through z3 when (and only when) it is installed.

The container image does not ship z3; this adapter degrades gracefully
— :func:`z3_available` probes for either the ``z3`` binary or the
``z3-solver`` Python package, and :func:`check_smtlib` returns a status
string (``"sat"``/``"unsat"``/``"unknown"``/``"unavailable"``/
``"error: ..."``) and **never raises**.  Tests that need a live solver
are skip-marked on :func:`z3_available`; the CI matrix has one optional
leg that installs ``z3-solver`` to exercise them.
"""

from __future__ import annotations

import importlib.util
import shutil
import subprocess
from functools import lru_cache

#: Seconds before an external check is abandoned as "unknown".
DEFAULT_TIMEOUT = 15.0


@lru_cache(maxsize=1)
def _z3_binary() -> str | None:
    return shutil.which("z3")


@lru_cache(maxsize=1)
def _z3_module_present() -> bool:
    try:
        return importlib.util.find_spec("z3") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic paths
        return False


def z3_available() -> bool:
    """Whether any z3 entry point (binary or Python package) exists."""
    return _z3_binary() is not None or _z3_module_present()


def _check_via_binary(script: str, timeout: float) -> str:
    proc = subprocess.run(
        [_z3_binary(), "-in", f"-T:{max(1, int(timeout))}"],
        input=script, capture_output=True, text=True, timeout=timeout + 5)
    for line in (proc.stdout or "").splitlines():
        line = line.strip()
        if line in ("sat", "unsat", "unknown", "timeout"):
            return "unknown" if line == "timeout" else line
    detail = (proc.stderr or proc.stdout or "no answer").strip()
    return f"error: {detail.splitlines()[0] if detail else 'no answer'}"


def _check_via_module(script: str, timeout: float) -> str:
    import z3
    solver = z3.Solver()
    solver.set("timeout", int(timeout * 1000))
    solver.add(z3.parse_smt2_string(script))
    verdict = solver.check()
    if verdict == z3.sat:
        return "sat"
    if verdict == z3.unsat:
        return "unsat"
    return "unknown"


def check_smtlib(script: str,
                 timeout: float = DEFAULT_TIMEOUT) -> str:
    """Run one SMT-LIB script through z3; never raises.

    Subprocess first (matches the exemplar adapters and isolates solver
    crashes), the Python package as fallback.
    """
    try:
        if _z3_binary() is not None:
            return _check_via_binary(script, timeout)
        if _z3_module_present():
            return _check_via_module(script, timeout)
        return "unavailable"
    except subprocess.TimeoutExpired:
        return "unknown"
    except Exception as exc:  # noqa: BLE001 - adapter must never fail
        return f"error: {type(exc).__name__}: {exc}"
