"""The native prover backend: discharge drift-stability obligations by
symbolic-state enumeration with EUF consistency filtering.

The decision procedure extends the symbolic commutativity engine
(:mod:`repro.solver.engine`) with a second, independently-drifted
symbolic state:

- **roots** ``w`` come from the engine's per-family case generators —
  partition enumeration over the mentioned object symbols, symbolic
  membership/binding of the mentioned classes, symbolic size ``N + d``
  (exact for unbounded states; ArrayList lengths are enumerated to the
  scope bound, the repo's documented deviation);
- **drifts** ``d`` are generated per case as every state the runtime
  could present *as observed through the candidate's vocabulary*: for
  sets, every membership assignment of the mentioned classes over an
  unrelated symbolic size ``M``; for maps, every binding choice per
  mentioned key class — absent, any mentioned value, any base value the
  root could have held, the observed result, or a fresh drift value
  (fresh values partitioned among themselves); for the ArrayList, a
  jointly-partitioned second sequence so drift elements may coincide
  with root elements, arguments, or be new.  The verified no-drift
  binding (the state right after ``m1``) is always included;
- each refutation is certified through the EUF solver
  (:mod:`repro.solver.euf`): the case's semantic bindings become ground
  equalities over uninterpreted membership/binding applications, token
  distinctness (the injective-renaming interpretation) becomes
  disequalities, and only closure-consistent cases refute — the
  resulting congruence classes ship inside the countermodel artifact.

A candidate is **proved** when no consistent case both admits it and
fails to commute at the root, and it admitted at least once (a vacuous
certificate arms nothing); **refuted** on the first consistent
countermodel; **unsupported** when its lowering or a symbolic
evaluation step falls outside the decidable fragment (never silently
mis-proved — see the clean-admission contract in
:mod:`repro.prover.obligations`).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..commutativity.conditions import CommutativityCondition
from ..eval.enumeration import Scope
from ..eval.interpreter import EvalContext, EvalError
from ..eval.values import FMap, Record
from ..logic.compile import compile_term
from ..solver.engine import (ACCUMULATOR_SEMANTICS, MAP_SEMANTICS,
                             SET_SEMANTICS, _commutes_symbolic,
                             _obj_symbols, _symbolic_observe,
                             accumulator_cases, map_cases, set_cases)
from ..solver.euf import CongruenceClosure
from ..solver.partition import partitions
from ..solver.symbolic import SymInt, SymMap, SymSet
from ..specs.interface import DataStructureSpec, Operation
from .obligations import (SYMBOLIC_FAMILIES, Obligation, family_regime,
                          lower_pair)


@dataclass
class ProofResult:
    """One candidate's fate under the symbolic prover."""

    candidate: str
    #: ``"proved"`` | ``"refuted"`` | ``"unsupported"``.
    status: str
    admitted: int = 0
    cases: int = 0
    #: ``symbolic/unbounded`` or ``symbolic/bounded-length`` — what the
    #: certificate actually quantifies over.
    regime: str = ""
    reason: str | None = None
    #: JSON-shaped refutation witness (refuted candidates only).
    countermodel: dict | None = None
    #: External-adapter cross-check outcome (see
    #: :func:`repro.prover.backend.discharge_pair`); informational,
    #: never overrides the native verdict.
    corroboration: str | None = None


@dataclass
class PairProof:
    """The prover's verdicts for one pair's candidate set."""

    m1: str
    m2: str
    results: tuple[ProofResult, ...] = ()
    cases: int = 0
    elapsed: float = field(default=0.0, compare=False)

    @property
    def pair_label(self) -> str:
        return f"{self.m1};{self.m2}"

    def result(self, text: str) -> ProofResult | None:
        for result in self.results:
            if result.candidate == text:
                return result
        return None


# ---------------------------------------------------------------------------
# Drifted-state generators
# ---------------------------------------------------------------------------

DriftFn = Callable[[Record, Any], Iterator[Record]]
CaseStream = Iterator[tuple[Record, tuple, tuple, DriftFn]]


def _set_drifts(w: Record) -> Iterator[Record]:
    """Every membership assignment of the root's mentioned classes,
    over an unrelated symbolic size ``M`` — exactly the states a
    drifted set can present to a candidate that observes only the
    mentioned elements."""
    classes = sorted(w["contents"].membership)
    for bits in itertools.product((False, True), repeat=len(classes)):
        yield Record(contents=SymSet(FMap(dict(zip(classes, bits)))),
                     size=SymInt("M", 0))


def _map_drifts(w: Record, mid: Record, r1: Any,
                value_args: tuple) -> Iterator[Record]:
    """Every binding choice per mentioned key class: absent, any value
    the candidate could distinguish (argument values, base values of
    the root or post-``m1`` state, the observed result), or a fresh
    drift value — fresh values partitioned among themselves, the same
    injective-renaming argument that makes the root enumeration exact."""
    kclasses = sorted(w["contents"].tracked)
    values: set[str] = set(w["contents"].binding.values())
    values.update(mid["contents"].binding.values())
    values.update(v for v in value_args if isinstance(v, str))
    if isinstance(r1, str):
        values.add(r1)
    options = ["absent", "dfresh"] + sorted(values)
    for choice in itertools.product(options, repeat=len(kclasses)):
        fresh = tuple(kc for kc, tag in zip(kclasses, choice)
                      if tag == "dfresh")
        for fpart in partitions(fresh):
            binding: dict[str, str] = {}
            for kc, tag in zip(kclasses, choice):
                if tag == "absent":
                    continue
                binding[kc] = (f"g{fpart[kc]}" if tag == "dfresh"
                               else tag)
            yield Record(contents=SymMap(FMap(binding),
                                         frozenset(kclasses)),
                         size=SymInt("M", 0))


def _arraylist_stream(op1: Operation, op2: Operation,
                      max_len: int) -> CaseStream:
    """Jointly-partitioned root/drift sequence pairs.

    Root and drift elements share one partition with the object
    arguments (root symbols first, so a root reappears identically
    across its drift variations), letting drift elements coincide with
    root elements, arguments, or be new — exact for unbounded element
    universes at each bounded length pair.  Index arguments range over
    both sequences' valid positions (the post-``m1`` state can be one
    longer than the root; preconditions filter the rest).
    """
    obj_syms = _obj_symbols(op1, op2)
    for n_w in range(max_len + 1):
        for n_d in range(max_len + 1):
            w_syms = [f"we{j}" for j in range(n_w)]
            d_syms = [f"de{j}" for j in range(n_d)]
            for part in partitions(tuple(w_syms + obj_syms + d_syms)):
                tokens = {sym: f"c{cls}" for sym, cls in part.items()}
                w = Record(elems=tuple(tokens[s] for s in w_syms),
                           size=n_w)
                d = Record(elems=tuple(tokens[s] for s in d_syms),
                           size=n_d)
                index_range = tuple(range(max(n_w, n_d) + 2))

                def domains(op: Operation, suffix: str) -> list[tuple]:
                    out: list[tuple] = []
                    for p in op.params:
                        if p.sort.value == "int":
                            out.append(index_range)
                        else:
                            out.append((tokens[f"{p.name}{suffix}"],))
                    return out

                def drift_fn(mid: Record, r1: Any,
                             d: Record = d) -> Iterator[Record]:
                    return iter((d,))

                for args1 in itertools.product(*domains(op1, "1")):
                    for args2 in itertools.product(*domains(op2, "2")):
                        yield w, args1, args2, drift_fn


def _case_stream(spec: DataStructureSpec, op1: Operation,
                 op2: Operation, scope: Scope) -> CaseStream:
    if spec.name == "Set":
        for w, args1, args2 in set_cases(op1, op2):
            def drift_fn(mid: Record, r1: Any,
                         w: Record = w) -> Iterator[Record]:
                return _set_drifts(w)
            yield w, args1, args2, drift_fn
        return
    if spec.name == "Map":
        for w, args1, args2 in map_cases(op1, op2):
            value_args = tuple(
                v for op, args in ((op1, args1), (op2, args2))
                for p, v in zip(op.params, args) if p.name != "k")

            def drift_fn(mid: Record, r1: Any, w: Record = w,
                         value_args: tuple = value_args) \
                    -> Iterator[Record]:
                return _map_drifts(w, mid, r1, value_args)
            yield w, args1, args2, drift_fn
        return
    if spec.name == "Accumulator":
        for w, args1, args2 in accumulator_cases(op1, op2):
            def drift_fn(mid: Record, r1: Any) -> Iterator[Record]:
                return iter((Record(value=SymInt("M", 0)),))
            yield w, args1, args2, drift_fn
        return
    if spec.name == "ArrayList":
        yield from _arraylist_stream(op1, op2, scope.max_seq_len)
        return
    raise ValueError(f"no symbolic tooling for family {spec.name!r}")


# ---------------------------------------------------------------------------
# EUF certification
# ---------------------------------------------------------------------------

def _euf_certificate(w: Record, mid: Record, d: Record,
                     args1: tuple, args2: tuple,
                     r1: Any) -> tuple[bool, dict]:
    """Check the case's ground theory through the congruence closure.

    The semantic bindings become equalities over uninterpreted
    applications (``mem_w(c0) = true``, ``bind_d(k0) = g0``, ...), the
    injective-renaming interpretation becomes pairwise token
    disequalities.  The generators produce consistent cases by
    construction, so an inconsistency here flags a generator defect and
    the case is discarded rather than refuting; the congruence classes
    are returned for the countermodel artifact either way.
    """
    cc = CongruenceClosure()
    tokens: set[str] = set()

    def note(value: Any) -> None:
        if isinstance(value, str):
            tokens.add(value)

    def bind_state(tag: str, state: Record) -> None:
        contents = state.get("contents")
        if isinstance(contents, SymSet):
            for token, present in contents.membership.items():
                note(token)
                cc.merge((f"mem_{tag}", token),
                         "true" if present else "false")
        elif isinstance(contents, SymMap):
            for key in sorted(contents.tracked):
                note(key)
                if key in contents:
                    value = contents.lookup(key)
                    note(value)
                    cc.merge((f"has_{tag}", key), "true")
                    cc.merge((f"bind_{tag}", key), value)
                else:
                    cc.merge((f"has_{tag}", key), "false")
        elif isinstance(contents, tuple):
            for i, elem in enumerate(contents):
                note(elem)
                cc.merge((f"at_{tag}", i), elem)

    for value in itertools.chain(args1, args2):
        note(value)
    for tag, state in (("w", w), ("mid", mid), ("d", d)):
        bind_state(tag, state)
    if isinstance(r1, str):
        note(r1)
        cc.merge(("r1",), r1)
    elif isinstance(r1, bool):
        cc.merge(("r1",), "true" if r1 else "false")
    for a, b in itertools.combinations(
            sorted(tokens | {"true", "false"}), 2):
        cc.assert_distinct(a, b)
    classes = {repr(rep): sorted(repr(m) for m in members)
               for rep, members in cc.classes().items()}
    return cc.is_consistent(), classes


def _countermodel(spec: DataStructureSpec, cond: CommutativityCondition,
                  text: str, w: Record, mid: Record, d: Record,
                  args1: tuple, args2: tuple, r1: Any,
                  euf_classes: dict) -> dict:
    return {
        "family": spec.name,
        "m1": cond.m1,
        "m2": cond.m2,
        "candidate": text,
        "root": repr(w),
        "after_m1": repr(mid),
        "drift": repr(d),
        "args1": [repr(a) for a in args1],
        "args2": [repr(a) for a in args2],
        "r1": repr(r1),
        "regime": family_regime(spec.name),
        "euf_classes": euf_classes,
    }


# ---------------------------------------------------------------------------
# The prover loop
# ---------------------------------------------------------------------------

def prove_pair(spec: DataStructureSpec, cond: CommutativityCondition,
               candidate_texts: list[str],
               scope: Scope | None = None) -> PairProof:
    """Discharge one pair's candidate obligations natively."""
    start = time.perf_counter()
    scope = scope or Scope()
    op1, op2 = cond.op1, cond.op2
    regime = (family_regime(spec.name)
              if spec.name in SYMBOLIC_FAMILIES + ("ArrayList",) else "")
    obligations = lower_pair(spec, cond, candidate_texts)
    results = {o.text: ProofResult(candidate=o.text, status="unsupported",
                                   regime=regime, reason=o.reason)
               for o in obligations}
    proof = PairProof(m1=cond.m1, m2=cond.m2)
    supported = [o for o in obligations if o.supported]
    if supported:
        semantics = {"Set": SET_SEMANTICS, "Map": MAP_SEMANTICS,
                     "Accumulator": ACCUMULATOR_SEMANTICS}.get(spec.name)
        ctx = EvalContext(observe=_symbolic_observe(semantics, spec))
        apply1 = semantics[op1.name] if semantics else op1.semantics
        apply2 = semantics[op2.name] if semantics else op2.semantics
        # Live work lists: state-free candidates are evaluated once per
        # case (at the no-drift binding), s2-readers once per drift.
        free_live = []
        drift_live = []
        for o in supported:
            item = (o, compile_term(o.term, ctx), results[o.text])
            (drift_live if o.wants_s2 else free_live).append(item)

        def judge(item, env, truth, w, mid, d, args1, args2, r1,
                  live) -> None:
            o, formula, result = item
            if truth and result.admitted:
                return  # a commuting case can neither refute nor
                        # change established non-vacuity
            try:
                value = bool(formula(env))
            except (EvalError, TypeError, KeyError) as exc:
                result.status = "unsupported"
                result.reason = f"symbolic evaluation failed: {exc}"
                live.remove(item)
                return
            if not value:
                return
            result.admitted += 1
            if truth:
                return
            consistent, classes = _euf_certificate(
                w, mid, d, args1, args2, r1)
            if not consistent:
                result.admitted -= 1
                return
            result.status = "refuted"
            result.countermodel = _countermodel(
                spec, cond, o.text, w, mid, d, args1, args2, r1,
                classes)
            live.remove(item)

        commute_cache: dict[tuple, Any] = {}
        for w, args1, args2, drift_fn in _case_stream(spec, op1, op2,
                                                      scope):
            if not free_live and not drift_live:
                break
            if not spec.precondition_holds(op1, w, args1):
                continue
            mid, r1 = apply1(w, args1)
            case_key = (w, args1, args2)
            truth = commute_cache.get(case_key)
            if truth is None:
                if not spec.precondition_holds(op2, mid, args2):
                    truth = "outside"
                else:
                    fin, r2 = apply2(mid, args2)
                    truth = _commutes_symbolic(
                        spec, op1, op2, apply1, apply2, w, args1,
                        args2, fin, r1, r2)
                commute_cache[case_key] = truth
            if truth == "outside":
                continue
            env: dict[str, Any] = {}
            for p, v in zip(op1.params, args1):
                env[f"{p.name}1"] = v
            for p, v in zip(op2.params, args2):
                env[f"{p.name}2"] = v
            if op1.result_sort is not None:
                env["r1"] = r1
            if free_live:
                cenv = dict(env)
                cenv["s2"] = mid
                proof.cases += 1
                for item in free_live[:]:
                    judge(item, cenv, truth, w, mid, mid, args1, args2,
                          r1, free_live)
            if drift_live:
                for d in itertools.chain((mid,), drift_fn(mid, r1)):
                    if not spec.precondition_holds(op2, d, args2):
                        continue
                    denv = dict(env)
                    denv["s2"] = d
                    proof.cases += 1
                    for item in drift_live[:]:
                        judge(item, denv, truth, w, mid, d, args1,
                              args2, r1, drift_live)
    for result in results.values():
        if result.status == "unsupported" and result.reason is None:
            # Supported, survived every case: proved unless vacuous.
            if result.admitted:
                result.status = "proved"
            else:
                result.reason = "vacuous (no admitting case)"
        result.cases = proof.cases
    proof.results = tuple(results[o.text] for o in obligations)
    proof.elapsed = time.perf_counter() - start
    return proof
