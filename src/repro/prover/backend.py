"""Backend packaging: versioned verdicts, cache fingerprints, and the
external cross-check hook.

:func:`discharge_pair` is the prover's single entry point for the
engine's ``SYMBOLIC_STABILITY`` tasks: native proof first, then — when
an external solver is installed — an SMT-LIB cross-check whose outcome
is *recorded* on each result (``corroborated``, ``divergent: ...``,
``unknown``, ``inexpressible``) but never overrides the native verdict:
the emitter fragment is narrower than the native one and the native
backend is the one whose criterion is proven to match the bounded
sweep's.

:func:`prover_fingerprint` feeds the engine task keys
(:func:`repro.engine.fingerprint.symbolic_stability_fingerprint`): it
covers the prover version, the backend identity, *and* external-solver
availability, so installing z3 (or a future prover bump) retires every
cached symbolic-stability outcome rather than serving stale verdicts
from ``.repro-cache``.
"""

from __future__ import annotations

from typing import Any

from ..commutativity.conditions import CommutativityCondition
from ..eval.enumeration import Scope
from ..specs.interface import DataStructureSpec
from .native import PairProof, ProofResult, prove_pair
from .obligations import lower_pair
from .smtlib import emit_obligation
from .z3adapter import check_smtlib, z3_available

#: Bump whenever a prover change could alter a verdict — part of every
#: SYMBOLIC_STABILITY task key, so bumping retires all cached proofs.
PROVER_VERSION = 1

#: Identity of the bundled backend (the pluggable-adapter seam: an
#: alternative backend would carry a different name through the
#: fingerprint and the CLI surface).
NATIVE_BACKEND = "native-euf"


def prover_fingerprint() -> dict[str, Any]:
    """What a symbolic-stability outcome depends on beyond the bounded
    sweep's ingredients."""
    return {
        "prover_version": PROVER_VERSION,
        "backend": NATIVE_BACKEND,
        "external": {"z3": z3_available()},
    }


def discharge_pair(spec: DataStructureSpec,
                   cond: CommutativityCondition,
                   candidate_texts: list[str],
                   scope: Scope | None = None,
                   external: bool = True) -> PairProof:
    """Prove one pair's candidates natively, then cross-check the
    decided ones externally when a solver is present."""
    proof = prove_pair(spec, cond, candidate_texts, scope)
    if external and z3_available():
        terms = {o.text: o.term for o in lower_pair(spec, cond,
                                                    candidate_texts)}
        for result in proof.results:
            if result.status not in ("proved", "refuted"):
                continue
            term = terms.get(result.candidate)
            script = (emit_obligation(spec, cond, term)
                      if term is not None else None)
            if script is None:
                result.corroboration = "inexpressible"
                continue
            answer = check_smtlib(script)
            expected = "unsat" if result.status == "proved" else "sat"
            if answer == expected:
                result.corroboration = "corroborated"
            elif answer in ("sat", "unsat"):
                result.corroboration = f"divergent: {answer}"
            else:
                result.corroboration = answer
    return proof


# -- plain-data (de)serialization for the engine cache ------------------------

def proof_payload(proof: PairProof) -> dict[str, Any]:
    """A JSON-shaped rendering of one pair proof (task outcome
    payload; persists verbatim in ``.repro-cache``)."""
    return {
        "m1": proof.m1,
        "m2": proof.m2,
        "cases": proof.cases,
        "results": [{
            "candidate": r.candidate,
            "status": r.status,
            "admitted": r.admitted,
            "cases": r.cases,
            "regime": r.regime,
            "reason": r.reason,
            "countermodel": r.countermodel,
            "corroboration": r.corroboration,
        } for r in proof.results],
    }


def proof_from_payload(payload: dict[str, Any],
                       elapsed: float = 0.0) -> PairProof:
    """Rebuild a pair proof from a cached/worker payload."""
    return PairProof(
        m1=payload["m1"], m2=payload["m2"],
        cases=int(payload.get("cases", 0)),
        results=tuple(
            ProofResult(candidate=row["candidate"],
                        status=row["status"],
                        admitted=int(row.get("admitted", 0)),
                        cases=int(row.get("cases", 0)),
                        regime=row.get("regime", ""),
                        reason=row.get("reason"),
                        countermodel=row.get("countermodel"),
                        corroboration=row.get("corroboration"))
            for row in payload.get("results", ())),
        elapsed=elapsed)
