"""SMT-LIB 2 emission of drift-stability obligations (the exchange
format of the pluggable external-adapter interface).

The emitter renders the *negation* of one candidate's obligation for
the Set and Map families as a quantifier-free script over uninterpreted
functions:

- the root state ``w`` and the drifted state ``d`` are uninterpreted
  membership/binding functions over a free ``Obj`` sort (``memw``,
  ``hasw``/``bindw``, ``memd``, ...) — a model chooses *any* state, so
  ``unsat`` really is an unbounded proof;
- both operation orders are executed symbolically at emission time,
  producing ``ite``-term states (point updates) and result terms;
  commutation is agreement of the final states at every mentioned point
  plus size-delta equality plus result equality — exact, because point
  updates can only disagree at mentioned points;
- the candidate is translated with ``s2`` reading the drifted state and
  ``r1`` replaced by the root execution's result term; the script
  asserts the preconditions, the candidate, and the *negation* of
  commutation, then ``(check-sat)``.

``unsat`` therefore corroborates a native ``proved`` verdict and
``sat`` a native ``refuted`` one.  :func:`emit_obligation` returns
``None`` for anything outside the expressible fragment (ArrayList
obligations, size-reading candidates, exotic nodes) — the adapter
records those as inexpressible rather than failing.  The adapter never
overrides the native backend either way; it is a cross-check, in the
``eprover.py``/``z3_checker.py`` adapter mold of the exemplar repos.
"""

from __future__ import annotations

from typing import Any, Callable

from ..commutativity.conditions import CommutativityCondition
from ..logic import terms as t
from ..logic.sorts import Sort
from ..specs.interface import DataStructureSpec, Operation

#: Operation vocabularies the emitter can execute symbolically.
_SET_OPS = ("add", "add_", "remove", "remove_", "contains")
_MAP_OPS = ("put", "put_", "remove", "remove_", "get", "containsKey")


def _ite(cond: str, then: str, els: str) -> str:
    return f"(ite {cond} {then} {els})"


class _Inexpressible(Exception):
    """Internal signal: the obligation leaves the emitter's fragment."""


class _SymbolicState:
    """A point-update state: membership/binding as expression-builders."""

    def __init__(self, member: Callable[[str], str],
                 bind: Callable[[str], str] | None,
                 delta: str) -> None:
        self.member = member   # tok expr -> Bool expr
        self.bind = bind       # tok expr -> Obj expr (maps only)
        self.delta = delta     # Int expr relative to the base size

    def get(self, key: str) -> str:
        """Map lookup with the absent-means-null guard."""
        return _ite(self.member(key), self.bind(key), "null")


def _apply_set(state: _SymbolicState, op: Operation,
               args: tuple[str, ...]) -> tuple[_SymbolicState, str | None]:
    name = op.name
    member, delta = state.member, state.delta
    if name in ("add", "add_"):
        (v,) = args
        new = _SymbolicState(
            lambda x, m=member, v=v: f"(or (= {x} {v}) {m(x)})",
            None, f"(+ {delta} {_ite(member(v), '0', '1')})")
        return new, (f"(not {member(v)})" if name == "add" else None)
    if name in ("remove", "remove_"):
        (v,) = args
        new = _SymbolicState(
            lambda x, m=member, v=v: f"(and (not (= {x} {v})) {m(x)})",
            None, f"(- {delta} {_ite(member(v), '1', '0')})")
        return new, (member(v) if name == "remove" else None)
    if name == "contains":
        (v,) = args
        return state, member(v)
    raise _Inexpressible(name)


def _apply_map(state: _SymbolicState, op: Operation,
               args: tuple[str, ...]) -> tuple[_SymbolicState, str | None]:
    name = op.name
    member, bind, delta = state.member, state.bind, state.delta
    if name in ("put", "put_"):
        k, v = args
        previous = state.get(k)
        new = _SymbolicState(
            lambda x, m=member, k=k: f"(or (= {x} {k}) {m(x)})",
            lambda x, b=bind, k=k, v=v: _ite(f"(= {x} {k})", v, b(x)),
            f"(+ {delta} {_ite(member(k), '0', '1')})")
        return new, (previous if name == "put" else None)
    if name in ("remove", "remove_"):
        (k,) = args
        previous = state.get(k)
        new = _SymbolicState(
            lambda x, m=member, k=k: f"(and (not (= {x} {k})) {m(x)})",
            bind, f"(- {delta} {_ite(member(k), '1', '0')})")
        return new, (previous if name == "remove" else None)
    if name == "get":
        (k,) = args
        return state, state.get(k)
    if name == "containsKey":
        (k,) = args
        return state, member(k)
    raise _Inexpressible(name)


def _translate(term: t.Term, drifted: _SymbolicState,
               r1: str | None, family: str) -> str:
    """Render the candidate with ``s2`` reading the drifted state."""

    def tr(node: t.Term) -> str:
        if isinstance(node, t.Var):
            if node.var_sort is Sort.STATE:
                raise _Inexpressible("bare state variable")
            if node.name == "r1":
                if r1 is None:
                    raise _Inexpressible("r1 without a result")
                return r1
            return node.name
        if isinstance(node, t.BoolConst):
            return "true" if node.value else "false"
        if isinstance(node, t.IntConst):
            return (str(node.value) if node.value >= 0
                    else f"(- {-node.value})")
        if isinstance(node, t.Null):
            return "null"
        if isinstance(node, t.Not):
            return f"(not {tr(node.arg)})"
        if isinstance(node, t.And):
            return f"(and {' '.join(tr(a) for a in node.args)})"
        if isinstance(node, t.Or):
            return f"(or {' '.join(tr(a) for a in node.args)})"
        if isinstance(node, t.Implies):
            return f"(=> {tr(node.lhs)} {tr(node.rhs)})"
        if isinstance(node, t.Iff):
            return f"(= {tr(node.lhs)} {tr(node.rhs)})"
        if isinstance(node, t.Ite):
            return _ite(tr(node.cond), tr(node.then), tr(node.els))
        if isinstance(node, t.Eq):
            return f"(= {tr(node.lhs)} {tr(node.rhs)})"
        if isinstance(node, t.Lt):
            return f"(< {tr(node.lhs)} {tr(node.rhs)})"
        if isinstance(node, t.Le):
            return f"(<= {tr(node.lhs)} {tr(node.rhs)})"
        if isinstance(node, t.Add):
            return f"(+ {' '.join(tr(a) for a in node.args)})"
        if isinstance(node, t.Sub):
            return f"(- {tr(node.lhs)} {tr(node.rhs)})"
        if isinstance(node, t.Neg):
            return f"(- {tr(node.arg)})"
        if isinstance(node, t.Member):
            _require_s2(node.set_)
            return drifted.member(tr(node.elem))
        if isinstance(node, t.MapGet):
            _require_s2(node.map_)
            return drifted.get(tr(node.key))
        if isinstance(node, t.MapHasKey):
            _require_s2(node.map_)
            return drifted.member(tr(node.key))
        if isinstance(node, t.ObserverCall):
            if not (isinstance(node.state, t.Var)
                    and node.state.name == "s2"):
                raise _Inexpressible("observer on a non-s2 state")
            args = tuple(tr(a) for a in node.args)
            if family == "Set" and node.method == "contains":
                return drifted.member(args[0])
            if family == "Map" and node.method == "containsKey":
                return drifted.member(args[0])
            if family == "Map" and node.method == "get":
                return drifted.get(args[0])
            raise _Inexpressible(f"observer {node.method}")
        raise _Inexpressible(type(node).__name__)

    def _require_s2(state_node: t.Term) -> None:
        ok = (isinstance(state_node, t.Field)
              and isinstance(state_node.state, t.Var)
              and state_node.state.name == "s2")
        if not ok:
            raise _Inexpressible("state access outside s2.contents")

    return tr(term)


def emit_obligation(spec: DataStructureSpec,
                    cond: CommutativityCondition,
                    term: t.Term) -> str | None:
    """The SMT-LIB 2 script refuting one candidate's obligation, or
    ``None`` when the obligation is not expressible in the adapter
    fragment."""
    family = spec.name
    op1, op2 = cond.op1, cond.op2
    if family == "Set":
        supported, apply_op, has_bind = _SET_OPS, _apply_set, False
    elif family == "Map":
        supported, apply_op, has_bind = _MAP_OPS, _apply_map, True
    else:
        return None
    if op1.name not in supported or op2.name not in supported:
        return None

    obj_params: list[str] = []
    for op, suffix in ((op1, "1"), (op2, "2")):
        for p in op.params:
            if p.sort is not Sort.OBJ:
                return None  # Set/Map signatures are all-Obj
            obj_params.append(f"{p.name}{suffix}")
    args1 = tuple(f"{p.name}1" for p in op1.params)
    args2 = tuple(f"{p.name}2" for p in op2.params)

    def base(tag: str) -> _SymbolicState:
        if has_bind:
            return _SymbolicState(lambda x: f"(has{tag} {x})",
                                  lambda x: f"(bind{tag} {x})", "0")
        return _SymbolicState(lambda x: f"(mem{tag} {x})", None, "0")

    w, d = base("w"), base("d")
    try:
        # Order A at the root: m1 then m2.
        mid_a, r1_a = apply_op(w, op1, args1)
        fin_a, r2_a = apply_op(mid_a, op2, args2)
        # Order B at the root: m2 then m1.
        mid_b, r2_b = apply_op(w, op2, args2)
        fin_b, r1_b = apply_op(mid_b, op1, args1)

        points = sorted(set(obj_params))
        agreement = []
        for point in points:
            agreement.append(
                f"(= {fin_a.member(point)} {fin_b.member(point)})")
            if has_bind:
                agreement.append(f"(=> {fin_a.member(point)} "
                                 f"(= {fin_a.get(point)} "
                                 f"{fin_b.get(point)}))")
        agreement.append(f"(= {fin_a.delta} {fin_b.delta})")
        if r1_a is not None:
            agreement.append(f"(= {r1_a} {r1_b})")
        if r2_a is not None:
            agreement.append(f"(= {r2_a} {r2_b})")
        commutes = f"(and {' '.join(agreement)})"
        candidate = _translate(term, d, r1_a, family)
    except _Inexpressible:
        return None

    lines = [
        "; drift-stability obligation (negated): "
        f"{family} {cond.m1};{cond.m2}",
        "(set-logic QF_UFLIA)",
        "(declare-sort Obj 0)",
        "(declare-fun null () Obj)",
    ]
    for name in dict.fromkeys(obj_params):
        lines.append(f"(declare-fun {name} () Obj)")
    if has_bind:
        lines += ["(declare-fun hasw (Obj) Bool)",
                  "(declare-fun bindw (Obj) Obj)",
                  "(declare-fun hasd (Obj) Bool)",
                  "(declare-fun bindd (Obj) Obj)"]
    else:
        lines += ["(declare-fun memw (Obj) Bool)",
                  "(declare-fun memd (Obj) Bool)"]
    # Preconditions: Set/Map arguments are non-null (state-independent,
    # so they hold at the root, after m1, and at the drifted state
    # alike — the whole case universe in one assertion each).
    for name in dict.fromkeys(obj_params):
        lines.append(f"(assert (distinct {name} null))")
    if has_bind:
        # Stored values are non-null (put's precondition), so a null
        # lookup means absence — at every mentioned point, in both
        # states.
        for point in sorted(set(obj_params)):
            for tag_state in (w, d):
                lines.append(f"(assert (=> {tag_state.member(point)} "
                             f"(distinct {tag_state.bind(point)} "
                             f"null)))")
    lines.append(f"(assert {candidate})")
    lines.append(f"(assert (not {commutes}))")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
