"""The symbolic prover: unbounded stability proofs for drift-stable
candidate conditions.

PR 5's stability compiler certifies candidates by bounded-exhaustive
sweep, so state-reading survivors are *reported but never armed*: their
bounded certificate says nothing about the preloaded runtime states the
gatekeeper actually evaluates them in.  This package plays, for the
stability pipeline, the role Jahob's integrated provers play for the
paper's commutativity conditions — it discharges each candidate's
drift-stability obligation over **all** states of the family's theory,
not a swept sample:

- :mod:`.obligations` lowers condition ASTs, spec executable semantics
  and candidate atoms into quantifier-free FOL obligations over the
  repo's own theory stack (:mod:`repro.solver.euf` congruence closure +
  :mod:`repro.solver.symbolic` symbolic abstract states);
- :mod:`.native` discharges obligations natively by symbolic-state
  enumeration with EUF consistency filtering, extracting a countermodel
  when a candidate is refuted;
- :mod:`.smtlib` emits obligations as SMT-LIB 2 scripts, and
  :mod:`.z3adapter` optionally cross-checks them through an external
  ``z3`` solver — degrading gracefully (recorded as unavailable, never
  failing) when no solver is installed;
- :mod:`.backend` packages the verdicts, versions them for the engine
  cache, and exposes the pluggable backend fingerprint.

Consumption: the engine's ``SYMBOLIC_STABILITY`` task kind
(:mod:`repro.engine.tasks`) runs :func:`discharge_pair` per fragile
condition group; the pipeline merges proof results into the bounded
verdicts (:func:`repro.stability.compiler.merge_proofs`), where a
proved state-reading candidate is finally *armed* and a fully-proved
pair is promoted to the ``proved`` verdict tier.
"""

from .backend import (PROVER_VERSION, ProofResult, discharge_pair,
                      proof_payload, proof_from_payload,
                      prover_fingerprint)
from .native import prove_pair
from .obligations import Obligation, lower_pair
from .smtlib import emit_obligation
from .z3adapter import check_smtlib, z3_available

__all__ = [
    "PROVER_VERSION", "ProofResult", "discharge_pair",
    "proof_payload", "proof_from_payload", "prover_fingerprint",
    "prove_pair",
    "Obligation", "lower_pair",
    "emit_obligation",
    "check_smtlib", "z3_available",
]
