"""The inverse-operation catalog (Table 5.10).

Every operation that changes a data structure's abstract state has a
specified inverse that restores the original *abstract* state (the
concrete state may differ — e.g. a re-inserted list element may land in
a different position, Section 1.3).  Inverses use the original
operation's return value to carry the information they need: ``put``'s
previous value, ``remove_at``'s removed element, and so on.

The undo program is a tiny guarded-call language (mirroring the inverse
testing methods of Figures 2-3/2-4): an optional guard on the return
value selects between a *then* call sequence and an *else* sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ArgKind(enum.Enum):
    """How an inverse-call argument is obtained."""

    PARAM = "param"          # a parameter of the original operation
    RESULT = "result"        # the original operation's return value
    NEG_RESULT = "neg"       # unused; kept for symmetry with NEG_PARAM
    NEG_PARAM = "neg_param"  # arithmetic negation of a parameter


@dataclass(frozen=True)
class Arg:
    kind: ArgKind
    name: str | None = None

    @staticmethod
    def param(name: str) -> "Arg":
        return Arg(ArgKind.PARAM, name)

    @staticmethod
    def result() -> "Arg":
        return Arg(ArgKind.RESULT)

    @staticmethod
    def neg_param(name: str) -> "Arg":
        return Arg(ArgKind.NEG_PARAM, name)


class Guard(enum.Enum):
    """Guard on the original operation's return value."""

    NONE = "none"                    # unconditional
    RESULT_TRUE = "result"           # if (r) { ... }
    RESULT_NOT_NULL = "result_null"  # if (r != null) { ... } else { ... }


@dataclass(frozen=True)
class InverseCall:
    op: str
    args: tuple[Arg, ...]

    def render(self, receiver: str = "s") -> str:
        parts = []
        for arg in self.args:
            if arg.kind is ArgKind.PARAM:
                parts.append(arg.name)
            elif arg.kind is ArgKind.NEG_PARAM:
                parts.append(f"-{arg.name}")
            else:
                parts.append("r")
        return f"{receiver}.{self.op.rstrip('_')}({', '.join(parts)})"


@dataclass(frozen=True)
class InverseSpec:
    """One row of Table 5.10."""

    family: str
    op: str
    guard: Guard
    then: tuple[InverseCall, ...]
    els: tuple[InverseCall, ...] = field(default=())

    def render(self, receiver: str = "s2") -> str:
        """Render the inverse column of Table 5.10."""
        then_text = "; ".join(c.render(receiver) for c in self.then)
        if self.guard is Guard.NONE:
            return then_text
        if self.guard is Guard.RESULT_TRUE:
            return f"if r = true then {then_text}"
        els_text = "; ".join(c.render(receiver) for c in self.els)
        if self.els:
            return f"if r ~= null then {then_text} else {els_text}"
        return f"if r ~= null then {then_text}"


#: The eight inverse operations of Table 5.10.
INVERSES: tuple[InverseSpec, ...] = (
    InverseSpec(
        family="Accumulator", op="increase", guard=Guard.NONE,
        then=(InverseCall("increase", (Arg.neg_param("v"),)),)),
    InverseSpec(
        family="Set", op="add", guard=Guard.RESULT_TRUE,
        then=(InverseCall("remove", (Arg.param("v"),)),)),
    InverseSpec(
        family="Set", op="remove", guard=Guard.RESULT_TRUE,
        then=(InverseCall("add", (Arg.param("v"),)),)),
    InverseSpec(
        family="Map", op="put", guard=Guard.RESULT_NOT_NULL,
        then=(InverseCall("put", (Arg.param("k"), Arg.result())),),
        els=(InverseCall("remove", (Arg.param("k"),)),)),
    InverseSpec(
        family="Map", op="remove", guard=Guard.RESULT_NOT_NULL,
        then=(InverseCall("put", (Arg.param("k"), Arg.result())),)),
    InverseSpec(
        family="ArrayList", op="add_at", guard=Guard.NONE,
        then=(InverseCall("remove_at", (Arg.param("i"),)),)),
    InverseSpec(
        family="ArrayList", op="remove_at", guard=Guard.NONE,
        then=(InverseCall("add_at", (Arg.param("i"), Arg.result())),)),
    InverseSpec(
        family="ArrayList", op="set", guard=Guard.NONE,
        then=(InverseCall("set", (Arg.param("i"), Arg.result())),)),
)


def inverses_for(family: str) -> list[InverseSpec]:
    """Inverse specs of one specification family (historical contract:
    an unknown name has no inverses rather than being an error)."""
    from ..api import DEFAULT_REGISTRY, UnknownNameError
    try:
        return DEFAULT_REGISTRY.inverses(family)
    except UnknownNameError:
        return []


def inverse_for(family: str, op: str) -> InverseSpec:
    """The inverse spec for one operation (return-value variant name)."""
    from ..api import DEFAULT_REGISTRY
    return DEFAULT_REGISTRY.inverse(family, op)
