"""Inverse testing methods and their verification (Sections 2.6, 3.3, 4.2).

Property 3: if the original operation's precondition holds, then after it
executes (1) the inverse's precondition holds and (2) executing the
inverse restores the initial abstract state.

The bounded backend checks this exhaustively over a scope; the generated
method can render itself in the paper's surface style (Figures 2-3/2-4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..eval.enumeration import Scope
from ..eval.values import Record
from ..specs import DataStructureSpec
from .catalog import ArgKind, Guard, InverseCall, InverseSpec


def _registry(registry):
    from ..api import resolve_registry
    return resolve_registry(registry)


class InverseError(ValueError):
    """The inverse's precondition failed where Property 3 requires it."""


def resolve_args(call: InverseCall, params: dict[str, Any],
                 result: Any) -> tuple[Any, ...]:
    """Evaluate an inverse call's argument expressions."""
    values = []
    for arg in call.args:
        if arg.kind is ArgKind.PARAM:
            values.append(params[arg.name])
        elif arg.kind is ArgKind.NEG_PARAM:
            values.append(-params[arg.name])
        else:
            values.append(result)
    return tuple(values)


def guard_selects_then(guard: Guard, result: Any) -> bool:
    """Whether the guard routes execution to the *then* branch."""
    if guard is Guard.NONE:
        return True
    if guard is Guard.RESULT_TRUE:
        return bool(result)
    return result is not None


def apply_inverse(spec: DataStructureSpec, inverse: InverseSpec,
                  state: Record, params: dict[str, Any],
                  result: Any) -> Record:
    """Run the undo program on ``state``; raises on precondition failure."""
    calls = inverse.then if guard_selects_then(inverse.guard, result) \
        else inverse.els
    for call in calls:
        op = spec.operations[call.op]
        args = resolve_args(call, params, result)
        if not spec.precondition_holds(op, state, args):
            raise InverseError(
                f"inverse call {call.render()} precondition failed")
        state, _ = op.semantics(state, args)
    return state


@dataclass(frozen=True)
class InverseCounterexample:
    state: Record
    args: tuple[Any, ...]
    restored: Record | None
    reason: str


@dataclass
class InverseCheckResult:
    """Outcome of checking one inverse testing method over a scope."""

    inverse: InverseSpec
    cases: int = 0
    counterexamples: list[InverseCounterexample] = field(default_factory=list)
    #: Wall time of the shard that produced this result.  Not part of
    #: equality: two runs of the same obligation are the same result.
    elapsed: float = field(default=0.0, compare=False)
    #: Served from the engine's content-addressed result cache.  Excluded
    #: from repr/eq so warm and cold results stay byte-identical.
    cached: bool = field(default=False, repr=False, compare=False)

    @property
    def verified(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        status = "verified" if self.verified else "FAILED"
        return (f"{self.inverse.family}.{self.inverse.op} inverse "
                f"[{self.inverse.render()}] {status} over "
                f"{self.cases} cases in {self.elapsed:.2f}s")


def check_inverse(family: str, inverse: InverseSpec,
                  scope: Scope | None = None,
                  max_counterexamples: int = 3,
                  registry=None) -> InverseCheckResult:
    """Exhaustively check Property 3 for one inverse within a scope."""
    scope = scope or Scope()
    spec = _registry(registry).spec(family)
    op = spec.operations[inverse.op]
    result = InverseCheckResult(inverse=inverse)
    start = time.perf_counter()
    for state in spec.states(scope):
        for args in spec.arguments(op, scope):
            if not spec.precondition_holds(op, state, args):
                continue
            result.cases += 1
            mid, ret = op.semantics(state, args)
            params = {p.name: v for p, v in zip(op.params, args)}
            try:
                restored = apply_inverse(spec, inverse, mid, params, ret)
            except InverseError as exc:
                if len(result.counterexamples) < max_counterexamples:
                    result.counterexamples.append(InverseCounterexample(
                        state, args, None, str(exc)))
                continue
            if restored != state:
                if len(result.counterexamples) < max_counterexamples:
                    result.counterexamples.append(InverseCounterexample(
                        state, args, restored,
                        "final abstract state differs from initial"))
    result.elapsed = time.perf_counter() - start
    return result


def check_all_inverses(scope: Scope | None = None, registry=None,
                       jobs: int | None = None, cache=False) \
        -> list[InverseCheckResult]:
    """Check every registered inverse testing method (Table 5.10's eight
    for the default registry) through the sharded engine: one task per
    inverse, optionally parallel (``jobs``) and cache-served (``cache``)."""
    from ..engine import run_inverse_verification
    return run_inverse_verification(scope, registry=registry, jobs=jobs,
                                    cache=cache)


@dataclass
class InverseTestingMethod:
    """The generated inverse testing method (Figure 3-2)."""

    family: str
    inverse: InverseSpec
    #: Resolved through the default registry when not supplied.
    spec: DataStructureSpec | None = None

    @property
    def name(self) -> str:
        return f"{self.inverse.op.rstrip('_')}0"

    def render_java(self) -> str:
        """Render in the paper's surface style (Figures 2-3/2-4)."""
        spec = self.spec or _registry(None).spec(self.family)
        op = spec.operations[self.inverse.op]
        java_types = {"obj": "Object", "int": "int", "bool": "boolean"}
        params = ", ".join(
            f"{java_types[p.sort.value]} {p.name}" for p in op.params)
        args = ", ".join(p.name for p in op.params)
        state_eq = " & ".join(
            f"s..{f} = s..(old {f})" for f in spec.state_fields)
        frame = ", ".join(f'"s..{f}"' for f in spec.state_fields)
        call = f"s.{op.name.rstrip('_')}({args})"
        if op.result_sort is None:
            first = f"    {call};"
        else:
            rtype = java_types[op.result_sort.value]
            first = f"    {rtype} r = {call};"
        then_text = "; ".join(
            c.render("s") for c in self.inverse.then) + ";"
        if self.inverse.guard is Guard.NONE:
            undo = f"    {then_text}"
        elif self.inverse.guard is Guard.RESULT_TRUE:
            undo = f"    if (r) {{ {then_text} }}"
        else:
            els_text = "; ".join(
                c.render("s") for c in self.inverse.els) + ";"
            undo = (f"    if (r != null) {{ {then_text} }} "
                    f"else {{ {els_text} }}")
        pre_parts = ["s ~= null"]
        for p in op.params:
            if p.sort.value == "obj":
                pre_parts.append(f"{p.name} ~= null")
        return "\n".join([
            f"void {self.name}({spec.name} s"
            + (f", {params})" if params else ")"),
            f'/*: requires "{" & ".join(pre_parts)}"',
            f"    modifies {frame}",
            '    ensures "True" */',
            "{",
            first,
            undo,
            f'    /*: assert "{state_eq}" */',
            "}",
        ])


def generate_inverse_methods(registry=None) -> list[InverseTestingMethod]:
    """The generated inverse testing methods (the paper's eight for the
    default registry)."""
    registry = _registry(registry)
    return [InverseTestingMethod(family, inv, registry.spec(family))
            for family in registry.families()
            for inv in registry.inverses(family)]
