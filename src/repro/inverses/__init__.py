"""Semantic inverse operations (Sections 1.3, 2.6, 3.3, 4.2; Table 5.10)."""

from .catalog import (Arg, ArgKind, Guard, InverseCall, InverseSpec,
                      INVERSES, inverse_for, inverses_for)
from .verifier import (InverseCheckResult, InverseCounterexample,
                       InverseError, InverseTestingMethod, apply_inverse,
                       check_all_inverses, check_inverse,
                       generate_inverse_methods)

__all__ = [
    "Arg", "ArgKind", "Guard", "InverseCall", "InverseSpec", "INVERSES",
    "inverse_for", "inverses_for",
    "InverseCheckResult", "InverseCounterexample", "InverseError",
    "InverseTestingMethod", "apply_inverse", "check_all_inverses",
    "check_inverse", "generate_inverse_methods",
]
