"""The Jahob proof language and layered prover (Sections 1.4, 5.2)."""

from .engine import ProofFailure, Prover
from .commands import (Assuming, Cases, Command, Note, PickWitness,
                       ProofError, ProofOutcome, ProofScript, ProofState)
from .hints import (HardMethod, arraylist_environments, check_all_scripts,
                    command_count_table, hard_methods, make_prover,
                    script_for)

__all__ = [
    "ProofFailure", "Prover",
    "Assuming", "Cases", "Command", "Note", "PickWitness", "ProofError",
    "ProofOutcome", "ProofScript", "ProofState",
    "HardMethod", "arraylist_environments", "check_all_scripts",
    "command_count_table", "hard_methods", "make_prover", "script_for",
]
