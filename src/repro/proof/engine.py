"""The layered prover behind the proof language.

Mirrors Jahob's integrated reasoning (Section 1.4): a goal is dispatched
to a sequence of engines, each complete for its own fragment —

1. **propositional**: Boolean-abstract the formula (theory atoms become
   SAT variables) and ask the CDCL solver whether the negation is
   unsatisfiable; sound for any theory, complete for propositional
   tautologies;
2. **equality (EUF)**: congruence closure over the ground equalities in
   the premises;
3. **finite evaluation**: exhaustive evaluation over enumerated
   environments (the decision procedure within a scope) — the analogue
   of the paper's appeal to MONA/BAPA-style decision procedures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..eval.interpreter import EvalContext, EvalError, evaluate
from ..logic import terms as t
from ..solver.cnf import AtomMap, to_cnf
from ..solver.euf import CongruenceClosure
from ..solver.sat import SatSolver


@dataclass
class ProofFailure(Exception):
    """A proof step could not be discharged."""

    goal: t.Term
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        from ..logic import pretty
        return f"cannot prove {pretty(self.goal)}: {self.reason}"


@dataclass
class Prover:
    """Discharges ``assumptions |- goal`` queries.

    ``environments`` drive the finite-evaluation engine: each is a
    variable binding over which every assumption and the goal are
    evaluated.  ``observe`` dispatches observer calls.
    """

    environments: list[Mapping[str, Any]] = field(default_factory=list)
    ctx: EvalContext = field(default_factory=EvalContext)

    # -- engine 1: propositional -------------------------------------------

    def _propositional(self, assumptions: list[t.Term],
                       goal: t.Term) -> bool:
        atoms = AtomMap()
        solver = SatSolver()
        implication = goal
        for assumption in reversed(assumptions):
            implication = t.Implies(assumption, implication)
        clauses, root = to_cnf(t.Not(implication), atoms)
        for clause in clauses:
            solver.add_clause(clause)
        solver.add_clause([root])
        return not solver.solve().satisfiable

    # -- engine 2: ground equality -------------------------------------------

    def _euf(self, assumptions: list[t.Term], goal: t.Term) -> bool:
        if not isinstance(goal, t.Eq):
            return False
        cc = CongruenceClosure()
        for assumption in _flatten_conjuncts(assumptions):
            if isinstance(assumption, t.Eq):
                cc.merge(_euf_term(assumption.lhs), _euf_term(assumption.rhs))
            elif isinstance(assumption, t.Not) \
                    and isinstance(assumption.arg, t.Eq):
                cc.assert_distinct(_euf_term(assumption.arg.lhs),
                                   _euf_term(assumption.arg.rhs))
        if not cc.is_consistent():
            return True
        return cc.are_equal(_euf_term(goal.lhs), _euf_term(goal.rhs))

    # -- engine 3: finite evaluation --------------------------------------------

    def _finite(self, assumptions: list[t.Term], goal: t.Term) -> bool:
        if not self.environments:
            return False
        for env in self.environments:
            try:
                if not all(evaluate(a, env, self.ctx) for a in assumptions):
                    continue
                if not evaluate(goal, env, self.ctx):
                    return False
            except EvalError:
                return False
        return True

    # -- public API -----------------------------------------------------------------

    def prove(self, assumptions: list[t.Term], goal: t.Term) -> None:
        """Raise :class:`ProofFailure` unless some engine proves the goal."""
        if self._propositional(assumptions, goal):
            return
        if self._euf(assumptions, goal):
            return
        if self._finite(assumptions, goal):
            return
        raise ProofFailure(goal, "no engine discharged the goal")

    def proves(self, assumptions: list[t.Term], goal: t.Term) -> bool:
        try:
            self.prove(assumptions, goal)
        except ProofFailure:
            return False
        return True


def _flatten_conjuncts(formulas: Iterable[t.Term]) -> list[t.Term]:
    flat: list[t.Term] = []
    stack = list(formulas)
    while stack:
        f = stack.pop()
        if isinstance(f, t.And):
            stack.extend(f.args)
        else:
            flat.append(f)
    return flat


def _euf_term(term: t.Term):
    """Encode a logic term as a hashable EUF node."""
    if isinstance(term, t.Var):
        return ("var", term.name)
    if isinstance(term, t.IntConst):
        return ("int", term.value)
    if isinstance(term, t.ObjConst):
        return ("obj", term.name)
    if isinstance(term, t.Null):
        return ("null",)
    if isinstance(term, t.BoolConst):
        return ("bool", term.value)
    children = tuple(_euf_term(c) for c in term.children())
    return (type(term).__name__,) + children
