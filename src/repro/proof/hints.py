"""Proof scripts for the hard ArrayList testing methods (Section 5.2.1,
Table 5.9).

In the paper, 57 of the 486 generated ArrayList commutativity testing
methods do not verify automatically; Jahob needs 201 proof-language
commands (128 ``note``, 51 ``assuming``, 22 ``pickWitness``) falling
into four categories, all revolving around existentially quantified
``indexOf``/``lastIndexOf`` facts and index shifting.

Our symbolic backend is a decision procedure for the fragment, so no
method *requires* hints — but the mechanism is reproduced faithfully:
this module reconstructs the four categories as machine-checked proof
scripts for the key lemmas the paper describes (e.g. the contraposition
"if the element is present initially, it is present after the insert",
proved with ``pickWitness`` + shifted-position ``note``s), maps them to
the 57 method names, and reports the command-count accounting that
Table 5.9 measures.  EXPERIMENTS.md records both counts side by side.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

from ..eval.interpreter import EvalContext
from ..logic import parse_formula
from ..logic.sorts import Sort
from ..logic.symbols import SymbolTable
from .commands import Assuming, Note, PickWitness, ProofOutcome, ProofScript
from .engine import Prover

_VARS = {
    "s": Sort.SEQ, "i": Sort.INT, "v": Sort.OBJ, "v2": Sort.OBJ,
    "w": Sort.INT,
}


def _table(extra: dict[str, Sort] | None = None) -> SymbolTable:
    merged = dict(_VARS)
    if extra:
        merged.update(extra)
    return SymbolTable(vars=merged)


def _f(text: str, extra: dict[str, Sort] | None = None):
    return parse_formula(text, _table(extra))


def arraylist_environments(max_len: int = 3,
                           tokens: tuple[str, ...] = ("a", "b", "c")) \
        -> list[dict]:
    """Finite environments for checking sequence lemmas: all sequences up
    to ``max_len`` with all argument instantiations."""
    envs = []
    for n in range(max_len + 1):
        for elems in itertools.product(tokens, repeat=n):
            for i in range(n + 1):
                for v in tokens:
                    for v2 in tokens:
                        for w in range(-1, n + 1):
                            envs.append({"s": elems, "i": i, "v": v,
                                         "v2": v2, "w": w})
    return envs


def make_prover(max_len: int = 3) -> Prover:
    """A prover whose finite engine ranges over canonical sequences."""
    return Prover(environments=arraylist_environments(max_len),
                  ctx=EvalContext())


# ---------------------------------------------------------------------------
# The four lemma scripts of Section 5.2.1
# ---------------------------------------------------------------------------

_PRESENT = "EX j. 0 <= j & j < len(s) & at(s, j) = v2"
_PRESENT_INS = ("EX j. 0 <= j & j < len(ins(s, i, v)) & "
                "at(ins(s, i, v), j) = v2")


def category1_script() -> ProofScript:
    """Soundness of add_at/remove_at with indexOf/lastIndexOf: the
    contraposition proof — if v2 is present initially it is present in
    the intermediate state, with the witness's shifted position noted."""
    premises = (_f("0 <= i & i <= len(s)"), _f(_PRESENT))
    goal = _f(_PRESENT_INS)
    return ProofScript(
        name="absent_after_insert_implies_absent_before",
        premises=premises,
        goal=goal,
        commands=(
            PickWitness(_f(_PRESENT), "w"),
            # The witness below the insertion point keeps its position...
            Assuming(
                _f("w < i"),
                _f("EX j. 0 <= j & j < len(ins(s, i, v)) & "
                   "at(ins(s, i, v), j) = v2"),
                body=(
                    Note(_f("at(ins(s, i, v), w) = v2")),
                    Note(_f("w < len(ins(s, i, v))")),
                ),
            ),
            # ... and a witness at or above it shifts up by one.
            Assuming(
                _f("i <= w"),
                _f("EX j. 0 <= j & j < len(ins(s, i, v)) & "
                   "at(ins(s, i, v), j) = v2"),
                body=(
                    Note(_f("at(ins(s, i, v), w + 1) = v2")),
                    Note(_f("0 <= w + 1 & w + 1 < len(ins(s, i, v))")),
                ),
            ),
        ),
    )


def category2_script() -> ProofScript:
    """Soundness of remove_at with indexOf: the adjacent-duplicate case —
    if positions i and i+1 both hold v2, removing position i leaves the
    second occurrence at position i (the ``note`` the paper adds)."""
    premises = (
        _f("0 <= i & i + 1 < len(s)"),
        _f("at(s, i) = v2 & at(s, i + 1) = v2"),
    )
    goal = _f("at(del_(s, i), i) = v2")
    return ProofScript(
        name="adjacent_duplicate_survives_removal",
        premises=premises,
        goal=goal,
        commands=(
            Note(_f("i < len(del_(s, i))")),
            Note(_f("at(del_(s, i), i) = at(s, i + 1)")),
        ),
    )


def category3_script() -> ProofScript:
    """Completeness of update/update combinations: exhibit an element
    present in one final abstract state but not the other (the paper's
    ``assuming`` + ``note`` pattern identifying the differing index)."""
    premises = (
        _f("0 <= i & i < len(s)"),
        _f("at(s, i) ~= v"),
    )
    goal = _f("EX j. 0 <= j & j < len(upd(s, i, v)) & "
              "at(upd(s, i, v), j) ~= at(s, j)")
    return ProofScript(
        name="update_changes_some_position",
        premises=premises,
        goal=goal,
        commands=(
            Assuming(
                _f("at(s, i) ~= v"),
                _f("at(upd(s, i, v), i) ~= at(s, i)"),
                body=(Note(_f("at(upd(s, i, v), i) = v")),),
            ),
        ),
    )


def category4_script() -> ProofScript:
    """Completeness of add_at/remove_at with indexOf: the relative-
    position case analysis — when the first occurrence of v2 sits at or
    above the insertion point, its index shifts up (the position
    ``note`` the paper adds after the ``assuming``)."""
    premises = (
        _f("0 <= i & i <= len(s)"),
        _f("0 <= idx(s, v2)"),
    )
    goal = _f("i <= idx(s, v2) --> idx(ins(s, i, v), v2) = idx(s, v2) + 1 "
              "| at(ins(s, i, v), i) = v2")
    return ProofScript(
        name="index_shift_under_insertion",
        premises=premises,
        goal=goal,
        commands=(
            PickWitness(
                _f("EX j. 0 <= j & j < len(s) & at(s, j) = v2"), "w"),
            Assuming(
                _f("i <= idx(s, v2) & v ~= v2"),
                _f("idx(ins(s, i, v), v2) = idx(s, v2) + 1"),
                body=(
                    Note(_f("at(ins(s, i, v), idx(s, v2) + 1) = v2")),
                ),
            ),
        ),
    )


# ---------------------------------------------------------------------------
# The 57 hard methods (reconstruction of Section 5.2.1's inventory)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HardMethod:
    """One of the 57 ArrayList testing methods needing proof guidance."""

    m1: str
    m2: str
    kind: str       # "between" or "after"
    direction: str  # "s" or "c"
    category: int

    @property
    def method_name(self) -> str:
        # Keep the discard-variant marker: the paper disambiguates the
        # two variants with a numeric id, we keep the trailing
        # underscore instead ("remove_at_" vs "remove_at").
        return f"{self.m1}.{self.m2}.{self.kind}.{self.direction}"


def _cat(ms1: tuple[str, ...], ms2: tuple[str, ...], kinds: tuple[str, ...],
         direction: str, category: int) -> list[HardMethod]:
    return [HardMethod(m1, m2, kind, direction, category)
            for m1 in ms1 for m2 in ms2 for kind in kinds]


@lru_cache(maxsize=None)
def hard_methods() -> tuple[HardMethod, ...]:
    """The 57 hard ArrayList methods, by category (12 + 8 + 20 + 17)."""
    methods: list[HardMethod] = []
    # Category 1 (12): soundness, inserts/removals vs indexOf/lastIndexOf.
    methods += _cat(("add_at", "remove_at", "remove_at_"),
                    ("indexOf", "lastIndexOf"),
                    ("between", "after"), "s", 1)
    # Category 2 (8): soundness, indexOf/lastIndexOf before removals.
    methods += _cat(("indexOf", "lastIndexOf"),
                    ("remove_at", "remove_at_"),
                    ("between", "after"), "s", 2)
    # Category 3 (20): completeness, update/update combinations.
    pairs = (("add_at", "add_at"), ("add_at", "remove_at"),
             ("add_at", "set"), ("remove_at", "add_at"),
             ("remove_at", "remove_at"), ("remove_at", "set"),
             ("set", "add_at"), ("set", "remove_at"), ("set", "set"),
             ("remove_at_", "add_at"))
    methods += [HardMethod(m1, m2, kind, "c", 3)
                for m1, m2 in pairs for kind in ("between", "after")]
    # Category 4 (17): completeness, inserts/removals vs indexOf family.
    methods += _cat(("add_at", "remove_at", "remove_at_"),
                    ("indexOf", "lastIndexOf"), ("between", "after"), "c", 4)
    methods += _cat(("indexOf", "lastIndexOf"), ("remove_at",),
                    ("between", "after"), "c", 4)
    methods.append(HardMethod("indexOf", "add_at", "after", "c", 4))
    assert len(methods) == 57, len(methods)
    return tuple(methods)


_CATEGORY_SCRIPTS = {
    1: category1_script,
    2: category2_script,
    3: category3_script,
    4: category4_script,
}


def script_for(method: HardMethod) -> ProofScript:
    """The lemma script guiding one hard method's verification."""
    return _CATEGORY_SCRIPTS[method.category]()


def check_all_scripts(max_len: int = 3) -> list[ProofOutcome]:
    """Check the four category scripts against the layered prover."""
    prover = make_prover(max_len)
    return [builder().check(prover)
            for builder in _CATEGORY_SCRIPTS.values()]


def command_count_table() -> dict[str, int]:
    """Total proof-language commands over all 57 methods (our analogue of
    Table 5.9; the paper reports note=128, assuming=51, pickWitness=22,
    total=201)."""
    totals: dict[str, int] = {"note": 0, "assuming": 0, "pickWitness": 0}
    for method in hard_methods():
        for name, count in script_for(method).command_counts().items():
            totals[name] = totals.get(name, 0) + count
    totals["total"] = sum(totals.values())
    return totals
