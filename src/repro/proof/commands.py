"""The Jahob proof language: ``note``, ``assuming``, ``pickWitness``
(Section 5.2 and Table 5.9).

A :class:`ProofScript` is a sequence of commands executed against a
:class:`ProofState` (assumptions + pending goal).  Each command is
*checked*: ``note`` goals must be provable from the current assumptions
by the layered prover, ``assuming`` blocks must establish their local
goal, and ``pickWitness`` requires an existential assumption to
instantiate.  A script that runs to completion constitutes a machine-
checked proof of the original goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..logic import free_vars, pretty
from ..logic import terms as t
from ..logic.substitution import substitute
from .engine import ProofFailure, Prover


class ProofError(ValueError):
    """A proof command was used incorrectly."""


@dataclass
class ProofState:
    """Assumptions in scope and the goal still to be established."""

    assumptions: list[t.Term]
    goal: t.Term
    fresh_counter: int = 0

    def fresh_name(self, base: str) -> str:
        self.fresh_counter += 1
        return f"{base}_{self.fresh_counter}"


class Command:
    """Base class of proof commands."""

    name = "command"

    def run(self, state: ProofState, prover: Prover) -> None:
        raise NotImplementedError


@dataclass
class Note(Command):
    """``note`` — prove an intermediate formula and add it as a lemma
    (the paper: "the developer can identify a lemma structure that helps
    Jahob find the proof")."""

    formula: t.Term
    name = "note"

    def run(self, state: ProofState, prover: Prover) -> None:
        prover.prove(state.assumptions, self.formula)
        state.assumptions.append(self.formula)


@dataclass
class Assuming(Command):
    """``assuming`` — prove ``hypothesis --> conclusion`` by assuming the
    hypothesis, running the sub-commands, and proving the conclusion."""

    hypothesis: t.Term
    conclusion: t.Term
    body: Sequence[Command] = field(default_factory=tuple)
    name = "assuming"

    def run(self, state: ProofState, prover: Prover) -> None:
        inner = ProofState(
            assumptions=state.assumptions + [self.hypothesis],
            goal=self.conclusion,
            fresh_counter=state.fresh_counter)
        for command in self.body:
            command.run(inner, prover)
        prover.prove(inner.assumptions, self.conclusion)
        state.fresh_counter = inner.fresh_counter
        state.assumptions.append(t.implies(self.hypothesis, self.conclusion))


@dataclass
class PickWitness(Command):
    """``pickWitness`` — from an assumption ``EX x. P(x)``, name a
    witness ``w`` and add ``P(w)``."""

    existential: t.Term
    witness: str
    name = "pickWitness"

    def run(self, state: ProofState, prover: Prover) -> None:
        if not isinstance(self.existential, t.Exists):
            raise ProofError(
                f"pickWitness needs an existential, got "
                f"{pretty(self.existential)}")
        if not any(a == self.existential for a in state.assumptions):
            # The existential itself must be provable before use.
            prover.prove(state.assumptions, self.existential)
        bound = self.existential.var
        if any(self.witness in free_vars(a) for a in state.assumptions) \
                or self.witness in free_vars(state.goal):
            raise ProofError(f"witness name {self.witness!r} is not fresh")
        witness_var = t.Var(self.witness, bound.var_sort)
        instantiated = substitute(self.existential.body,
                                  {bound.name: witness_var})
        state.assumptions.append(instantiated)


@dataclass
class Cases(Command):
    """Case split: prove the goal-so-far under each alternative.

    Requires the disjunction of the alternatives to be provable; each
    branch must then establish the given conclusion.
    """

    alternatives: tuple[t.Term, ...]
    conclusion: t.Term
    branches: tuple[Sequence[Command], ...] = ()
    name = "cases"

    def run(self, state: ProofState, prover: Prover) -> None:
        prover.prove(state.assumptions, t.disj(*self.alternatives))
        branches = self.branches or tuple(() for _ in self.alternatives)
        if len(branches) != len(self.alternatives):
            raise ProofError("one command list per alternative required")
        for alt, body in zip(self.alternatives, branches):
            inner = ProofState(
                assumptions=state.assumptions + [alt],
                goal=self.conclusion,
                fresh_counter=state.fresh_counter)
            for command in body:
                command.run(inner, prover)
            prover.prove(inner.assumptions, self.conclusion)
            state.fresh_counter = inner.fresh_counter
        state.assumptions.append(self.conclusion)


@dataclass
class ProofScript:
    """A named proof: premises, goal, and the command sequence."""

    name: str
    premises: tuple[t.Term, ...]
    goal: t.Term
    commands: tuple[Command, ...]

    def check(self, prover: Prover) -> "ProofOutcome":
        state = ProofState(assumptions=list(self.premises), goal=self.goal)
        try:
            for command in self.commands:
                command.run(state, prover)
            prover.prove(state.assumptions, state.goal)
        except (ProofFailure, ProofError) as exc:
            return ProofOutcome(self, False, str(exc))
        return ProofOutcome(self, True, "")

    def command_counts(self) -> dict[str, int]:
        """Counts per command name, recursively (Table 5.9 accounting)."""
        counts: dict[str, int] = {}

        def visit(commands: Sequence[Command]) -> None:
            for command in commands:
                counts[command.name] = counts.get(command.name, 0) + 1
                if isinstance(command, Assuming):
                    visit(command.body)
                elif isinstance(command, Cases):
                    for body in command.branches:
                        visit(body)

        visit(self.commands)
        return counts


@dataclass
class ProofOutcome:
    script: ProofScript
    ok: bool
    message: str

    def summary(self) -> str:
        status = "checked" if self.ok else f"FAILED ({self.message})"
        return f"proof {self.script.name}: {status}"
