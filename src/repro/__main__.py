"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``verify [--name NAME] [--backend symbolic|bounded]`` — verify the
  commutativity conditions of one data structure (or all six);
- ``inverses`` — verify the eight inverse operations (Table 5.10);
- ``tables [--table N]`` — print the paper's evaluation tables;
- ``show --name NAME --m1 OP --m2 OP [--kind K]`` — print a condition
  and its generated testing methods (Figure 2-2 style).
"""

from __future__ import annotations

import argparse
import sys

from .commutativity import (Kind, condition, generate_methods,
                            verify_all, verify_data_structure)
from .eval import Scope
from .inverses import check_all_inverses
from .reporting.tables import TableIndex

ALL_NAMES = ("Accumulator", "ListSet", "HashSet", "AssociationList",
             "HashTable", "ArrayList")


def _cmd_verify(args: argparse.Namespace) -> int:
    scope = Scope(max_seq_len=args.max_seq_len)
    failed = 0
    if args.name:
        reports = {args.name: verify_data_structure(
            args.name, scope, backend=args.backend)}
    else:
        reports = verify_all(scope, backend=args.backend)
    for report in reports.values():
        print(report.summary())
        for failure in report.failures():
            failed += 1
            print("  ", failure.summary())
            for ce in failure.counterexamples:
                print("    ", ce)
    return 1 if failed else 0


def _cmd_inverses(args: argparse.Namespace) -> int:
    scope = Scope(max_seq_len=args.max_seq_len)
    failed = 0
    for result in check_all_inverses(scope):
        print(result.summary())
        if not result.verified:
            failed += 1
    return 1 if failed else 0


def _cmd_tables(args: argparse.Namespace) -> int:
    tables = TableIndex.all()
    wanted = [args.table] if args.table else list(tables)
    for table_id in wanted:
        render = tables.get(table_id)
        if render is None:
            print(f"unknown table {table_id!r}; "
                  f"choose from {', '.join(tables)}", file=sys.stderr)
            return 2
        print(f"=== Table {table_id} ===")
        result = render()
        if isinstance(result, tuple):  # table 5.8 returns (text, reports)
            result = result[0]
        print(result)
        print()
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    kinds = [Kind(args.kind)] if args.kind else list(Kind)
    for kind in kinds:
        cond = condition(args.name, args.m1, args.m2, kind)
        print(f"[{kind}] {cond.text}")
        if args.methods:
            for method in generate_methods([cond]):
                print()
                print(method.render_java())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify commutativity conditions")
    verify.add_argument("--name", choices=ALL_NAMES)
    verify.add_argument("--backend", default="symbolic",
                        choices=("symbolic", "bounded"))
    verify.add_argument("--max-seq-len", type=int, default=3)
    verify.set_defaults(func=_cmd_verify)

    inverses = sub.add_parser("inverses", help="verify inverse operations")
    inverses.add_argument("--max-seq-len", type=int, default=3)
    inverses.set_defaults(func=_cmd_inverses)

    tables = sub.add_parser("tables", help="print the evaluation tables")
    tables.add_argument("--table", help="e.g. 5.2 (default: all)")
    tables.set_defaults(func=_cmd_tables)

    show = sub.add_parser("show", help="print one condition + methods")
    show.add_argument("--name", required=True)
    show.add_argument("--m1", required=True)
    show.add_argument("--m2", required=True)
    show.add_argument("--kind", choices=[k.value for k in Kind])
    show.add_argument("--methods", action="store_true")
    show.set_defaults(func=_cmd_show)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
