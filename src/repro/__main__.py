"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``verify [--name NAME] [--backend symbolic|bounded]`` — verify the
  commutativity conditions of one data structure (or all registered);
- ``inverses`` — verify the registered inverse operations (Table 5.10);
- ``tables [--table N]`` — print the paper's evaluation tables;
- ``show --name NAME --m1 OP --m2 OP [--kind K]`` — print a condition
  and its generated testing methods (Figure 2-2 style);
- ``list`` — print the registered data structures, their specification
  families, and condition/inverse counts.

Every command resolves names through a :class:`repro.api.Registry`
(:data:`repro.api.DEFAULT_REGISTRY` unless :func:`main` is given one),
so structures registered by downstream code appear here like built-ins.
"""

from __future__ import annotations

import argparse
import sys

from .api import DEFAULT_REGISTRY, Registry, UnknownNameError
from .commutativity import Kind, generate_methods
from .commutativity.verifier import verify_all, verify_data_structure
from .eval import Scope
from .inverses import check_all_inverses
from .reporting.tables import TableIndex

#: Back-compat: the default registry's structure names.
ALL_NAMES = DEFAULT_REGISTRY.names()


def _cmd_verify(args: argparse.Namespace, registry: Registry) -> int:
    scope = Scope(max_seq_len=args.max_seq_len)
    failed = 0
    if args.name:
        reports = {args.name: verify_data_structure(
            args.name, scope, backend=args.backend, registry=registry)}
    else:
        reports = verify_all(scope, backend=args.backend, registry=registry)
    for report in reports.values():
        print(report.summary())
        for failure in report.failures():
            failed += 1
            print("  ", failure.summary())
            for ce in failure.counterexamples:
                print("    ", ce)
    return 1 if failed else 0


def _cmd_inverses(args: argparse.Namespace, registry: Registry) -> int:
    scope = Scope(max_seq_len=args.max_seq_len)
    failed = 0
    for result in check_all_inverses(scope, registry=registry):
        print(result.summary())
        if not result.verified:
            failed += 1
    return 1 if failed else 0


def _cmd_tables(args: argparse.Namespace, registry: Registry) -> int:
    tables = TableIndex.all()
    wanted = [args.table] if args.table else list(tables)
    for table_id in wanted:
        render = tables.get(table_id)
        if render is None:
            print(f"unknown table {table_id!r}; "
                  f"choose from {', '.join(tables)}", file=sys.stderr)
            return 2
        print(f"=== Table {table_id} ===")
        result = render()
        if isinstance(result, tuple):  # table 5.8 returns (text, reports)
            result = result[0]
        print(result)
        print()
    return 0


def _cmd_show(args: argparse.Namespace, registry: Registry) -> int:
    kinds = [Kind(args.kind)] if args.kind else list(Kind)
    for kind in kinds:
        cond = registry.condition(args.name, args.m1, args.m2, kind)
        print(f"[{kind}] {cond.text}")
        if args.methods:
            for method in generate_methods([cond]):
                print()
                print(method.render_java())
        print()
    return 0


def _cmd_list(args: argparse.Namespace, registry: Registry) -> int:
    headers = ["name", "family", "conditions", "inverses", "implementation"]
    rows = [[entry.name, entry.family, str(entry.condition_count),
             str(entry.inverse_count),
             entry.implementation.__name__ if entry.implementation else "-"]
            for entry in registry.describe()]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    inverse_total = sum(len(registry.inverses(family))
                        for family in registry.families())
    print(f"\n{len(rows)} structures, "
          f"{registry.total_condition_count()} conditions, "
          f"{inverse_total} inverse operations")
    return 0


def build_parser(registry: Registry | None = None) -> argparse.ArgumentParser:
    registry = registry if registry is not None else DEFAULT_REGISTRY
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify commutativity conditions")
    verify.add_argument("--name", choices=registry.names())
    verify.add_argument("--backend", default="symbolic",
                        choices=("symbolic", "bounded"))
    verify.add_argument("--max-seq-len", type=int, default=3)
    verify.set_defaults(func=_cmd_verify)

    inverses = sub.add_parser("inverses", help="verify inverse operations")
    inverses.add_argument("--max-seq-len", type=int, default=3)
    inverses.set_defaults(func=_cmd_inverses)

    tables = sub.add_parser("tables", help="print the evaluation tables")
    tables.add_argument("--table", help="e.g. 5.2 (default: all)")
    tables.set_defaults(func=_cmd_tables)

    show = sub.add_parser("show", help="print one condition + methods")
    show.add_argument("--name", required=True)
    show.add_argument("--m1", required=True)
    show.add_argument("--m2", required=True)
    show.add_argument("--kind", choices=[k.value for k in Kind])
    show.add_argument("--methods", action="store_true")
    show.set_defaults(func=_cmd_show)

    list_cmd = sub.add_parser("list", help="list registered data structures")
    list_cmd.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None,
         registry: Registry | None = None) -> int:
    registry = registry if registry is not None else DEFAULT_REGISTRY
    args = build_parser(registry).parse_args(argv)
    try:
        return args.func(args, registry)
    except UnknownNameError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
