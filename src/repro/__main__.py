"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``verify [--name NAME] [--backend symbolic|bounded] [--jobs N]
  [--no-cache]`` — verify the commutativity conditions of one data
  structure (or all registered) through the sharded engine;
- ``inverses`` — verify the registered inverse operations (Table 5.10);
- ``run --name NAME [--policy P] [--profile P] [--distribution D]
  [--workers N] [--stable] [--compiled]`` — generate a seeded
  workload and execute it speculatively (all three policies and a
  comparison table when ``--policy`` is omitted); ``--stable``
  compiles drift-stable conditions first and arms the gatekeeper's
  drift guard with them; ``--compiled`` lowers the admission
  vocabulary into closures at arm time (:mod:`repro.compiled`);
- ``stability [--name NAME]`` — compile every between condition into a
  drift-stability verdict (stable / weakened / fragile) plus, where
  possible, a drift-stable weakening, through the cached engine;
- ``bench [--suite verify|runtime|nogil] [--stable] [--compiled]
  [--seeds N]`` — ``verify``: time a cold verification sweep per
  structure into ``BENCH_verify.json``; ``runtime``: sweep the
  throughput harness over every structure and policy into
  ``BENCH_runtime.json`` (``--stable`` adds the drift-admission gate
  on preloaded hot-key workloads, ``--compiled`` the compiled-vs-
  interpreted admission gate, ``--seeds N`` the p50/p95 seed matrix);
  ``nogil``: the informational free-threaded scaling sweep into
  ``BENCH_nogil.json``; ``service``: the client/server admission bench
  into ``BENCH_service.json`` (four-leg decision identity across
  local/served/cluster deployments, cross-process latency/throughput,
  /metrics, and — with ``--soak`` — the saturation-knee gate: a
  multi-worker cluster must out-knee the single process);
  verify/runtime optionally gate against a checked-in baseline;
- ``serve [--host H] [--port P] [--workers N]`` — run the admission
  server (frame RPCs + HTTP ``/metrics`` on one port) until SIGTERM,
  then drain; ``--workers N > 1`` spawns a shard-partitioned cluster
  (shard ``s`` owned by worker ``s % N``) on ephemeral ports;
- ``tables [--table N]`` — print the paper's evaluation tables;
- ``show --name NAME --m1 OP --m2 OP [--kind K]`` — print a condition
  and its generated testing methods (Figure 2-2 style);
- ``list`` — print the registered data structures, their specification
  families, and condition/inverse counts.

Every command resolves names through a :class:`repro.api.Registry`
(:data:`repro.api.DEFAULT_REGISTRY` unless :func:`main` is given one),
so structures registered by downstream code appear here like built-ins.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .api import DEFAULT_REGISTRY, Registry, UnknownNameError
from .commutativity import Kind, generate_methods
from .commutativity.verifier import verify_all, verify_data_structure
from .engine import ENGINE_VERSION, resolve_jobs
from .eval import Scope, paper_scope
from .inverses import check_all_inverses
from .reporting.tables import TableIndex, task_timing_table

#: Back-compat: the default registry's structure names.
ALL_NAMES = DEFAULT_REGISTRY.names()


def _cmd_verify(args: argparse.Namespace, registry: Registry) -> int:
    scope = Scope(max_seq_len=args.max_seq_len)
    cache = not args.no_cache
    failed = 0
    if args.name:
        reports = {args.name: verify_data_structure(
            args.name, scope, backend=args.backend, registry=registry,
            jobs=args.jobs, cache=cache)}
    else:
        reports = verify_all(scope, backend=args.backend, registry=registry,
                             jobs=args.jobs, cache=cache)
    for report in reports.values():
        print(report.summary())
        if report.cache_hits:
            print(f"   cache: {report.cache_hits} of "
                  f"{len(report.task_timings)} task shards served from "
                  f".repro-cache/")
        for failure in report.failures():
            failed += 1
            print("  ", failure.summary())
            for ce in failure.counterexamples:
                print("    ", ce)
    return 1 if failed else 0


def _cmd_inverses(args: argparse.Namespace, registry: Registry) -> int:
    scope = Scope(max_seq_len=args.max_seq_len)
    failed = 0
    for result in check_all_inverses(scope, registry=registry,
                                     jobs=args.jobs,
                                     cache=not args.no_cache):
        print(result.summary())
        if not result.verified:
            failed += 1
    return 1 if failed else 0


#: Structures whose baseline time is below this floor are compared
#: against the floor instead (micro-timings are pure noise, and the
#: baseline was recorded on different hardware than CI runs on).
BENCH_FLOOR_SECONDS = 0.1


#: The verification scope stability compilation uses for runtime
#: consumption.  The full paper scope, NOT its smoke-test reduction: the
#: quantified re-verifier needs a scope that can *represent* the
#: refuting cases (at ``max_seq_len=2`` no list is long enough to run
#: ``remove_at(i1); get(i2)`` with ``i1 < i2``, and an unsound index
#: weakening would survive).  Compiled verdicts are served from
#: ``.repro-cache/`` on reruns.
STABILITY_SCOPE_SEQ_LEN = 3


def _compile_stable(registry: Registry, names, jobs=None,
                    cache=True, max_seq_len: int = STABILITY_SCOPE_SEQ_LEN,
                    prover: bool = False, abduce: bool = False):
    """Compile and register drift-stable conditions for ``names``."""
    from .engine import run_stability_compilation
    scope = paper_scope(max_seq_len=max_seq_len)
    reports = run_stability_compilation(scope, names=names,
                                        registry=registry, jobs=jobs,
                                        cache=cache,
                                        prover=prover or abduce,
                                        abduce=abduce)
    for name, report in reports.items():
        registry.register_stable_conditions(
            name, report.stable_conditions(registry.spec(name)),
            replace=True)
    return reports


def _cmd_stability(args: argparse.Namespace, registry: Registry) -> int:
    """Compile drift-stability verdicts and print the per-pair table."""
    from .reporting.tables import stability_table
    names = (args.name,) if args.name else None
    reports = _compile_stable(registry, names, jobs=args.jobs,
                              cache=not args.no_cache,
                              max_seq_len=args.max_seq_len,
                              prover=args.prover, abduce=args.abduce)
    print(stability_table(reports))
    print()
    for report in reports.values():
        line = report.summary()
        if report.cache_hits:
            line += (f" [{report.cache_hits}/"
                     f"{len(report.task_timings)} groups cached]")
        print(line)
    if args.prover or args.abduce:
        from .prover import prover_fingerprint
        fp = prover_fingerprint()
        countermodels = sum(
            1 for report in reports.values() for pair in report.pairs
            for c in pair.candidates if c.countermodel is not None)
        print(f"prover: backend {fp['backend']} v{fp['prover_version']}"
              f", z3 {'available' if fp['external']['z3'] else 'absent'}"
              f", {countermodels} countermodels")
    if args.abduce:
        _print_abduction_trace(reports)
    return 0


def _print_abduction_trace(reports) -> None:
    """The ``--abduce`` trace: per-structure lattice-walk statistics,
    then one compact line per prover-refuted abduced candidate with its
    countermodel (root state, drift, arguments, first result) — the
    loop's debugging surface."""
    for name, report in reports.items():
        stats = [pair.synthesis for pair in report.pairs
                 if pair.synthesis]
        if not stats:
            continue
        print(f"abduce: {name}: "
              f"{sum(s['checked'] for s in stats)} candidates checked, "
              f"{sum(s['pruned'] for s in stats)} pruned by "
              f"countermodels, "
              f"{sum(s['refuted'] for s in stats)} prover-refuted, "
              f"{sum(s['armed'] for s in stats)} armed over "
              f"{sum(s['rounds'] for s in stats)} rounds")
    for name, report in reports.items():
        for pair in report.pairs:
            for c in pair.candidates:
                if c.origin != "abduced" or c.countermodel is None:
                    continue
                cm = c.countermodel
                args1 = ", ".join(cm.get("args1", ()))
                args2 = ", ".join(cm.get("args2", ()))
                print(f"abduce: refuted {name} {pair.pair_label} "
                      f"[{c.text}]: root={cm.get('root')} "
                      f"drift={cm.get('drift')} "
                      f"args=({args1});({args2}) r1={cm.get('r1')}")


def _cmd_run(args: argparse.Namespace, registry: Registry) -> int:
    """Generate a seeded workload and execute it speculatively."""
    from .reporting.tables import (drift_admission_table,
                                   policy_comparison_table,
                                   shard_contention_table,
                                   workload_report_table)
    from .runtime.gatekeeper import POLICIES
    from .workloads import ThroughputHarness, WorkloadSpec
    workload = WorkloadSpec(
        profile=args.profile, distribution=args.distribution,
        transactions=args.txns, ops_per_transaction=args.ops,
        key_space=args.key_space, value_space=args.value_space,
        preload=args.preload, seed=args.seed)
    # --prover and --abduce both imply --stable
    stable = args.stable or args.prover or args.abduce
    if stable:
        _compile_stable(registry, (args.name,), prover=args.prover,
                        abduce=args.abduce)
    harness = ThroughputHarness(registry=registry, workers=args.workers,
                                batch=args.batch, shards=args.shards,
                                adaptive=args.adaptive,
                                stable=stable, compiled=args.compiled)
    policies = (args.policy,) if args.policy else POLICIES
    runs = [harness.run_one(args.name, workload, policy=policy,
                            conflict_mode=args.conflict_mode)
            for policy in policies]
    print(workload_report_table(runs))
    if len(runs) > 1:
        print()
        print(policy_comparison_table(runs))
    if args.shard_stats:
        print()
        print(shard_contention_table(runs))
    if stable:
        print()
        print(drift_admission_table(runs))
    if args.txn_stats:
        for run in runs:
            aborted = run.report.ever_aborted
            print(f"\n{run.policy}: per-transaction aborts "
                  f"{run.report.txn_aborts} "
                  f"(ever aborted: {aborted or 'none'})")
    if args.compiled:
        for run in runs:
            print(f"run: {run.policy}: compiled_hits={run.compiled_hits} "
                  f"eval_errors={run.eval_errors}")
    not_serializable = [run for run in runs if not run.serializable]
    for run in not_serializable:
        print(f"run: NOT SERIALIZABLE: {run.summary()}", file=sys.stderr)
    return 1 if not_serializable else 0


def _cmd_bench(args: argparse.Namespace, registry: Registry) -> int:
    if args.suite == "runtime":
        return _cmd_bench_runtime(args, registry)
    if args.suite == "nogil":
        return _cmd_bench_nogil(args, registry)
    if args.suite == "service":
        return _cmd_bench_service(args, registry)
    return _cmd_bench_verify(args, registry)


def _cmd_bench_service(args: argparse.Namespace,
                       registry: Registry) -> int:
    """Client/server admission bench -> ``BENCH_service.json``.

    Starts an admission-server subprocess, runs the four-leg
    decision-identity sweep over every runnable builtin (local,
    single-process served, 2- and 4-worker clusters — all digests must
    be byte-identical), fans out ``--service-workers`` client
    processes for the cross-process throughput/latency leg, scrapes
    ``/metrics``, and SIGTERMs the server (graceful drain).  With
    ``--soak`` it also ramps looping client processes to the
    saturation knee against the single process and against a
    ``--cluster-workers`` cluster; the cluster's knee must strictly
    beat the single process's committed-ops/s.  Gated: identity
    divergence, a client error, a missing metrics counter, zero
    admission RPCs, or a losing cluster knee all fail the bench.
    """
    from .reporting.tables import service_latency_table, service_soak_table
    from .service import bench as service_bench
    from .service.protocol import PROTOCOL_VERSION
    output = args.output or "BENCH_service.json"
    workers = max(2, args.service_workers)
    start = time.perf_counter()
    process, port = service_bench.start_server()
    try:
        identity = service_bench.identity_leg(registry, "127.0.0.1",
                                              port)
        throughput = service_bench.throughput_leg("127.0.0.1", port,
                                                  workers)
        metrics = service_bench.metrics_leg("127.0.0.1", port)
        soak_single = service_bench.soak_leg(
            "127.0.0.1", port, point_seconds=args.soak_seconds,
            time_budget=args.soak_budget) if args.soak else None
    finally:
        service_bench.stop_server(process)
    soak = None
    if args.soak:
        from .service.cluster import start_cluster, stop_cluster
        processes, ports = start_cluster(args.cluster_workers)
        try:
            soak_cluster = service_bench.soak_leg(
                "127.0.0.1", ports[0],
                point_seconds=args.soak_seconds,
                time_budget=args.soak_budget)
        finally:
            stop_cluster(processes)
        soak = {
            "cluster_workers": args.cluster_workers,
            "point_seconds": args.soak_seconds,
            "single": soak_single,
            "cluster": soak_cluster,
            "cluster_beats_single": bool(
                soak_single["knee"] and soak_cluster["knee"]
                and soak_cluster["knee"]["committed_ops_per_second"]
                > soak_single["knee"]["committed_ops_per_second"]),
        }
    payload = {
        "schema": 2,
        "suite": "service",
        "python": sys.version,
        "protocol_version": PROTOCOL_VERSION,
        "shards": service_bench.BENCH_SHARDS,
        "service_workers": workers,
        "cluster_axis": list(service_bench.CLUSTER_AXIS),
        "identity": identity,
        "throughput": throughput,
        "metrics": metrics,
        "soak": soak,
        "wall_seconds": round(time.perf_counter() - start, 4),
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench: service suite, {workers} client processes against "
          f"one server (shards={service_bench.BENCH_SHARDS}, cluster "
          f"axis {list(service_bench.CLUSTER_AXIS)}), wall "
          f"{payload['wall_seconds']:.2f}s -> {output}")
    print(service_latency_table(throughput))
    failures = []
    for name, entry in identity.items():
        state = "identical" if entry["identical"] else "DIVERGED"
        print(f"bench: service identity {name}: {state} across local, "
              f"served, and cluster {list(service_bench.CLUSTER_AXIS)} "
              f"({entry['admission_rpcs']} admission RPCs)")
        if not entry["identical"]:
            failures.append(f"{name}: served or cluster decisions "
                            f"diverged from local ones")
    failures += [f"client worker failed: {err}"
                 for err in throughput["errors"]]
    for entry in throughput["per_worker"]:
        if not entry["serializable"]:
            failures.append(f"worker {entry['worker']} "
                            f"({entry['structure']}): not serializable")
    if throughput["admission_rpcs"] == 0:
        failures.append("no admission RPCs were measured")
    if not metrics["ok"]:
        failures.append(
            f"/metrics scrape failed: status {metrics['status']}, "
            f"missing {', '.join(metrics['missing']) or 'nothing'}")
    else:
        print(f"bench: service /metrics OK ({metrics['lines']} lines, "
              f"all per-shard counters exposed)")
    if soak is not None:
        for label, leg in (("single", soak["single"]),
                           ("cluster", soak["cluster"])):
            print(f"bench: soak {label} "
                  f"({leg['structure']}, {leg['workload']}):")
            print(service_soak_table(leg))
            failures += [f"soak {label}: {err}"
                         for err in leg["errors"]]
            if leg["knee"] is None:
                failures.append(f"soak {label}: no knee was measured")
        if soak["single"]["knee"] and soak["cluster"]["knee"]:
            single_ops = soak["single"]["knee"][
                "committed_ops_per_second"]
            cluster_ops = soak["cluster"]["knee"][
                "committed_ops_per_second"]
            verdict = ("beats" if soak["cluster_beats_single"]
                       else "DOES NOT BEAT")
            print(f"bench: soak knee: cluster "
                  f"({soak['cluster_workers']} workers) "
                  f"{cluster_ops:,.0f} committed ops/s {verdict} "
                  f"single-process {single_ops:,.0f}")
            if not soak["cluster_beats_single"]:
                failures.append(
                    f"soak: cluster knee {cluster_ops:,.0f} committed "
                    f"ops/s <= single-process {single_ops:,.0f}")
    if failures:
        print("bench: service suite failed:\n  "
              + "\n  ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace, registry: Registry) -> int:
    """Run the admission server in the foreground until SIGTERM/SIGINT
    (then drain).  With ``--workers N > 1`` a shard-partitioned
    cluster is spawned instead: N worker processes on ephemeral ports
    (each owning the shards ``s`` with ``s % N == worker``), the
    partition map installed before any worker serves; pooled clients
    connect to any port and learn the map from ``hello``.  Imports the
    asyncio server lazily so ``serve --help`` and every other
    subcommand stay service-free."""
    if args.workers > 1:
        return _serve_cluster(args)
    from .service.server import run_server

    def announce(port: int) -> None:
        print(f"serve: admission server listening on "
              f"{args.host}:{port} (frames + HTTP /metrics)",
              flush=True)

    run_server(args.host, args.port, registry=registry,
               on_ready=announce, grace=args.grace)
    print("serve: drained and stopped")
    return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """The ``serve --workers N`` foreground path: spawn the cluster,
    block until SIGTERM/SIGINT, SIGTERM every worker (each drains with
    its own grace period)."""
    import signal
    import threading
    from .service.cluster import start_cluster, stop_cluster
    processes, ports = start_cluster(args.workers, host=args.host)
    stop = threading.Event()
    handlers = {
        signum: signal.signal(signum, lambda *_: stop.set())
        for signum in (signal.SIGTERM, signal.SIGINT)}
    try:
        endpoints = ", ".join(f"{args.host}:{port}" for port in ports)
        print(f"serve: admission cluster listening on {endpoints} "
              f"({args.workers} workers, shard s -> worker "
              f"s % {args.workers}; frames + HTTP /metrics per "
              f"worker)", flush=True)
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        for signum, handler in handlers.items():
            signal.signal(signum, handler)
        stop_cluster(processes)
    print("serve: drained and stopped")
    return 0


def _cmd_bench_runtime(args: argparse.Namespace, registry: Registry) -> int:
    """Throughput-harness sweep -> ``BENCH_runtime.json``."""
    from .reporting.tables import policy_comparison_table
    from .runtime.gatekeeper import POLICIES
    from .workloads import BENCH_WORKLOADS, ThroughputHarness
    output = args.output or "BENCH_runtime.json"
    harness = ThroughputHarness(registry=registry, workers=args.workers,
                                shards=args.shards)
    structures = harness.runnable_structures()
    start = time.perf_counter()
    runs = harness.sweep(structures=structures,
                         workloads=BENCH_WORKLOADS)
    wall = time.perf_counter() - start
    payload = {
        "schema": 1,
        "suite": "runtime",
        "workers": args.workers,
        "shards": args.shards,
        "workloads": {w.label: w.describe() for w in BENCH_WORKLOADS},
        "wall_seconds": round(wall, 4),
        "structures": {},
    }
    for name in structures:
        mine = [r for r in runs if r.structure == name]
        policies = {}
        for policy in POLICIES:
            of_policy = [r for r in mine if r.policy == policy]
            elapsed = sum(r.wall_seconds for r in of_policy)
            operations = sum(r.operations for r in of_policy)
            policies[policy] = {
                "commits": sum(r.commits for r in of_policy),
                "aborts": sum(r.aborts for r in of_policy),
                "operations": operations,
                "conflicts": sum(r.conflicts for r in of_policy),
                "conflict_checks": sum(r.conflict_checks
                                       for r in of_policy),
                "elapsed": round(elapsed, 4),
                "ops_per_second": round(operations / elapsed, 1)
                if elapsed > 0 else 0.0,
            }
        strict_wins = [
            w.label for w in BENCH_WORKLOADS
            if _aborts_of(mine, w.label, "commutativity")
            < _aborts_of(mine, w.label, "read-write")]
        payload["structures"][name] = {
            "elapsed": round(sum(r.wall_seconds for r in mine), 4),
            "operations": sum(r.operations for r in mine),
            "policies": policies,
            "commutativity_beats_read_write_on": strict_wins,
        }
    # The adaptive, scaling, stability, and seed-matrix sections run
    # (and mutate the payload) before it is written, so the emitted
    # JSON carries their numbers.
    adaptive_failed = _bench_adaptive_section(payload, registry, args)
    scaling_failed = (args.shards > 1
                      and _bench_scaling_section(payload, registry, args))
    stability_failed = (args.stable
                        and _bench_stability_section(payload, registry,
                                                     args))
    compiled_failed = (args.compiled
                       and _bench_compiled_section(payload, registry,
                                                   args))
    seeds_failed = (args.seeds > 1
                    and _bench_seed_matrix_section(payload, registry,
                                                   args))
    abduce_failed = (args.abduce
                     and _bench_abduction_section(payload, registry,
                                                  args))
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench: {len(structures)} structures x {len(POLICIES)} "
          f"policies x {len(BENCH_WORKLOADS)} workloads, "
          f"workers={args.workers}, wall {wall:.2f}s -> {output}")
    print(policy_comparison_table(runs))
    failed = (adaptive_failed or scaling_failed or stability_failed
              or compiled_failed or seeds_failed or abduce_failed)
    not_serializable = [r for r in runs if not r.serializable]
    if not_serializable:
        print("bench: NOT SERIALIZABLE: "
              + "; ".join(r.summary() for r in not_serializable),
              file=sys.stderr)
        failed = True
    if args.workers == 1:
        # Deterministic at one worker: the paper-shaped result must hold
        # (commutativity strictly beats read-write somewhere per
        # structure).  Multi-worker abort counts are scheduling-
        # dependent, so the shape is only gated serially.
        missing = [n for n, e in payload["structures"].items()
                   if not e["commutativity_beats_read_write_on"]]
        if missing:
            print("bench: commutativity did not beat read-write on any "
                  f"workload for: {', '.join(missing)}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    if args.baseline:
        return _check_bench_baseline(payload, args.baseline,
                                     args.max_regression)
    return 0


def _bench_adaptive_section(payload: dict, registry: Registry,
                            args: argparse.Namespace) -> bool:
    """Hybrid-vs-plain abort counts on the hot-key write-heavy workload
    (serial, hence deterministic).  Returns True on gate failure: the
    hybrid policy must strictly reduce aborts on every structure."""
    from .workloads import BENCH_WORKLOADS, ThroughputHarness
    hot = next(w for w in BENCH_WORKLOADS
               if w.label == "write-heavy-hotkey")
    harness = ThroughputHarness(registry=registry)
    section: dict = {"workload": hot.label, "policy": "commutativity",
                     "adaptive": "hybrid", "shards": args.shards,
                     "structures": {}}
    regressions = []
    for name in harness.runnable_structures():
        plain = harness.run_one(name, hot, policy="commutativity",
                                workers=1, shards=args.shards)
        hybrid = harness.run_one(name, hot, policy="commutativity",
                                 workers=1, shards=args.shards,
                                 adaptive="hybrid")
        section["structures"][name] = {
            "plain_aborts": plain.aborts,
            "hybrid_aborts": hybrid.aborts,
        }
        if not (plain.serializable and hybrid.serializable):
            regressions.append(f"{name}: not serializable")
        elif plain.aborts and hybrid.aborts >= plain.aborts:
            regressions.append(
                f"{name}: hybrid {hybrid.aborts} aborts >= plain "
                f"{plain.aborts}")
    payload["adaptive"] = section
    total_plain = sum(e["plain_aborts"]
                      for e in section["structures"].values())
    total_hybrid = sum(e["hybrid_aborts"]
                       for e in section["structures"].values())
    print(f"bench: adaptive hybrid on {hot.label}: "
          f"{total_hybrid} aborts vs {total_plain} plain")
    if regressions:
        print("bench: hybrid policy failed to reduce aborts:\n  "
              + "\n  ".join(regressions), file=sys.stderr)
        return True
    return False


#: The drift-admission gate's pinned workloads: write-heavy hot-key
#: traffic over *preloaded* structures — deep enough that admission
#: checks routinely outlive their verified environment, which is
#: exactly where the PR 4 drift guard turns conservative and the
#: compiled stable conditions earn their keep.  Serial and seeded, so
#: the gate is deterministic; the seed is pinned to traffic in which
#: the prover's observer-pinned conditions (``indexOf;set`` and
#: friends) actually evaluate under drift, so the ``--prover`` leg
#: measures real admissions rather than an empty intersection.
def _stability_gate_workloads():
    from .workloads import WorkloadSpec
    shape = dict(profile="write-heavy", distribution="hot-key",
                 transactions=12, ops_per_transaction=6, key_space=24,
                 value_space=3, seed=9)
    return (
        ("ArrayList", WorkloadSpec(name="stability-hotkey-arraylist",
                                   preload=20, **shape)),
        ("HashTable", WorkloadSpec(name="stability-hotkey-map",
                                   preload=20, **shape)),
    )


def _bench_stability_section(payload: dict, registry: Registry,
                             args: argparse.Namespace) -> bool:
    """Drift-admission comparison on preloaded hot-key workloads
    (serial, hence deterministic).  Returns True on gate failure:
    ``--stable`` must strictly reduce conservative-fallback admissions
    vs the plain PR 4 drift guard on every gated structure, restore at
    least one semantic admission under drift, and keep both executions
    serializable — with flat and sharded decisions identical.

    With ``--prover`` a third variant recompiles the conditions with
    the symbolic prover and repeats the gate workloads; across the
    gate structures in aggregate, the proved conditions must strictly
    increase semantic admissions (``stable_hits + proved_hits``) and
    strictly reduce conservative fallbacks vs ``--stable`` alone —
    the proved tier arms state-reading candidates the bounded sweep
    passes but refuses to arm, so the gate fails if the proofs buy
    nothing at run time.
    """
    from .reporting.tables import drift_admission_table
    from .workloads import ThroughputHarness
    reports = _compile_stable(registry, None)
    harness = ThroughputHarness(registry=registry)
    section: dict = {
        "policy": "commutativity", "shards": args.shards,
        "compiled": {name: {"stable": report.stable_count,
                            "weakened": report.weakened_count,
                            "fragile": report.fragile_count}
                     for name, report in reports.items()},
        "structures": {}}
    regressions = []
    runs = []
    stable_runs: dict[str, object] = {}
    for name, workload in _stability_gate_workloads():
        plain = harness.run_one(name, workload, policy="commutativity",
                                workers=1, shards=args.shards)
        stable = harness.run_one(name, workload, policy="commutativity",
                                 workers=1, shards=args.shards,
                                 stable=True)
        runs += [plain, stable]
        stable_runs[name] = stable
        section["structures"][name] = {
            "workload": workload.label,
            "plain_fallbacks": plain.drift_fallbacks,
            "stable_fallbacks": stable.drift_fallbacks,
            "stable_hits": stable.stable_hits,
            "plain_aborts": plain.aborts,
            "stable_aborts": stable.aborts,
            "undo_refusals": stable.report.undo_refusals,
        }
        if not (plain.serializable and stable.serializable):
            regressions.append(f"{name}: not serializable")
            continue
        if stable.stable_hits == 0:
            regressions.append(f"{name}: no semantic admission was "
                               f"restored under drift")
        if stable.drift_fallbacks >= plain.drift_fallbacks:
            regressions.append(
                f"{name}: {stable.drift_fallbacks} conservative "
                f"fallbacks with --stable >= {plain.drift_fallbacks} "
                f"without")
        if args.shards > 1:
            flat = harness.run_one(name, workload,
                                   policy="commutativity", workers=1,
                                   shards=1, stable=True)
            if (flat.commits, flat.aborts, flat.report.commit_order) \
                    != (stable.commits, stable.aborts,
                        stable.report.commit_order):
                regressions.append(f"{name}: flat and sharded stable "
                                   f"decisions diverged")
    if getattr(args, "prover", False):
        regressions += _bench_prover_gate(section, registry, harness,
                                          args, stable_runs, runs)
    payload["stability"] = section
    print(drift_admission_table(runs))
    for name, entry in section["structures"].items():
        line = (f"bench: stability {name}: fallbacks "
                f"{entry['plain_fallbacks']} -> "
                f"{entry['stable_fallbacks']}"
                f", {entry['stable_hits']} stable hits")
        if "proved_hits" in entry:
            line += (f"; with prover: fallbacks "
                     f"{entry['proved_fallbacks']}, "
                     f"{entry['proved_stable_hits']} stable + "
                     f"{entry['proved_hits']} proved hits")
        print(line)
    if regressions:
        print("bench: drift-stable admission gate failed:\n  "
              + "\n  ".join(regressions), file=sys.stderr)
        return True
    return False


def _bench_prover_gate(section: dict, registry: Registry, harness,
                       args: argparse.Namespace, stable_runs: dict,
                       runs: list) -> list[str]:
    """The ``--prover`` leg of the stability gate (see above):
    recompile with symbolic proofs, rerun the gate workloads, and
    enforce the aggregate strict improvements."""
    proved_reports = _compile_stable(registry, None, prover=True)
    section["prover"] = {
        name: {"proved": report.proved_count,
               "weakened": report.weakened_count}
        for name, report in proved_reports.items()}
    regressions: list[str] = []
    base_hits = base_fallbacks = hits = fallbacks = 0
    for name, workload in _stability_gate_workloads():
        proved = harness.run_one(name, workload, policy="commutativity",
                                 workers=1, shards=args.shards,
                                 stable=True)
        runs.append(proved)
        stable = stable_runs[name]
        base_hits += stable.stable_hits + stable.proved_hits
        base_fallbacks += stable.drift_fallbacks
        hits += proved.stable_hits + proved.proved_hits
        fallbacks += proved.drift_fallbacks
        section["structures"][name].update({
            "proved_fallbacks": proved.drift_fallbacks,
            "proved_stable_hits": proved.stable_hits,
            "proved_hits": proved.proved_hits,
            "proved_aborts": proved.aborts,
        })
        if not proved.serializable:
            regressions.append(f"{name}: not serializable with --prover")
        if args.shards > 1:
            flat = harness.run_one(name, workload,
                                   policy="commutativity", workers=1,
                                   shards=1, stable=True)
            if (flat.commits, flat.aborts, flat.report.commit_order) \
                    != (proved.commits, proved.aborts,
                        proved.report.commit_order):
                regressions.append(f"{name}: flat and sharded proved "
                                   f"decisions diverged")
    if hits <= base_hits:
        regressions.append(
            f"prover: {hits} semantic admissions with --prover <= "
            f"{base_hits} with --stable alone")
    if fallbacks >= base_fallbacks:
        regressions.append(
            f"prover: {fallbacks} conservative fallbacks with --prover "
            f">= {base_fallbacks} with --stable alone")
    return regressions


#: The abduction gate's custom-structure leg: hot-key write-heavy
#: traffic over the projector-less RegisterCell — repeated same-value
#: overwrites are exactly what the abduced ``(v1 = v2) & (v2 = r1)``
#: conditions admit, while the routerless conservative fallback admits
#: nothing, so the leg guarantees the aggregate gate is strict.
def _abduction_gate_workloads(registry: Registry):
    from .abduction.demo import DEMO_FAMILY, register_demo_structure
    from .workloads import WorkloadSpec
    if DEMO_FAMILY not in registry.names():
        register_demo_structure(registry)
    demo = WorkloadSpec(name="abduction-hotkey-register",
                        profile="write-heavy", distribution="hot-key",
                        transactions=12, ops_per_transaction=6,
                        key_space=24, value_space=3, seed=9)
    return _stability_gate_workloads() + ((DEMO_FAMILY, demo),)


def _served_run(registry: Registry, harness, name, workload, shards):
    """One stable workload run whose admission decisions come from an
    in-thread admission server *sharing this registry* — so the served
    drift guard arms exactly the locally compiled conditions, abduced
    tiers included, and the local==served digest identity is a real
    invariant rather than a recompilation coincidence."""
    import asyncio
    import threading
    from .service.client import ServiceBackend
    from .service.server import AdmissionServer
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever,
                              name="abduction-gate-server", daemon=True)
    thread.start()

    def call(coro, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout)

    server = AdmissionServer("127.0.0.1", 0, registry=registry)
    call(server.start())
    serving = asyncio.run_coroutine_threadsafe(server.serve_forever(),
                                               loop)
    try:
        backend = ServiceBackend(server.host, server.port,
                                 registry=registry)
        try:
            return harness.run_one(name, workload,
                                   policy="commutativity", workers=1,
                                   shards=shards, stable=True,
                                   backend=backend)
        finally:
            backend.close()
    finally:
        serving.cancel()
        call(server.shutdown(grace=1.0))
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10.0)
        loop.close()


def _bench_abduction_section(payload: dict, registry: Registry,
                             args: argparse.Namespace) -> bool:
    """The ``--abduce`` gate: recompile with the CEGIS abduction loop
    and rerun the stability-gate workloads plus the projector-less
    custom-structure leg.  Returns True on gate failure — across the
    legs in aggregate, the abduced conditions must strictly increase
    the armed semantic admission *rate* (``stable + proved +
    synthesized`` hits per drift check — a rate, not a count, because
    the weaker abduced guard admits more operations early, diverging
    the retry trace and with it the raw check volume) and strictly
    reduce conservative fallbacks vs ``--stable --prover``; every leg
    must stay serializable with byte-identical decision digests
    flat==sharded and local==served; and a warm rerun must serve every
    ABDUCTION task from the engine cache."""
    from .engine.tasks import ABDUCTION
    from .reporting.tables import drift_admission_table
    from .workloads import ThroughputHarness
    workloads = _abduction_gate_workloads(registry)
    names = tuple(name for name, _ in workloads)
    harness = ThroughputHarness(registry=registry)
    regressions: list[str] = []
    # Baseline: the full pre-abduction pipeline (--stable --prover).
    _compile_stable(registry, names, prover=True)
    baselines = {name: harness.run_one(name, workload,
                                       policy="commutativity",
                                       workers=1, shards=args.shards,
                                       stable=True)
                 for name, workload in workloads}
    # Abduced: same workloads with the CEGIS loop armed on top.
    reports = _compile_stable(registry, names, abduce=True)
    section: dict = {
        "policy": "commutativity", "shards": args.shards,
        "compiled": {name: {"synthesized": report.synthesized_count,
                            "proved": report.proved_count,
                            "weakened": report.weakened_count,
                            "fragile": report.fragile_count}
                     for name, report in reports.items()},
        "structures": {}}
    runs = []
    base_hits = base_fallbacks = hits = fallbacks = 0
    base_checks = checks = 0
    for name, workload in workloads:
        abduced = harness.run_one(name, workload,
                                  policy="commutativity", workers=1,
                                  shards=args.shards, stable=True)
        runs += [baselines[name], abduced]
        base = baselines[name]
        base_hits += (base.stable_hits + base.proved_hits
                      + base.report.synthesized_hits)
        base_fallbacks += base.drift_fallbacks
        base_checks += base.report.drift_checks
        hits += (abduced.stable_hits + abduced.proved_hits
                 + abduced.report.synthesized_hits)
        fallbacks += abduced.drift_fallbacks
        checks += abduced.report.drift_checks
        # Decision-identity legs: the sharded and served guards must
        # reproduce the local flat run's decisions byte-for-byte.
        flat = (abduced if args.shards == 1
                else harness.run_one(name, workload,
                                     policy="commutativity", workers=1,
                                     shards=1, stable=True))
        sharded = (abduced if args.shards > 1
                   else harness.run_one(name, workload,
                                        policy="commutativity",
                                        workers=1, shards=2,
                                        stable=True))
        served = _served_run(registry, harness, name, workload,
                             args.shards)
        flat_sharded = (flat.report.decision_digest()
                        == sharded.report.decision_digest())
        local_served = (abduced.report.decision_digest()
                        == served.report.decision_digest())
        section["structures"][name] = {
            "workload": workload.label,
            "baseline_hits": (base.stable_hits + base.proved_hits
                              + base.report.synthesized_hits),
            "baseline_fallbacks": base.drift_fallbacks,
            "abduced_stable_hits": abduced.stable_hits,
            "abduced_proved_hits": abduced.proved_hits,
            "synthesized_hits": abduced.report.synthesized_hits,
            "abduced_fallbacks": abduced.drift_fallbacks,
            "fallback_admits": abduced.report.fallback_admits,
            "flat_sharded_identical": flat_sharded,
            "local_served_identical": local_served,
        }
        if not (base.serializable and abduced.serializable
                and served.serializable):
            regressions.append(f"{name}: not serializable")
        if not flat_sharded:
            regressions.append(f"{name}: flat and sharded abduced "
                               f"decisions diverged")
        if not local_served:
            regressions.append(f"{name}: local and served abduced "
                               f"decisions diverged")
    # Warm rerun: every ABDUCTION task must come from the engine cache.
    warm = _compile_stable(registry, names, abduce=True)
    abduction_timings = [t for report in warm.values()
                         for t in report.task_timings
                         if t.kind == ABDUCTION]
    warm_cached = bool(abduction_timings) and all(
        t.cached for t in abduction_timings)
    base_rate = base_hits / base_checks if base_checks else 0.0
    rate = hits / checks if checks else 0.0
    section["baseline_semantic_hits"] = base_hits
    section["abduced_semantic_hits"] = hits
    section["baseline_hit_rate"] = round(base_rate, 4)
    section["abduced_hit_rate"] = round(rate, 4)
    section["armed_hits_delta"] = round(rate - base_rate, 4)
    section["fallback_delta"] = fallbacks - base_fallbacks
    section["digests_identical"] = all(
        entry["flat_sharded_identical"] and
        entry["local_served_identical"]
        for entry in section["structures"].values())
    section["warm_cache_served"] = warm_cached
    payload["abduction_gate"] = section
    if rate <= base_rate:
        regressions.append(
            f"abduce: {rate:.2%} armed semantic admission rate with "
            f"--abduce <= {base_rate:.2%} with --stable --prover")
    if fallbacks >= base_fallbacks:
        regressions.append(
            f"abduce: {fallbacks} conservative fallbacks with --abduce "
            f">= {base_fallbacks} with --stable --prover")
    if not warm_cached:
        regressions.append("abduce: warm rerun did not serve every "
                           "ABDUCTION task from .repro-cache")
    print(drift_admission_table(runs))
    for name, entry in section["structures"].items():
        print(f"bench: abduction {name}: hits "
              f"{entry['baseline_hits']} -> "
              f"{entry['abduced_stable_hits'] + entry['abduced_proved_hits'] + entry['synthesized_hits']} "
              f"({entry['synthesized_hits']} synthesized), fallbacks "
              f"{entry['baseline_fallbacks']} -> "
              f"{entry['abduced_fallbacks']}, digests "
              f"flat==sharded={entry['flat_sharded_identical']} "
              f"local==served={entry['local_served_identical']}")
    if regressions:
        print("bench: abduction gate failed:\n  "
              + "\n  ".join(regressions), file=sys.stderr)
        return True
    return False


#: Repetitions per compiled-gate cell; the best run is kept (wall-clock
#: throughput on small workloads is scheduler-noise-bound, decisions
#: are not — every repetition produces the same digest at one worker).
COMPILED_GATE_REPEATS = 4


#: The compiled-admission gate's pinned workload shape: write-heavy
#: hot-key traffic over a *preloaded* structure, deep enough that the
#: outstanding log keeps admission checks hot — the traffic the
#: closure-compiled fast path exists to accelerate.  Serial and
#: seeded, so decision digests are deterministic.
def _compiled_gate_workload():
    from .workloads import WorkloadSpec
    return WorkloadSpec(name="compiled-hotkey", profile="write-heavy",
                        distribution="hot-key", transactions=16,
                        ops_per_transaction=8, key_space=24,
                        value_space=3, preload=24, seed=11)


def _bench_compiled_section(payload: dict, registry: Registry,
                            args: argparse.Namespace) -> bool:
    """Compiled-vs-interpreted admission comparison on the pinned
    write-heavy hot-key workload (serial, hence deterministic).
    Returns True on gate failure: for every runnable structure the
    compiled hot path must strictly beat the interpreted one on
    committed-operation throughput (best of
    :data:`COMPILED_GATE_REPEATS`), produce a byte-identical decision
    digest, actually exercise compiled checks, and stay serializable —
    with flat and sharded compiled decisions identical when the bench
    shards its log."""
    from .reporting.tables import compiled_admission_table
    from .workloads import ThroughputHarness
    workload = _compiled_gate_workload()
    harness = ThroughputHarness(registry=registry, max_rounds=500_000)
    section: dict = {"workload": workload.label,
                     "policy": "commutativity", "workers": 1,
                     "shards": args.shards, "repeats":
                     COMPILED_GATE_REPEATS, "structures": {}}
    regressions = []
    pairs = []
    for name in harness.runnable_structures():
        best: dict[str, float] = {"interpreted": 0.0, "compiled": 0.0}
        kept: dict[str, object] = {}
        broken = False
        # Repeats are interleaved (interpreted, compiled, interpreted,
        # ...) so a slow phase of the benchmarking process — allocator
        # pressure, frequency scaling — penalizes both modes equally
        # instead of biasing whichever ran second.
        for _ in range(COMPILED_GATE_REPEATS):
            for mode, compiled in (("interpreted", False),
                                   ("compiled", True)):
                run = harness.run_one(name, workload,
                                      policy="commutativity",
                                      workers=1, shards=args.shards,
                                      compiled=compiled)
                if mode not in kept:
                    kept[mode] = run
                if not run.serializable:
                    if not broken:
                        regressions.append(f"{name}: not serializable "
                                           f"({mode})")
                        broken = True
                    continue
                best[mode] = max(best[mode],
                                 run.committed_ops_per_second)
        interpreted, compiled_run = kept["interpreted"], kept["compiled"]
        pairs.append((interpreted, compiled_run))
        identical = (interpreted.report.decision_digest()
                     == compiled_run.report.decision_digest())
        entry = {
            "interpreted_committed_ops_per_second":
                round(best["interpreted"], 1),
            "compiled_committed_ops_per_second":
                round(best["compiled"], 1),
            "speedup": round(best["compiled"] / best["interpreted"], 3)
            if best["interpreted"] > 0 else 0.0,
            "compiled_hits": compiled_run.compiled_hits,
            "eval_errors": compiled_run.eval_errors,
            "decisions_identical": identical,
        }
        if not identical:
            regressions.append(f"{name}: compiled and interpreted "
                               f"decisions diverged")
        if compiled_run.compiled_hits == 0:
            regressions.append(f"{name}: the compiled path was never "
                               f"exercised (0 compiled hits)")
        if best["compiled"] <= best["interpreted"]:
            regressions.append(
                f"{name}: compiled {best['compiled']:.0f} committed "
                f"ops/s <= interpreted {best['interpreted']:.0f}")
        if args.shards > 1:
            flat = harness.run_one(name, workload,
                                   policy="commutativity", workers=1,
                                   shards=1, compiled=True)
            flat_identical = (flat.report.decision_digest()
                              == compiled_run.report.decision_digest())
            entry["flat_sharded_identical"] = flat_identical
            if not flat_identical:
                regressions.append(f"{name}: flat and sharded compiled "
                                   f"decisions diverged")
        section["structures"][name] = entry
    payload["compiled_gate"] = section
    print(compiled_admission_table(pairs))
    for name, entry in section["structures"].items():
        print(f"bench: compiled {name}: "
              f"{entry['interpreted_committed_ops_per_second']:.0f} -> "
              f"{entry['compiled_committed_ops_per_second']:.0f} "
              f"committed ops/s ({entry['speedup']:.2f}x, "
              f"{entry['compiled_hits']} compiled hits)")
    if regressions:
        print("bench: compiled admission gate failed:\n  "
              + "\n  ".join(regressions), file=sys.stderr)
        return True
    return False


#: Repetitions per nogil scaling cell (informational; best run kept).
NOGIL_REPEATS = 2

#: The nogil sweep's axes: worker-thread and shard counts.  Purely
#: informational — free-threaded speedups depend on the host — but the
#: report gives the 3.13t CI leg a scaling curve to publish.
NOGIL_WORKERS = (1, 2, 4)
NOGIL_SHARDS = (1, 8)
NOGIL_STRUCTURES = ("HashSet", "ArrayList")


def _cmd_bench_nogil(args: argparse.Namespace, registry: Registry) -> int:
    """Free-threaded scaling sweep -> ``BENCH_nogil.json``.

    Runs the compiled admission path under blocking conflict
    resolution across worker-thread and shard axes and records
    committed-operation throughput plus whether the interpreter
    actually ran free-threaded (``sys._is_gil_enabled()``, absent
    before 3.13).  Informational: the only failure is a
    non-serializable execution — thread-scaling numbers are
    host-dependent and never gated."""
    from .workloads import SCALING_WORKLOADS, ThroughputHarness
    output = args.output or "BENCH_nogil.json"
    gil_probe = getattr(sys, "_is_gil_enabled", None)
    harness = ThroughputHarness(registry=registry, max_rounds=500_000,
                                compiled=True)
    structures = [name for name in NOGIL_STRUCTURES
                  if name in harness.runnable_structures()]
    workloads = SCALING_WORKLOADS[:2]
    payload: dict = {
        "schema": 1,
        "suite": "nogil",
        "python": sys.version,
        "gil_enabled": gil_probe() if gil_probe is not None else None,
        "workers_axis": list(NOGIL_WORKERS),
        "shards_axis": list(NOGIL_SHARDS),
        "policy": "commutativity",
        "conflict_mode": "block",
        "compiled": True,
        "workloads": {w.label: w.describe() for w in workloads},
        "structures": {},
    }
    broken = []
    start = time.perf_counter()
    for name in structures:
        entry: dict = {}
        for workload in workloads:
            cells: dict = {}
            for workers in NOGIL_WORKERS:
                for shards in NOGIL_SHARDS:
                    throughput = 0.0
                    for _ in range(NOGIL_REPEATS):
                        run = harness.run_one(
                            name, workload, policy="commutativity",
                            conflict_mode="block", workers=workers,
                            shards=shards)
                        if not run.serializable:
                            broken.append(f"{name}/{workload.label}/"
                                          f"w{workers}s{shards}")
                            continue
                        throughput = max(
                            throughput, run.committed_ops_per_second)
                    cells[f"w{workers}s{shards}"] = round(throughput, 1)
            entry[workload.label] = cells
        payload["structures"][name] = entry
    payload["wall_seconds"] = round(time.perf_counter() - start, 4)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    gil_note = {True: "GIL on", False: "free-threaded",
                None: "pre-3.13"}[payload["gil_enabled"]]
    print(f"bench: nogil sweep ({gil_note}) over "
          f"{len(structures)} structures x {len(workloads)} workloads "
          f"x workers {list(NOGIL_WORKERS)} x shards "
          f"{list(NOGIL_SHARDS)}, wall "
          f"{payload['wall_seconds']:.2f}s -> {output}")
    for name, entry in payload["structures"].items():
        for label, cells in entry.items():
            curve = ", ".join(f"{k}={v:,.0f}"
                              for k, v in sorted(cells.items()))
            print(f"bench: nogil {name} [{label}]: {curve}")
    if broken:
        print("bench: nogil runs NOT SERIALIZABLE: "
              + "; ".join(broken), file=sys.stderr)
        return 1
    return 0


def _bench_seed_matrix_section(payload: dict, registry: Registry,
                               args: argparse.Namespace) -> bool:
    """The ``--seeds N`` matrix: rerun the bench sweep over N seeds and
    report p50/p95 percentiles per (structure, workload, policy).
    Returns True on gate failure (a non-serializable cell)."""
    from .reporting.tables import percentile, seed_matrix_table
    from .runtime.gatekeeper import POLICIES
    from .workloads import BENCH_WORKLOADS, ThroughputHarness
    harness = ThroughputHarness(registry=registry, workers=args.workers,
                                shards=args.shards)
    structures = harness.runnable_structures()
    runs = [harness.run_one(structure, workload.with_(
                seed=workload.seed + offset), policy=policy)
            for structure in structures
            for workload in BENCH_WORKLOADS
            for policy in POLICIES
            for offset in range(args.seeds)]
    section: dict = {"seeds": args.seeds, "structures": {}}
    for run in runs:
        cell = section["structures"] \
            .setdefault(run.structure, {}) \
            .setdefault(run.workload.label, {}) \
            .setdefault(run.policy, {"ops_per_second": [], "aborts": []})
        cell["ops_per_second"].append(round(run.ops_per_second, 1))
        cell["aborts"].append(run.aborts)
    for by_workload in section["structures"].values():
        for by_policy in by_workload.values():
            for cell in by_policy.values():
                cell["ops_per_second_p50"] = percentile(
                    cell["ops_per_second"], 50)
                cell["ops_per_second_p95"] = percentile(
                    cell["ops_per_second"], 95)
                cell["aborts_p50"] = percentile(cell["aborts"], 50)
                cell["aborts_p95"] = percentile(cell["aborts"], 95)
    payload["seed_matrix"] = section
    print(seed_matrix_table(runs))
    broken = [run.summary() for run in runs if not run.serializable]
    if broken:
        print("bench: seed matrix NOT SERIALIZABLE: "
              + "; ".join(broken), file=sys.stderr)
        return True
    return False


#: Repetitions per (structure, workload, config) scaling cell; the best
#: run is kept, damping scheduler noise in the threaded comparison.
SCALING_REPEATS = 2


def _bench_scaling_section(payload: dict, registry: Registry,
                           args: argparse.Namespace) -> bool:
    """Flat-vs-sharded committed-operation throughput at ``workers>=4``
    under blocking conflict resolution (no abort storms, so wall clock
    measures admission work).  Returns True on gate failure: the sharded
    gatekeeper must beat the flat log on at least one workload per
    specification family."""
    from .workloads import SCALING_WORKLOADS, ThroughputHarness
    workers = max(args.workers, 4)
    shards = args.shards
    harness = ThroughputHarness(registry=registry, max_rounds=500_000)
    section: dict = {"workers": workers, "shards": shards,
                     "policy": "commutativity", "conflict_mode": "block",
                     "workloads": {w.label: w.describe()
                                   for w in SCALING_WORKLOADS},
                     "structures": {}}
    family_wins: dict[str, list[str]] = {}
    broken = []
    for name in harness.runnable_structures():
        family = registry.family_of(name)
        family_wins.setdefault(family, [])
        entry: dict = {"family": family, "workloads": {}, "beats_flat_on": []}
        for workload in SCALING_WORKLOADS:
            best = {}
            for mode, mode_shards in (("flat", 1), ("sharded", shards)):
                throughput = 0.0
                for _ in range(SCALING_REPEATS):
                    run = harness.run_one(
                        name, workload, policy="commutativity",
                        conflict_mode="block", workers=workers,
                        shards=mode_shards)
                    if not run.serializable:
                        # An invalid execution contributes a failure,
                        # never a throughput sample.
                        label = f"{name}/{workload.label}/{mode}"
                        if label not in broken:
                            broken.append(label)
                        continue
                    throughput = max(throughput,
                                     run.committed_ops_per_second)
                best[mode] = throughput
            entry["workloads"][workload.label] = {
                "flat_committed_ops_per_second": round(best["flat"], 1),
                "sharded_committed_ops_per_second":
                    round(best["sharded"], 1),
            }
            if best["sharded"] > best["flat"]:
                entry["beats_flat_on"].append(workload.label)
                family_wins[family].append(workload.label)
        section["structures"][name] = entry
    payload["scaling"] = section
    losing = sorted(f for f, wins in family_wins.items() if not wins)
    for name, entry in section["structures"].items():
        print(f"bench: scaling {name}: sharded beats flat on "
              f"{', '.join(entry['beats_flat_on']) or 'NOTHING'}")
    if broken:
        print("bench: scaling runs NOT SERIALIZABLE: "
              + "; ".join(broken), file=sys.stderr)
        return True
    if losing:
        print(f"bench: sharded gatekeeper (shards={shards}, "
              f"workers={workers}) never beat the flat log for "
              f"families: {', '.join(losing)}", file=sys.stderr)
        return True
    return False


def _aborts_of(runs, workload_label: str, policy: str) -> int:
    return sum(r.aborts for r in runs
               if r.workload.label == workload_label
               and r.policy == policy)


def _cmd_bench_verify(args: argparse.Namespace, registry: Registry) -> int:
    """Cold per-structure verification timings -> ``BENCH_verify.json``."""
    scope = paper_scope(max_seq_len=args.max_seq_len)
    output = args.output or "BENCH_verify.json"
    start = time.perf_counter()
    reports = verify_all(scope, backend=args.backend, registry=registry,
                         jobs=args.jobs, cache=False)
    wall = time.perf_counter() - start
    payload = {
        "schema": 1,
        "suite": "verify",
        "engine_version": ENGINE_VERSION,
        "backend": args.backend,
        "jobs": resolve_jobs(args.jobs),
        "scope": {"objects": list(scope.objects),
                  "values": list(scope.values),
                  "ints": list(scope.ints),
                  "max_seq_len": scope.max_seq_len},
        "wall_seconds": round(wall, 4),
        "structures": {},
    }
    for name, report in reports.items():
        slowest = report.slowest_task
        payload["structures"][name] = {
            "conditions": report.condition_count,
            "methods": report.method_count,
            "elapsed": round(report.elapsed, 4),
            "tasks": len(report.task_timings),
            "slowest_task": ({"label": slowest.label,
                              "elapsed": round(slowest.elapsed, 4)}
                             if slowest is not None else None),
            "all_verified": report.all_verified,
        }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench: {len(reports)} structures via {args.backend} backend, "
          f"jobs={payload['jobs']}, wall {wall:.2f}s -> {output}")
    print(task_timing_table(reports))
    unverified = [n for n, r in reports.items() if not r.all_verified]
    if unverified:
        print(f"bench: FAILED obligations in {', '.join(unverified)}",
              file=sys.stderr)
        return 1
    if args.baseline:
        return _check_bench_baseline(payload, args.baseline,
                                     args.max_regression)
    return 0


def _check_bench_baseline(payload: dict, baseline_path: str,
                          max_regression: float) -> int:
    """Fail when any structure regresses ``max_regression``x vs baseline."""
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"bench: unreadable baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 2
    for key in ("suite", "backend", "scope", "workloads"):
        recorded = baseline.get(key)
        if recorded is not None and recorded != payload.get(key):
            print(f"bench: baseline {baseline_path} is incompatible: "
                  f"its {key} is {recorded!r}, this run used "
                  f"{payload.get(key)!r} (regenerate the baseline)",
                  file=sys.stderr)
            return 2
    baseline_structures = baseline.get("structures", {})
    regressions = []
    for name, entry in baseline_structures.items():
        measured = payload["structures"].get(name)
        if measured is None:
            # A structure the baseline gates must not silently vanish
            # from the sweep (unregistered or renamed).
            regressions.append(f"{name}: in baseline but missing from "
                               f"this run")
            continue
        try:
            recorded = float(entry["elapsed"])
        except (KeyError, TypeError, ValueError):
            print(f"bench: malformed baseline entry for {name} in "
                  f"{baseline_path}", file=sys.stderr)
            return 2
        allowed = max_regression * max(recorded, BENCH_FLOOR_SECONDS)
        if measured["elapsed"] > allowed:
            regressions.append(
                f"{name}: {measured['elapsed']:.3f}s > "
                f"{max_regression:g}x baseline {recorded:.3f}s")
    ungated = sorted(set(payload["structures"]) - set(baseline_structures))
    if ungated:
        print(f"bench: not in baseline (regenerate to gate them): "
              f"{', '.join(ungated)}", file=sys.stderr)
    if regressions:
        print("bench: verification time regressions vs "
              f"{baseline_path}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench: within {max_regression:g}x of baseline {baseline_path}")
    return 0


def _cmd_tables(args: argparse.Namespace, registry: Registry) -> int:
    tables = TableIndex.all()
    wanted = [args.table] if args.table else list(tables)
    for table_id in wanted:
        render = tables.get(table_id)
        if render is None:
            print(f"unknown table {table_id!r}; "
                  f"choose from {', '.join(tables)}", file=sys.stderr)
            return 2
        print(f"=== Table {table_id} ===")
        result = render()
        if isinstance(result, tuple):  # table 5.8 returns (text, reports)
            result = result[0]
        print(result)
        print()
    return 0


def _cmd_show(args: argparse.Namespace, registry: Registry) -> int:
    kinds = [Kind(args.kind)] if args.kind else list(Kind)
    for kind in kinds:
        cond = registry.condition(args.name, args.m1, args.m2, kind)
        print(f"[{kind}] {cond.text}")
        if args.methods:
            for method in generate_methods([cond]):
                print()
                print(method.render_java())
        print()
    return 0


def _cmd_list(args: argparse.Namespace, registry: Registry) -> int:
    from .reporting.tables import _format_table
    headers = ["name", "family", "conditions", "inverses", "implementation"]
    rows = [[entry.name, entry.family, str(entry.condition_count),
             str(entry.inverse_count),
             entry.implementation.__name__ if entry.implementation else "-"]
            for entry in registry.describe()]
    print(_format_table(headers, rows))
    inverse_total = sum(len(registry.inverses(family))
                        for family in registry.families())
    print(f"\n{len(rows)} structures, "
          f"{registry.total_condition_count()} conditions, "
          f"{inverse_total} inverse operations")
    return 0


def _shard_count(text: str) -> int:
    """argparse type for ``--shards``: a power of two in [1, 64], with
    the CLI's friendly-error convention instead of a traceback."""
    from .runtime.sharding import VIRTUAL_REGIONS
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1 or value > VIRTUAL_REGIONS or value & (value - 1):
        raise argparse.ArgumentTypeError(
            f"shards must be a power of two in [1, {VIRTUAL_REGIONS}], "
            f"got {value}")
    return value


def _add_engine_options(parser: argparse.ArgumentParser,
                        no_cache: bool = True) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS or 1; "
                             "0 = all CPUs)")
    if no_cache:
        parser.add_argument("--no-cache", action="store_true",
                            help="ignore and don't update .repro-cache/")


def build_parser(registry: Registry | None = None) -> argparse.ArgumentParser:
    registry = registry if registry is not None else DEFAULT_REGISTRY
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify commutativity conditions")
    verify.add_argument("--name", choices=registry.names())
    verify.add_argument("--backend", default="symbolic",
                        choices=("symbolic", "bounded"))
    verify.add_argument("--max-seq-len", type=int, default=3)
    _add_engine_options(verify)
    verify.set_defaults(func=_cmd_verify)

    inverses = sub.add_parser("inverses", help="verify inverse operations")
    inverses.add_argument("--max-seq-len", type=int, default=3)
    _add_engine_options(inverses)
    inverses.set_defaults(func=_cmd_inverses)

    from .runtime.gatekeeper import POLICIES
    from .workloads.spec import DISTRIBUTIONS, PROFILES

    run = sub.add_parser(
        "run", help="generate a workload and execute it speculatively")
    run.add_argument("--name", required=True, choices=registry.names())
    run.add_argument("--policy", choices=POLICIES,
                     help="one policy (default: all three + comparison)")
    run.add_argument("--profile", default="mixed",
                     choices=tuple(PROFILES))
    run.add_argument("--distribution", default="uniform",
                     choices=tuple(DISTRIBUTIONS))
    run.add_argument("--txns", type=int, default=8,
                     help="transaction count (default 8)")
    run.add_argument("--ops", type=int, default=6,
                     help="operations per transaction (default 6)")
    from .runtime.adaptive import ADAPTIVE_POLICIES

    run.add_argument("--key-space", type=int, default=16)
    run.add_argument("--value-space", type=int, default=4)
    run.add_argument("--preload", type=int, default=0,
                     help="YCSB-style load phase: prepopulate the "
                          "structure with this many elements")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--workers", type=int, default=1,
                     help="executor worker threads (1 = deterministic)")
    run.add_argument("--batch", type=int, default=1,
                     help="ops per gatekeeper lock hold (workers > 1, "
                          "flat log only)")
    run.add_argument("--shards", type=_shard_count, default=1,
                     help="conflict-manager log shards (1 = flat log; "
                          "powers of two)")
    run.add_argument("--adaptive", choices=ADAPTIVE_POLICIES,
                     help="contention-adaptive conflict response "
                          "(default: none)")
    run.add_argument("--conflict-mode", default="abort",
                     choices=("abort", "block"))
    run.add_argument("--stable", action="store_true",
                     help="compile drift-stable conditions first and "
                          "arm the drift guard with them")
    run.add_argument("--prover", action="store_true",
                     help="compile with the symbolic prover (implies "
                          "--stable): proved state-reading conditions "
                          "are armed too")
    run.add_argument("--abduce", action="store_true",
                     help="compile with the CEGIS abduction loop "
                          "(implies --stable and the prover): "
                          "synthesized conditions are armed too")
    run.add_argument("--compiled", action="store_true",
                     help="lower admission conditions into closures at "
                          "arm time (same decisions, faster checks)")
    run.add_argument("--txn-stats", action="store_true",
                     help="print per-transaction abort counts")
    run.add_argument("--shard-stats", action="store_true",
                     help="print the per-shard contention table")
    run.set_defaults(func=_cmd_run)

    stability = sub.add_parser(
        "stability",
        help="compile between conditions into drift-stability verdicts")
    stability.add_argument("--name", choices=registry.names())
    stability.add_argument("--max-seq-len", type=int,
                           default=STABILITY_SCOPE_SEQ_LEN)
    stability.add_argument("--prover", action="store_true",
                           help="discharge symbolic proof obligations "
                                "too: proved pairs arm state-reading "
                                "candidates the bounded sweep refuses")
    stability.add_argument("--abduce", action="store_true",
                           help="run the CEGIS abduction loop too "
                                "(implies --prover): synthesize "
                                "brand-new stable conditions and "
                                "print the lattice-walk trace with "
                                "per-refutation countermodels")
    _add_engine_options(stability)
    stability.set_defaults(func=_cmd_stability)

    bench = sub.add_parser(
        "bench",
        help="regression-gated benchmarks (verification or runtime)")
    bench.add_argument("--suite", default="verify",
                       choices=("verify", "runtime", "nogil", "service"),
                       help="verify: cold verification sweep; runtime: "
                            "workload-throughput sweep; nogil: "
                            "informational free-threaded scaling sweep; "
                            "service: client/server admission bench "
                            "(identity + latency + metrics gates)")
    bench.add_argument("--backend", default="symbolic",
                       choices=("symbolic", "bounded"))
    bench.add_argument("--max-seq-len", type=int, default=3)
    _add_engine_options(bench, no_cache=False)  # bench is always cold
    bench.add_argument("--workers", type=int, default=1,
                       help="executor worker threads for --suite runtime")
    bench.add_argument("--shards", type=_shard_count, default=1,
                       help="conflict-manager shards for --suite "
                            "runtime (powers of two); > 1 adds the "
                            "flat-vs-sharded scaling comparison")
    bench.add_argument("--stable", action="store_true",
                       help="--suite runtime: add the drift-stable "
                            "admission section and its gate")
    bench.add_argument("--prover", action="store_true",
                       help="--suite runtime, with --stable: add the "
                            "prover leg to the stability gate (proved "
                            "admissions must strictly beat --stable "
                            "alone)")
    bench.add_argument("--abduce", action="store_true",
                       help="--suite runtime, with --stable: add the "
                            "abduction gate (synthesized conditions "
                            "must strictly beat --stable --prover on "
                            "semantic admissions and fallbacks, with "
                            "flat==sharded and local==served decision "
                            "digests, warm-cache served reruns)")
    bench.add_argument("--compiled", action="store_true",
                       help="--suite runtime: add the compiled-vs-"
                            "interpreted admission section and its "
                            "gate (compiled must strictly beat "
                            "interpreted with identical decisions)")
    bench.add_argument("--seeds", type=int, default=1,
                       help="--suite runtime: rerun the sweep over this "
                            "many seeds and report p50/p95 percentiles")
    bench.add_argument("--service-workers", type=int, default=2,
                       help="--suite service: client worker processes "
                            "against the one server (min 2)")
    bench.add_argument("--soak", action="store_true",
                       help="--suite service: ramp looping client "
                            "processes to the saturation knee, single-"
                            "process vs --cluster-workers cluster; "
                            "the cluster knee must strictly beat the "
                            "single process's committed-ops/s")
    bench.add_argument("--cluster-workers", type=int, default=2,
                       help="--suite service, with --soak: worker "
                            "processes in the soaked cluster "
                            "(default 2)")
    bench.add_argument("--soak-seconds", type=float, default=2.0,
                       help="--suite service, with --soak: seconds "
                            "each ramp point keeps its clients "
                            "running (default 2.0)")
    bench.add_argument("--soak-budget", type=float, default=300.0,
                       help="--suite service, with --soak: wall-clock "
                            "cap per soak ramp in seconds; the ramp "
                            "is truncated past it (default 300)")
    bench.add_argument("--output", default=None,
                       help="where to write the timing report (default "
                            "BENCH_<suite>.json)")
    bench.add_argument("--baseline", default=None,
                       help="baseline BENCH_<suite>.json to gate against")
    bench.add_argument("--max-regression", type=float, default=2.0,
                       help="fail when a structure exceeds this multiple "
                            "of its baseline time (default 2.0)")
    bench.set_defaults(func=_cmd_bench)

    tables = sub.add_parser("tables", help="print the evaluation tables")
    tables.add_argument("--table", help="e.g. 5.2 (default: all)")
    tables.set_defaults(func=_cmd_tables)

    show = sub.add_parser("show", help="print one condition + methods")
    show.add_argument("--name", required=True)
    show.add_argument("--m1", required=True)
    show.add_argument("--m2", required=True)
    show.add_argument("--kind", choices=[k.value for k in Kind])
    show.add_argument("--methods", action="store_true")
    show.set_defaults(func=_cmd_show)

    serve = sub.add_parser(
        "serve",
        help="run the admission server (frame RPCs + HTTP /metrics "
             "on one port) until SIGTERM, then drain")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7471,
                       help="TCP port (0 = ephemeral; default 7471)")
    serve.add_argument("--grace", type=float, default=5.0,
                       help="drain grace period in seconds on shutdown")
    serve.add_argument("--workers", type=int, default=1,
                       help="shard-partitioned cluster worker "
                            "processes on ephemeral ports (1 = one "
                            "in-process server on --port)")
    serve.set_defaults(func=_cmd_serve)

    list_cmd = sub.add_parser("list", help="list registered data structures")
    list_cmd.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None,
         registry: Registry | None = None) -> int:
    registry = registry if registry is not None else DEFAULT_REGISTRY
    args = build_parser(registry).parse_args(argv)
    try:
        return args.func(args, registry)
    except UnknownNameError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
