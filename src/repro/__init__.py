"""repro: a full reproduction of Kim & Rinard (PLDI 2011), "Verification
of Semantic Commutativity Conditions and Inverse Operations on Linked
Data Structures".

Layout:

- :mod:`repro.logic` — the Jahob-flavoured specification logic;
- :mod:`repro.specs` — abstract data-structure specifications;
- :mod:`repro.impls` — concrete linked implementations + abstraction
  functions;
- :mod:`repro.commutativity` — the 765-condition catalog, the testing
  method generator, and the bounded verification backend;
- :mod:`repro.solver` — SAT / congruence closure / the symbolic engine
  (the stand-in for Jahob's integrated provers);
- :mod:`repro.inverses` — the 8 verified inverse operations;
- :mod:`repro.proof` — the Jahob proof language (note / assuming /
  pickWitness);
- :mod:`repro.runtime` — speculative parallel execution with gatekeeper
  conflict detection and inverse-based rollback;
- :mod:`repro.reporting` — the paper's evaluation tables.
"""

from .commutativity import (CommutativityCondition, Kind, check_condition,
                            condition, conditions_for, generate_methods,
                            total_condition_count, verify_all,
                            verify_data_structure)
from .eval import Scope
from .impls import (Accumulator, ArrayList, AssociationList, HashSet,
                    HashTable, ListSet)
from .inverses import check_all_inverses, inverse_for
from .runtime import SpeculativeExecutor

__version__ = "1.0.0"

__all__ = [
    "CommutativityCondition", "Kind", "check_condition", "condition",
    "conditions_for", "generate_methods", "total_condition_count",
    "verify_all", "verify_data_structure",
    "Scope",
    "Accumulator", "ArrayList", "AssociationList", "HashSet", "HashTable",
    "ListSet",
    "check_all_inverses", "inverse_for",
    "SpeculativeExecutor",
    "__version__",
]
