"""repro: a full reproduction of Kim & Rinard (PLDI 2011), "Verification
of Semantic Commutativity Conditions and Inverse Operations on Linked
Data Structures".

The front door is :mod:`repro.api`: a pluggable :class:`~repro.api.Registry`
mapping data-structure names to specs, condition catalogs, inverse
catalogs, and concrete implementations, and a :class:`~repro.api.Session`
facade running the verify -> synthesize -> execute pipeline against one
registry.  The paper's six structures live in
:data:`~repro.api.DEFAULT_REGISTRY`, registered through the same calls a
downstream user makes for a custom structure (see
``examples/custom_datastructure.py``); the historical module-level
functions below are thin wrappers over that default registry.

Layout:

- :mod:`repro.api` — the Registry/Session extension and pipeline API;
- :mod:`repro.logic` — the Jahob-flavoured specification logic;
- :mod:`repro.specs` — abstract data-structure specifications;
- :mod:`repro.impls` — concrete linked implementations + abstraction
  functions;
- :mod:`repro.commutativity` — the 765-condition catalog, the testing
  method generator, and the bounded verification backend;
- :mod:`repro.solver` — SAT / congruence closure / the symbolic engine
  (the stand-in for Jahob's integrated provers);
- :mod:`repro.inverses` — the 8 verified inverse operations;
- :mod:`repro.proof` — the Jahob proof language (note / assuming /
  pickWitness);
- :mod:`repro.runtime` — speculative parallel execution with gatekeeper
  conflict detection, inverse-based rollback, and a batched
  multi-worker mode;
- :mod:`repro.workloads` — seeded workload generation (op-mix profiles
  x key distributions) and the execution-throughput harness;
- :mod:`repro.reporting` — the paper's evaluation tables.
"""

from .commutativity import (CommutativityCondition, Kind, check_condition,
                            condition, conditions_for, generate_methods,
                            total_condition_count, verify_all,
                            verify_data_structure)
from .eval import Scope
from .impls import (Accumulator, ArrayList, AssociationList, HashSet,
                    HashTable, ListSet)
from .inverses import check_all_inverses, inverse_for
from .runtime import SpeculativeExecutor
from .workloads import ThroughputHarness, WorkloadGenerator, WorkloadSpec
from .api import (DEFAULT_REGISTRY, DuplicateNameError, Registry,
                  RegistryError, Session, UnknownNameError, datastructure)

__version__ = "1.2.0"

__all__ = [
    "CommutativityCondition", "Kind", "check_condition", "condition",
    "conditions_for", "generate_methods", "total_condition_count",
    "verify_all", "verify_data_structure",
    "Scope",
    "Accumulator", "ArrayList", "AssociationList", "HashSet", "HashTable",
    "ListSet",
    "check_all_inverses", "inverse_for",
    "SpeculativeExecutor",
    "ThroughputHarness", "WorkloadGenerator", "WorkloadSpec",
    "DEFAULT_REGISTRY", "DuplicateNameError", "Registry", "RegistryError",
    "Session", "UnknownNameError", "datastructure",
    "__version__",
]
