"""repro.compiled — the closure-compiled admission hot path.

Lowers admission formulas (catalog between conditions and armed
drift-stable conditions) into slot-specialized Python closures at arm
time, cached process-wide by content fingerprint, with an interpreted
fallback that keeps decisions byte-identical.  See
:mod:`repro.compiled.lowering` for the semantics contract.
"""

from .admission import CompiledAdmission
from .cache import cache_size, clear_cache, compiled_pair, pair_cache_key
from .lowering import (ADMISSION_COMPILER_VERSION, CompileError,
                       LoweredCheck, SlotMismatch, lower_pair_condition,
                       pair_scope)

__all__ = [
    "ADMISSION_COMPILER_VERSION",
    "CompiledAdmission",
    "CompileError",
    "LoweredCheck",
    "SlotMismatch",
    "cache_size",
    "clear_cache",
    "compiled_pair",
    "lower_pair_condition",
    "pair_cache_key",
    "pair_scope",
]
