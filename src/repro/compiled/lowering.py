"""Slot-specialized closure lowering for admission formulas.

The gatekeeper's hot loop evaluates one between (or drift-stable)
condition per (logged op, incoming op) pair.  The interpreter walks the
AST and indexes a freshly-built ``dict`` environment on every variable;
the existing :mod:`repro.logic.compile` closure compiler removes the
walk but keeps the dict.  This module goes further, for the fixed
per-pair environment shape the runtime actually has:

- **env-slot specialization** — a pair's environment layout is known at
  arm time (``s1``, ``s2``, the suffixed parameters of both operations,
  ``r1`` when the first operation returns), so variables lower to list
  indexing and the hot loop never builds a dict or a ``Record`` view;
- **constant folding** — subterms with no free slots evaluate once at
  lowering time (many catalog conditions are literally ``true``);
- **adaptive disjunct ordering** — a disjunction of total (non-raising)
  disjuncts re-sorts itself by observed hit rate, so the disjunct that
  admits this workload's traffic is tried first.

Lowered semantics match :func:`repro.eval.interpreter.evaluate`
*exactly*, including which environments raise
:class:`~repro.eval.interpreter.EvalError` and with which message —
the gatekeeper's conservative-fallback decisions and the per-shard
``eval_errors`` samples must be identical with and without compilation.
A term the lowerer does not understand raises :class:`CompileError` at
arm time and the pair stays on the interpreted path.
"""

from __future__ import annotations

from typing import Any, Callable

from ..eval.interpreter import EvalContext, EvalError
from ..eval.values import (seq_index_of, seq_insert, seq_last_index_of,
                           seq_remove, seq_update)
from ..logic import terms as t
from ..logic.sorts import Sort

#: Bump whenever a lowering change could alter a compiled check's
#: observable behaviour — part of every compiled-pair cache key (see
#: :func:`repro.engine.fingerprint.compiled_admission_fingerprint`),
#: so stale closures are never served across versions.
ADMISSION_COMPILER_VERSION = 1

#: Re-sort an adaptive disjunction every this-many evaluations.
ADAPTIVE_REORDER_PERIOD = 64

_NOT_CONST = object()

Slots = list  # runtime environment: a plain list indexed by slot


class CompileError(Exception):
    """The lowerer cannot handle this term; use the interpreter."""


class SlotMismatch(Exception):
    """The runtime arguments do not fit the compiled slot layout (an
    arity drift between the logged call and the operation signature);
    the caller must fall back to the interpreted dict environment,
    which tolerates the mismatch the same way :func:`zip` does."""


class _AdaptiveOr:
    """A disjunction over *total* boolean disjuncts that reorders
    itself by observed hit rate.

    Soundness: every disjunct is total (never raises) and boolean, so
    disjunct order cannot change the result — only how fast the common
    case short-circuits.  The counters are racy under free-threaded
    execution; a lost increment merely delays a re-sort, it never
    changes a decision.
    """

    __slots__ = ("parts", "hits", "calls")

    def __init__(self, parts: list[Callable[[Slots], Any]]) -> None:
        self.parts = list(parts)
        self.hits = [0] * len(parts)
        self.calls = 0

    def __call__(self, env: Slots) -> bool:
        self.calls += 1
        if self.calls % ADAPTIVE_REORDER_PERIOD == 0:
            order = sorted(range(len(self.parts)),
                           key=lambda i: -self.hits[i])
            self.parts = [self.parts[i] for i in order]
            self.hits = [self.hits[i] for i in order]
        for i, part in enumerate(self.parts):
            if part(env):
                self.hits[i] += 1
                return True
        return False


class LoweredCheck:
    """One pair's compiled admission check over the slot layout
    ``[s1, s2, *params1, *params2, r1?]`` (+ quantifier scratch slots).

    :meth:`check` is the hot-path entry: it builds the slot list
    directly from the gatekeeper's logged entry and incoming call —
    no dict, no :class:`~repro.eval.values.Record` wrapper — and
    returns exactly what the interpreter would."""

    __slots__ = ("fn", "n1", "n2", "has_r1", "extra", "total", "const")

    def __init__(self, fn: Callable[[Slots], Any], n1: int, n2: int,
                 has_r1: bool, extra: int, total: bool,
                 const: Any = _NOT_CONST) -> None:
        self.fn = fn
        self.n1 = n1
        self.n2 = n2
        self.has_r1 = has_r1
        self.extra = extra
        self.total = total
        #: The folded value when the whole formula is a constant
        #: (diagnostics only; ``check`` goes through ``fn`` regardless).
        self.const = const

    @property
    def is_const(self) -> bool:
        return self.const is not _NOT_CONST

    def check(self, before: Any, current: Any, args1: tuple,
              result1: Any, args2: tuple) -> Any:
        if len(args1) != self.n1 or len(args2) != self.n2:
            raise SlotMismatch(
                f"expected {self.n1}/{self.n2} arguments, "
                f"got {len(args1)}/{len(args2)}")
        env: Slots = [before, current]
        env.extend(args1)
        env.extend(args2)
        if self.has_r1:
            env.append(result1)
        if self.extra:
            env.extend([None] * self.extra)
        return self.fn(env)


def pair_scope(op1, op2) -> dict[str, int]:
    """The compile-time name->slot map matching the gatekeeper's pair
    environment (:meth:`ConflictManager._pair_env`): state snapshots
    first, then the order-suffixed parameters, then ``r1`` when the
    first operation returns a value."""
    scope = {"s1": 0, "s2": 1}
    slot = 2
    for param in op1.params:
        scope[f"{param.name}1"] = slot
        slot += 1
    for param in op2.params:
        scope[f"{param.name}2"] = slot
        slot += 1
    if op1.result_sort is not None:
        scope["r1"] = slot
    return scope


def lower_pair_condition(term: t.Term, op1, op2,
                         ctx: EvalContext) -> LoweredCheck:
    """Lower a pair condition into a :class:`LoweredCheck` over the
    pair's slot layout.  Raises :class:`CompileError` when the term
    uses a construct the lowerer does not support."""
    scope = pair_scope(op1, op2)
    has_r1 = op1.result_sort is not None
    base = 2 + len(op1.params) + len(op2.params) + (1 if has_r1 else 0)
    lowerer = _Lowerer(ctx, base)
    fn, total, const = lowerer.lower(term, scope)
    return LoweredCheck(fn, n1=len(op1.params), n2=len(op2.params),
                        has_r1=has_r1, extra=lowerer.nslots - base,
                        total=total, const=const)


def _const_node(value: Any):
    return (lambda env: value), True, value


def _raiser(message: str):
    """A node that deterministically raises: the interpreter would
    raise the same :class:`EvalError` (same message) on every
    evaluation, so fold the raise itself."""
    def fail(env: Slots):
        raise EvalError(message)
    return fail, False, _NOT_CONST


class _Lowerer:
    """Recursive lowering with a slot allocator for quantifier
    bindings.  Each ``lower`` call returns ``(fn, total, const)``:

    - ``fn`` — the closure over the slot list;
    - ``total`` — proven never to raise :class:`EvalError` (used to
      justify dropping dead code in short-circuit folds and to gate
      adaptive reordering);
    - ``const`` — the folded value, or ``_NOT_CONST``.
    """

    def __init__(self, ctx: EvalContext, nslots: int) -> None:
        self.ctx = ctx
        self.nslots = nslots

    # -- folding helpers ------------------------------------------------------

    def _fold(self, fn, total, children_const: bool):
        """Generic fold: a total node over constant children computes
        once now.  A node that deterministically raises ``EvalError``
        folds to a raiser with the interpreter's message; any other
        compile-time exception leaves the node unfolded (it will raise
        identically at runtime)."""
        if not children_const:
            return fn, total, _NOT_CONST
        try:
            value = fn([])
        except EvalError as exc:
            return _raiser(str(exc))
        except Exception:
            return fn, total, _NOT_CONST
        return _const_node(value)

    def _lower_all(self, terms, scope):
        return [self.lower(sub, scope) for sub in terms]

    # -- the dispatcher -------------------------------------------------------

    def lower(self, term: t.Term, scope: dict[str, int]):
        if isinstance(term, t.Var):
            try:
                slot = scope[term.name]
            except KeyError:
                # The interpreter raises on every evaluation; preserve
                # the exact message.
                return _raiser(f"unbound variable {term.name!r}")
            return (lambda env: env[slot]), True, _NOT_CONST
        if isinstance(term, t.BoolConst):
            return _const_node(term.value)
        if isinstance(term, t.IntConst):
            return _const_node(term.value)
        if isinstance(term, t.ObjConst):
            return _const_node(term.name)
        if isinstance(term, t.Null):
            return _const_node(None)
        if isinstance(term, t.Not):
            fn, total, const = self.lower(term.arg, scope)
            if const is not _NOT_CONST:
                return _const_node(not const)
            return (lambda env: not fn(env)), total, _NOT_CONST
        if isinstance(term, t.And):
            return self._lower_and(term, scope)
        if isinstance(term, t.Or):
            return self._lower_or(term, scope)
        if isinstance(term, t.Implies):
            lhs, lt, lc = self.lower(term.lhs, scope)
            rhs, rt, rc = self.lower(term.rhs, scope)
            fn = lambda env: (not lhs(env)) or rhs(env)  # noqa: E731
            return self._fold(fn, lt and rt,
                              lc is not _NOT_CONST and rc is not _NOT_CONST)
        if isinstance(term, t.Iff):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a == b)
        if isinstance(term, t.Ite):
            return self._lower_ite(term, scope)
        if isinstance(term, t.Eq):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a == b)
        if isinstance(term, t.Lt):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a < b)
        if isinstance(term, t.Le):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a <= b)
        if isinstance(term, t.Add):
            nodes = self._lower_all(term.args, scope)
            parts = [fn for fn, _, _ in nodes]
            fn = lambda env: sum(p(env) for p in parts)  # noqa: E731
            return self._fold(fn, all(tt for _, tt, _ in nodes),
                              all(c is not _NOT_CONST for _, _, c in nodes))
        if isinstance(term, t.Sub):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a - b)
        if isinstance(term, t.Neg):
            fn, total, const = self.lower(term.arg, scope)
            return self._fold(lambda env: -fn(env), total,
                              const is not _NOT_CONST)
        if isinstance(term, t.Member):
            return self._binop(term.elem, term.set_, scope,
                               lambda a, b: a in b)
        if isinstance(term, t.Union):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a | b)
        if isinstance(term, t.Inter):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a & b)
        if isinstance(term, t.Diff):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a - b)
        if isinstance(term, t.FiniteSet):
            nodes = self._lower_all(term.elems, scope)
            parts = [fn for fn, _, _ in nodes]
            fn = lambda env: frozenset(p(env) for p in parts)  # noqa: E731
            return self._fold(fn, all(tt for _, tt, _ in nodes),
                              all(c is not _NOT_CONST for _, _, c in nodes))
        if isinstance(term, t.Card):
            fn, total, const = self.lower(term.set_, scope)
            return self._fold(lambda env: len(fn(env)), total,
                              const is not _NOT_CONST)
        if isinstance(term, t.SubsetEq):
            return self._binop(term.lhs, term.rhs, scope,
                               lambda a, b: a <= b)
        if isinstance(term, t.MapGet):
            # FMap.lookup is total (missing keys yield None).
            return self._binop(term.map_, term.key, scope,
                               lambda m, k: m.lookup(k))
        if isinstance(term, t.MapHasKey):
            return self._binop(term.map_, term.key, scope,
                               lambda m, k: k in m)
        if isinstance(term, t.MapPut):
            nodes = self._lower_all((term.map_, term.key, term.value),
                                    scope)
            (mf, _, _), (kf, _, _), (vf, _, _) = nodes
            fn = lambda env: mf(env).put(kf(env), vf(env))  # noqa: E731
            return self._fold(fn, all(tt for _, tt, _ in nodes),
                              all(c is not _NOT_CONST for _, _, c in nodes))
        if isinstance(term, t.MapRemoveKey):
            return self._binop(term.map_, term.key, scope,
                               lambda m, k: m.remove(k))
        if isinstance(term, t.MapSize):
            fn, total, const = self.lower(term.map_, scope)
            return self._fold(lambda env: len(fn(env)), total,
                              const is not _NOT_CONST)
        if isinstance(term, t.MapKeys):
            fn, total, const = self.lower(term.map_, scope)
            return self._fold(lambda env: frozenset(fn(env)), total,
                              const is not _NOT_CONST)
        if isinstance(term, t.SeqLen):
            fn, total, const = self.lower(term.seq, scope)
            return self._fold(lambda env: len(fn(env)), total,
                              const is not _NOT_CONST)
        if isinstance(term, t.SeqGet):
            return self._lower_indexed(
                term.seq, term.index, None, scope,
                strict=True,
                apply=lambda s, i, _v: s[i],
                message=lambda s, i: (f"sequence index {i} out of range "
                                      f"0..{len(s) - 1}"))
        if isinstance(term, t.SeqInsert):
            return self._lower_indexed(
                term.seq, term.index, term.value, scope,
                strict=False,
                apply=lambda s, i, v: seq_insert(s, i, v),
                message=lambda s, i: (f"insert index {i} out of range "
                                      f"0..{len(s)}"))
        if isinstance(term, t.SeqRemove):
            return self._lower_indexed(
                term.seq, term.index, None, scope,
                strict=True,
                apply=lambda s, i, _v: seq_remove(s, i),
                message=lambda s, i: f"remove index {i} out of range")
        if isinstance(term, t.SeqUpdate):
            return self._lower_indexed(
                term.seq, term.index, term.value, scope,
                strict=True,
                apply=lambda s, i, v: seq_update(s, i, v),
                message=lambda s, i: f"update index {i} out of range")
        if isinstance(term, t.SeqIndexOf):
            return self._binop(term.seq, term.value, scope,
                               seq_index_of)
        if isinstance(term, t.SeqLastIndexOf):
            return self._binop(term.seq, term.value, scope,
                               seq_last_index_of)
        if isinstance(term, t.SeqContains):
            return self._binop(term.seq, term.value, scope,
                               lambda s, v: v in s)
        if isinstance(term, t.Field):
            fn, total, const = self.lower(term.state, scope)
            name = term.name
            return self._fold(lambda env: fn(env)[name], total,
                              const is not _NOT_CONST)
        if isinstance(term, t.ObserverCall):
            return self._lower_observer(term, scope)
        if isinstance(term, (t.Forall, t.Exists)):
            return self._lower_quantifier(term, scope)
        raise CompileError(f"cannot lower {type(term).__name__}")

    # -- composite nodes ------------------------------------------------------

    def _binop(self, left: t.Term, right: t.Term, scope, op):
        lhs, lt, lc = self.lower(left, scope)
        rhs, rt, rc = self.lower(right, scope)
        fn = lambda env: op(lhs(env), rhs(env))  # noqa: E731
        return self._fold(fn, lt and rt,
                          lc is not _NOT_CONST and rc is not _NOT_CONST)

    def _lower_and(self, term: t.And, scope):
        """Short-circuit-aware fold.  ``all()`` stops at the first
        falsy argument, so conjuncts after a constant-false one are
        dead; constant-true conjuncts are no-ops; total conjuncts
        before a constant false evaluate for nothing (no effects, no
        raises) and drop too."""
        kept: list = []
        kept_total = True
        for sub in term.args:
            fn, total, const = self.lower(sub, scope)
            if const is not _NOT_CONST:
                if const:
                    continue  # true conjunct: drop
                # Constant false: everything after is dead; only the
                # non-total prefix must still run (it may raise first).
                prefix = [p for p, pt in kept if not pt]
                if not prefix:
                    return _const_node(False)

                def short(env, _prefix=prefix):
                    for p in _prefix:
                        p(env)
                    return False
                return short, False, _NOT_CONST
            kept.append((fn, total))
            kept_total = kept_total and total
        if not kept:
            return _const_node(True)
        if len(kept) == 1:
            fn, total = kept[0]
            return (lambda env: bool(fn(env))), total, _NOT_CONST
        parts = [p for p, _ in kept]
        return (lambda env: all(p(env) for p in parts)), kept_total, \
            _NOT_CONST

    def _lower_or(self, term: t.Or, scope):
        """The dual fold, plus the adaptive hot-disjunct reorder: when
        every surviving disjunct is total, evaluation order cannot
        change the outcome, so the disjunction re-sorts itself by
        observed hit rate."""
        kept: list = []
        kept_total = True
        for sub in term.args:
            fn, total, const = self.lower(sub, scope)
            if const is not _NOT_CONST:
                if not const:
                    continue  # false disjunct: drop
                prefix = [p for p, pt in kept if not pt]
                if not prefix:
                    return _const_node(True)

                def short(env, _prefix=prefix):
                    for p in _prefix:
                        p(env)
                    return True
                return short, False, _NOT_CONST
            kept.append((fn, total))
            kept_total = kept_total and total
        if not kept:
            return _const_node(False)
        if len(kept) == 1:
            fn, total = kept[0]
            return (lambda env: bool(fn(env))), total, _NOT_CONST
        parts = [p for p, _ in kept]
        if kept_total and len(parts) >= 2:
            return _AdaptiveOr(parts), True, _NOT_CONST
        return (lambda env: any(p(env) for p in parts)), kept_total, \
            _NOT_CONST

    def _lower_ite(self, term: t.Ite, scope):
        cond, ct, cc = self.lower(term.cond, scope)
        if cc is not _NOT_CONST:
            # The interpreter evaluates only the chosen branch.
            return self.lower(term.then if cc else term.els, scope)
        then, tt, _tc = self.lower(term.then, scope)
        els, et, _ec = self.lower(term.els, scope)
        fn = lambda env: then(env) if cond(env) else els(env)  # noqa: E731
        return fn, ct and tt and et, _NOT_CONST

    def _lower_indexed(self, seq_t, index_t, value_t, scope, *,
                       strict: bool, apply, message):
        """The bounds-checked sequence operations — the only lowered
        nodes that can raise :class:`EvalError` at runtime, with the
        interpreter's exact messages."""
        seq, _st, sc = self.lower(seq_t, scope)
        index, _it, ic = self.lower(index_t, scope)
        if value_t is not None:
            value, _vt, vc = self.lower(value_t, scope)
        else:
            value, vc = (lambda env: None), None
        upper_shift = 0 if strict else 1

        def indexed(env):
            s = seq(env)
            i = index(env)
            if not 0 <= i < len(s) + upper_shift:
                raise EvalError(message(s, i))
            return apply(s, i, value(env))
        return self._fold(indexed, False,
                          sc is not _NOT_CONST and ic is not _NOT_CONST
                          and vc is not _NOT_CONST)

    def _lower_observer(self, term: t.ObserverCall, scope):
        state, _st, _sc = self.lower(term.state, scope)
        nodes = self._lower_all(term.args, scope)
        args = [fn for fn, _, _ in nodes]
        method = term.method
        observe = self.ctx.observe
        if observe is None:
            return _raiser(
                f"observer {method!r} used without a dispatcher")

        def call(env):
            return observe(state(env), method,
                           tuple(a(env) for a in args))
        # Dispatch runs arbitrary spec semantics: never total, never
        # folded (the observer may depend on structure state).
        return call, False, _NOT_CONST

    def _lower_quantifier(self, term, scope):
        """Quantifiers reconstruct the interpreter's environment view
        for domain derivation: :meth:`EvalContext.domains_for` is
        called on a dict of *every* visible binding (captured before
        this variable binds, so a shadowed outer value is visited,
        exactly like the interpreter's pre-loop ``domains_for(env)``).
        The bound variable gets a fresh scratch slot, so outer slots
        are never mutated and no save/restore is needed."""
        visible = tuple(scope.items())
        slot = self.nslots
        self.nslots += 1
        inner_scope = dict(scope)
        inner_scope[term.var.name] = slot
        body, body_total, body_const = self.lower(term.body, inner_scope)
        is_int = term.var.var_sort is Sort.INT
        is_forall = isinstance(term, t.Forall)
        ctx = self.ctx
        derived = ctx.int_domain is None or ctx.obj_domain is None
        if body_const is not _NOT_CONST and derived:
            # Derived domains are never empty (ints always contain
            # {-1, 0}, objects always contain None), so a constant body
            # decides the quantifier outright.  With explicit domains
            # an empty domain would flip the vacuous case, so no fold.
            return _const_node(bool(body_const))

        def quantified(env):
            ints, objs = ctx.domains_for(
                {name: env[s] for name, s in visible})
            domain = ints if is_int else objs
            for value in domain:
                env[slot] = value
                truth = body(env)
                if is_forall and not truth:
                    return False
                if not is_forall and truth:
                    return True
            return is_forall
        return quantified, body_total, _NOT_CONST
