"""The process-global compiled-pair cache.

The executor builds a fresh conflict manager per run, but a pair's
lowered closure depends only on content — the spec fingerprint, the
formula text, the compiler versions (see
:func:`repro.engine.fingerprint.compiled_admission_fingerprint`) — so
closures are shared process-wide under a content-addressed key.  A
bench sweep that runs the same structure hundreds of times lowers each
pair exactly once.

Sharing is sound for the same reason the ``.repro-cache`` result cache
is: identical fingerprints mean identical lowering inputs, so the
cached closure behaves identically to a fresh one.  The adaptive
disjunct counters inside a shared closure are cross-run state by
design — hit-rate learning carries over — and are decision-neutral
(see :class:`~repro.compiled.lowering._AdaptiveOr`).

A pair the lowerer cannot handle is cached as uncompilable, so the
``CompileError`` is paid once and every later manager takes the
interpreted fallback without re-raising.
"""

from __future__ import annotations

import threading

from ..engine.fingerprint import (compiled_admission_fingerprint,
                                  stable_hash)
from .lowering import CompileError, LoweredCheck, lower_pair_condition

#: Sentinel for pairs the lowerer refused (cached misses stay misses).
UNCOMPILABLE = None

_PAIR_CACHE: dict[str, LoweredCheck | None] = {}
_CACHE_LOCK = threading.Lock()


def pair_cache_key(spec_fp, cond, label: str, ctx) -> str:
    """The content address of one (structure, m1, m2) compiled check."""
    return stable_hash(
        compiled_admission_fingerprint(spec_fp, cond, label, ctx))


def compiled_pair(spec, spec_fp, cond, label: str,
                  ctx) -> LoweredCheck | None:
    """The lowered check for ``cond`` on ``spec``'s pair
    ``(cond.m1, cond.m2)``, from the global cache; ``None`` when the
    formula is uncompilable (callers use the interpreter).

    ``cond`` is anything with ``family``/``m1``/``m2``/``text`` and a
    ``dynamic_formula`` — both
    :class:`~repro.commutativity.conditions.CommutativityCondition`
    and :class:`~repro.stability.compiler.StableCondition` qualify.
    """
    key = pair_cache_key(spec_fp, cond, label, ctx)
    with _CACHE_LOCK:
        try:
            return _PAIR_CACHE[key]
        except KeyError:
            pass
    # Lower outside the lock: parsing + lowering can be slow, and a
    # duplicate lowering of the same content is idempotent.
    op1 = spec.operations[cond.m1]
    op2 = spec.operations[cond.m2]
    try:
        check = lower_pair_condition(cond.dynamic_formula, op1, op2, ctx)
    except CompileError:
        check = UNCOMPILABLE
    with _CACHE_LOCK:
        return _PAIR_CACHE.setdefault(key, check)


def cache_size() -> int:
    with _CACHE_LOCK:
        return len(_PAIR_CACHE)


def clear_cache() -> None:
    """Drop every cached closure (tests; never needed in production —
    content addressing makes stale entries unreachable, not wrong)."""
    with _CACHE_LOCK:
        _PAIR_CACHE.clear()
