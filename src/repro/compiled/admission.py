"""Arm-time admission compilation for one conflict manager.

When a manager is constructed with ``compiled=True`` it builds a
:class:`CompiledAdmission`: every between condition in the structure's
catalog and every registered drift-stable condition is lowered (through
the process-global content-addressed cache) into a slot-specialized
closure *before the first transaction runs*.  The hot loop then asks
:meth:`between_checker` / :meth:`stable_checker` — plain dict lookups —
and falls back to the interpreter only for pairs the lowerer refused
(:class:`~repro.compiled.lowering.CompileError`, cached as ``None``)
or calls whose arity does not fit the compiled slot layout
(:class:`~repro.compiled.lowering.SlotMismatch`).

Shard-router predicates need no lowering: they are already plain
Python closures (:mod:`repro.runtime.sharding`), memoized per
(operation, arguments) by the manager's virtual-route cache — the
formula ASTs were the only interpreted piece of the admission path.
"""

from __future__ import annotations

from ..commutativity.conditions import Kind
from ..engine.fingerprint import spec_fingerprint, stable_hash
from .cache import compiled_pair
from .lowering import LoweredCheck

#: id(spec) -> (spec, fingerprint hash).  Specs are immutable
#: module-level singletons; hashing one costs milliseconds (it
#: serializes every operation's semantics source) while a manager is
#: armed per run, so the hash is computed once per spec object.  The
#: strong reference keeps the id from being recycled.
_SPEC_HASHES: dict[int, tuple[object, str]] = {}


def _spec_hash(spec) -> str:
    cached = _SPEC_HASHES.get(id(spec))
    if cached is not None:
        return cached[1]
    digest = stable_hash(spec_fingerprint(spec))
    _SPEC_HASHES[id(spec)] = (spec, digest)
    return digest


class CompiledAdmission:
    """The compiled checks of one structure's admission vocabulary."""

    __slots__ = ("spec", "ctx", "between", "stable")

    def __init__(self, spec, ctx, conditions=(),
                 stable_conditions=()) -> None:
        self.spec = spec
        self.ctx = ctx
        spec_fp = _spec_hash(spec)
        #: (m1, m2) -> lowered between check, or None (uncompilable).
        self.between: dict[tuple[str, str], LoweredCheck | None] = {}
        for cond in conditions:
            if cond.kind is not Kind.BETWEEN:
                continue
            self.between[(cond.m1, cond.m2)] = compiled_pair(
                spec, spec_fp, cond, "between", ctx)
        #: (m1, m2) -> lowered drift-stable check, or None.  The tier
        #: is part of the cache label (informative, never
        #: decision-relevant — both tiers admit identically).
        self.stable: dict[tuple[str, str], LoweredCheck | None] = {}
        for stable in stable_conditions:
            label = f"stable:{getattr(stable, 'tier', 'weakened')}"
            self.stable[(stable.m1, stable.m2)] = compiled_pair(
                spec, spec_fp, stable, label, ctx)

    def between_checker(self, m1: str, m2: str) -> LoweredCheck | None:
        """The compiled between check for a pair (None: interpret)."""
        return self.between.get((m1, m2))

    def stable_checker(self, m1: str, m2: str) -> LoweredCheck | None:
        """The compiled drift-stable check for a pair (None: interpret)."""
        return self.stable.get((m1, m2))

    @property
    def compiled_count(self) -> int:
        """How many pairs actually lowered (diagnostics)."""
        return (sum(1 for c in self.between.values() if c is not None)
                + sum(1 for c in self.stable.values() if c is not None))

    @property
    def folded_count(self) -> int:
        """How many lowered pairs folded to a constant (diagnostics)."""
        return (sum(1 for c in self.between.values()
                    if c is not None and c.is_const)
                + sum(1 for c in self.stable.values()
                      if c is not None and c.is_const))
