"""ListSet: a set implemented as a singly-linked list (Chapter 5).

This is the motivating example from Section 1.1: insertions commute at
the *semantic* level (any insertion order yields the same abstract set)
but not at the concrete level (different orders produce different linked
lists).  New elements are prepended, so the node order records insertion
history — exactly the concrete-state divergence the paper's abstraction
function erases.
"""

from __future__ import annotations

from typing import Iterator

from ..eval.values import Record


class _Node:
    __slots__ = ("value", "next")

    def __init__(self, value: str, next_: "_Node | None") -> None:
        self.value = value
        self.next = next_


class ListSet:
    """A set of objects backed by a singly-linked list."""

    def __init__(self) -> None:
        self._head: _Node | None = None
        self._size = 0

    # -- specified operations -------------------------------------------------

    def add(self, v: str) -> bool:
        """Add ``v``; returns True iff it was not already present."""
        if v is None:
            raise ValueError("v must not be null")
        if self.contains(v):
            return False
        self._head = _Node(v, self._head)
        self._size += 1
        return True

    def contains(self, v: str) -> bool:
        """True iff ``v`` is in the set."""
        if v is None:
            raise ValueError("v must not be null")
        node = self._head
        while node is not None:
            if node.value == v:
                return True
            node = node.next
        return False

    def remove(self, v: str) -> bool:
        """Remove ``v``; returns True iff it was present."""
        if v is None:
            raise ValueError("v must not be null")
        prev: _Node | None = None
        node = self._head
        while node is not None:
            if node.value == v:
                if prev is None:
                    self._head = node.next
                else:
                    prev.next = node.next
                self._size -= 1
                return True
            prev = node
            node = node.next
        return False

    def size(self) -> int:
        """Number of elements."""
        return self._size

    # -- abstraction function --------------------------------------------------

    def abstract_state(self) -> Record:
        """The abstraction function: concrete list -> abstract set state."""
        return Record(contents=frozenset(self._iter_values()),
                      size=self._size)

    def _iter_values(self) -> Iterator[str]:
        node = self._head
        while node is not None:
            yield node.value
            node = node.next

    def concrete_shape(self) -> tuple[str, ...]:
        """The concrete node order (for tests demonstrating that different
        operation orders yield different concrete but equal abstract
        states)."""
        return tuple(self._iter_values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ListSet({' -> '.join(self._iter_values())})"
