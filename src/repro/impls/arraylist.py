"""ArrayList: a dense map from integers to objects backed by a growable
array (Chapter 5).  ``add_at`` shifts elements up, ``remove_at`` shifts
them down, exactly as the paper's operations describe."""

from __future__ import annotations

from ..eval.values import Record


class ArrayList:
    """A dense integer-indexed map backed by a growable array.

    The backing array over-allocates (doubling growth), so two ArrayLists
    with the same abstract sequence may have different capacities and
    stale slots beyond ``size`` — concrete differences the abstraction
    function erases.
    """

    _INITIAL_CAPACITY = 4

    def __init__(self) -> None:
        self._data: list[str | None] = [None] * self._INITIAL_CAPACITY
        self._size = 0

    # -- specified operations -------------------------------------------------

    def add_at(self, i: int, v: str) -> None:
        """Insert ``v`` at index ``i``, shifting later elements up."""
        if v is None:
            raise ValueError("v must not be null")
        if not 0 <= i <= self._size:
            raise IndexError(f"add_at index {i} out of range 0..{self._size}")
        if self._size == len(self._data):
            self._grow()
        for j in range(self._size, i, -1):
            self._data[j] = self._data[j - 1]
        self._data[i] = v
        self._size += 1

    def get(self, i: int) -> str:
        """The element at index ``i``."""
        self._check_index(i)
        return self._data[i]

    def indexOf(self, v: str) -> int:
        """Index of the first occurrence of ``v``, or -1."""
        if v is None:
            raise ValueError("v must not be null")
        for j in range(self._size):
            if self._data[j] == v:
                return j
        return -1

    def lastIndexOf(self, v: str) -> int:
        """Index of the last occurrence of ``v``, or -1."""
        if v is None:
            raise ValueError("v must not be null")
        for j in range(self._size - 1, -1, -1):
            if self._data[j] == v:
                return j
        return -1

    def remove_at(self, i: int) -> str:
        """Remove and return the element at ``i``, shifting later
        elements down."""
        self._check_index(i)
        removed = self._data[i]
        for j in range(i, self._size - 1):
            self._data[j] = self._data[j + 1]
        self._size -= 1
        # The stale trailing slot is deliberately left behind: it is a
        # concrete-state artifact invisible through the abstraction.
        return removed

    def set(self, i: int, v: str) -> str:
        """Replace the element at ``i``; returns the replaced element."""
        if v is None:
            raise ValueError("v must not be null")
        self._check_index(i)
        replaced = self._data[i]
        self._data[i] = v
        return replaced

    def size(self) -> int:
        """Number of elements."""
        return self._size

    # -- internals --------------------------------------------------------------

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._size:
            raise IndexError(f"index {i} out of range 0..{self._size - 1}")

    def _grow(self) -> None:
        self._data.extend([None] * len(self._data))

    # -- abstraction function -----------------------------------------------------

    def abstract_state(self) -> Record:
        """The abstraction function: backing array -> abstract sequence."""
        return Record(elems=tuple(self._data[:self._size]), size=self._size)

    def capacity(self) -> int:
        """Backing-array capacity (a concrete-only attribute)."""
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayList({list(self._data[:self._size])})"
