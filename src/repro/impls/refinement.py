"""Refinement checking: concrete implementations against abstract specs.

The paper builds on *fully verified* data structure implementations
([52, 53]): each concrete structure provably implements its abstract
specification through an abstraction function.  We discharge the same
obligation by checking, exhaustively over a scope and property-based in
the test suite, that every concrete operation's effect and return value
match the executable abstract semantics — and that the postcondition
formulas hold of the transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..eval.enumeration import Scope
from ..eval.interpreter import EvalContext, evaluate
from ..eval.values import Record
from ..specs import DataStructureSpec, get_spec
from .accumulator import Accumulator
from .arraylist import ArrayList
from .association_list import AssociationList
from .hashset import HashSet
from .hashtable import HashTable
from .listset import ListSet

#: Concrete class per data structure name.
IMPLEMENTATIONS: dict[str, type] = {
    "ListSet": ListSet,
    "HashSet": HashSet,
    "AssociationList": AssociationList,
    "HashTable": HashTable,
    "ArrayList": ArrayList,
    "Accumulator": Accumulator,
}


def new_instance(name: str) -> Any:
    """A fresh concrete data structure."""
    return IMPLEMENTATIONS[name]()


def build_from_state(name: str, state: Record) -> Any:
    """Construct a concrete structure whose abstract state is ``state``."""
    impl = new_instance(name)
    spec = get_spec(name)
    if spec.name == "Set":
        for v in sorted(state["contents"]):
            impl.add(v)
    elif spec.name == "Map":
        for k in sorted(state["contents"]):
            impl.put(k, state["contents"][k])
    elif spec.name == "ArrayList":
        for i, v in enumerate(state["elems"]):
            impl.add_at(i, v)
    else:  # Accumulator
        impl.increase(state["value"])
    built = impl.abstract_state()
    if built != state:
        raise AssertionError(f"build_from_state produced {built}, "
                             f"wanted {state}")
    return impl


def concrete_method_name(op: Any) -> str:
    """The concrete method implementing a spec operation (or operation
    name): discard variants dispatch to their base operation's method.

    This is the single source of truth for concrete dispatch.  A spec
    :class:`~repro.specs.interface.Operation` carries ``base_name``
    explicitly, so custom registry structures are free to name their
    discard variants however they like; bare strings fall back to the
    built-in trailing-underscore convention (``add_`` -> ``add``).
    """
    if isinstance(op, str):
        return op.rstrip("_")
    return op.base_name or op.name


def invoke_concrete(impl: Any, op: Any,
                    args: tuple[Any, ...]) -> tuple[Any, Any]:
    """Invoke a spec operation (or operation name) on a concrete
    structure; returns ``(raw_result, visible_result)``.

    ``raw_result`` is what the concrete base method returned — a
    rollback system must keep it even for discard variants (the paper:
    "any system that applies such inverse operations must therefore
    store the return value").  ``visible_result`` is what the client
    sees: ``None`` for discard variants, matching the abstract
    semantics.
    """
    method: Callable = getattr(impl, concrete_method_name(op))
    raw = method(*args)
    if isinstance(op, str):
        discards = op.endswith("_")
    else:
        discards = op.discards_result
    return raw, (None if discards else raw)


def invoke(impl: Any, op: Any, args: tuple[Any, ...]) -> Any:
    """Invoke a (possibly discard-variant) operation on a concrete
    structure; discard variants return None like their specs.  ``op``
    is a spec :class:`~repro.specs.interface.Operation` or an operation
    name string."""
    return invoke_concrete(impl, op, args)[1]


@dataclass(frozen=True)
class RefinementViolation:
    name: str
    op: str
    state: Record
    args: tuple[Any, ...]
    reason: str


def check_refinement(name: str, scope: Scope | None = None,
                     max_violations: int = 5) -> list[RefinementViolation]:
    """Exhaustively check that ``name``'s implementation refines its spec.

    For every in-scope abstract state and operation application: build a
    concrete structure with that abstract state, run the operation on
    both the structure and the abstract semantics, and compare the
    return value, the resulting abstract state, and the postcondition.
    """
    scope = scope or Scope()
    spec = get_spec(name)
    violations: list[RefinementViolation] = []
    ctx = EvalContext(observe=spec.observe)
    for state in spec.states(scope):
        for op in spec.operations.values():
            for args in spec.arguments(op, scope):
                if not spec.precondition_holds(op, state, args):
                    continue
                expected_state, expected_result = op.semantics(state, args)
                impl = build_from_state(name, state)
                actual_result = invoke(impl, op, args)
                actual_state = impl.abstract_state()
                reason = None
                if actual_result != expected_result:
                    reason = (f"result {actual_result!r} != spec "
                              f"{expected_result!r}")
                elif actual_state != expected_state:
                    reason = (f"abstract state {actual_state} != spec "
                              f"{expected_state}")
                elif op.postcondition is not None:
                    env = _post_env(spec, op, state, actual_state,
                                    args, actual_result)
                    if not evaluate(op.postcondition, env, ctx):
                        reason = "postcondition formula violated"
                if reason is not None:
                    violations.append(RefinementViolation(
                        name, op.name, state, args, reason))
                    if len(violations) >= max_violations:
                        return violations
    return violations


def _post_env(spec: DataStructureSpec, op: Any, old: Record, new: Record,
              args: tuple[Any, ...], result: Any) -> dict[str, Any]:
    env: dict[str, Any] = {}
    for fname in spec.state_fields:
        env[f"old_{fname}"] = old[fname]
        env[fname] = new[fname]
    for param, value in zip(op.params, args):
        env[param.name] = value
    if op.result_sort is not None:
        env["result"] = result
    return env
