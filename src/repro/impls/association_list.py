"""AssociationList: a map implemented as a singly-linked list of
key/value pairs (Chapter 5).

``put`` on a fresh key prepends a new pair node, so the list order
records insertion history; ``put`` on an existing key overwrites the
value in place.  The abstraction function forgets the order.
"""

from __future__ import annotations

from typing import Iterator

from ..eval.values import FMap, Record


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: str, value: str, next_: "_Node | None") -> None:
        self.key = key
        self.value = value
        self.next = next_


class AssociationList:
    """A map from objects to objects backed by a linked pair list."""

    def __init__(self) -> None:
        self._head: _Node | None = None
        self._size = 0

    # -- specified operations -------------------------------------------------

    def containsKey(self, k: str) -> bool:
        """True iff ``k`` is mapped."""
        if k is None:
            raise ValueError("k must not be null")
        return self._find(k) is not None

    def get(self, k: str) -> str | None:
        """The value mapped to ``k``, or None (null) if unmapped."""
        if k is None:
            raise ValueError("k must not be null")
        node = self._find(k)
        return node.value if node is not None else None

    def put(self, k: str, v: str) -> str | None:
        """Map ``k`` to ``v``; returns the previous value or None."""
        if k is None or v is None:
            raise ValueError("k and v must not be null")
        node = self._find(k)
        if node is not None:
            previous = node.value
            node.value = v
            return previous
        self._head = _Node(k, v, self._head)
        self._size += 1
        return None

    def remove(self, k: str) -> str | None:
        """Unmap ``k``; returns the previous value or None."""
        if k is None:
            raise ValueError("k must not be null")
        prev: _Node | None = None
        node = self._head
        while node is not None:
            if node.key == k:
                if prev is None:
                    self._head = node.next
                else:
                    prev.next = node.next
                self._size -= 1
                return node.value
            prev = node
            node = node.next
        return None

    def size(self) -> int:
        """Number of key/value pairs."""
        return self._size

    # -- internals --------------------------------------------------------------

    def _find(self, k: str) -> _Node | None:
        node = self._head
        while node is not None:
            if node.key == k:
                return node
            node = node.next
        return None

    # -- abstraction function -----------------------------------------------------

    def abstract_state(self) -> Record:
        """The abstraction function: pair list -> abstract map state."""
        return Record(contents=FMap(dict(self._iter_pairs())),
                      size=self._size)

    def _iter_pairs(self) -> Iterator[tuple[str, str]]:
        node = self._head
        while node is not None:
            yield node.key, node.value
            node = node.next

    def concrete_shape(self) -> tuple[tuple[str, str], ...]:
        """The concrete pair order."""
        return tuple(self._iter_pairs())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{k}->{v}" for k, v in self._iter_pairs())
        return f"AssociationList({pairs})"
