"""Accumulator: a counter that clients can increase and read
(Chapter 5)."""

from __future__ import annotations

from ..eval.values import Record


class Accumulator:
    """An integer counter with ``increase`` and ``read``."""

    def __init__(self) -> None:
        self._value = 0

    def increase(self, v: int) -> None:
        """Add ``v`` to the counter."""
        self._value += v

    def read(self) -> int:
        """The current counter value."""
        return self._value

    def abstract_state(self) -> Record:
        """The abstraction function (the identity, for a counter)."""
        return Record(value=self._value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Accumulator({self._value})"
