"""HashSet: a separately-chained hash table implementing a set
(Figure 2-1).

The concrete state is an array ``table`` of buckets, each a singly-linked
list of elements, plus an element count; the abstraction function maps it
to the abstract ``{contents, size}`` state.  The table resizes by
doubling at a 0.75 load factor, which changes the concrete layout but —
as the abstraction function shows — never the abstract state.
"""

from __future__ import annotations

from typing import Iterator

from ..eval.values import Record


class _Node:
    __slots__ = ("value", "next")

    def __init__(self, value: str, next_: "_Node | None") -> None:
        self.value = value
        self.next = next_


def _hash_of(value: str, buckets: int) -> int:
    """Deterministic string hash (stable across runs, unlike ``hash``)."""
    h = 0
    for ch in value:
        h = (h * 31 + ord(ch)) & 0x7FFFFFFF
    return h % buckets


class HashSet:
    """A set of objects backed by a separately-chained hash table."""

    _INITIAL_BUCKETS = 4
    _LOAD_FACTOR = 0.75

    def __init__(self) -> None:
        self._table: list[_Node | None] = [None] * self._INITIAL_BUCKETS
        self._size = 0

    # -- specified operations -------------------------------------------------

    def add(self, v: str) -> bool:
        """Add ``v``; returns True iff it was not already present."""
        if v is None:
            raise ValueError("v must not be null")
        index = _hash_of(v, len(self._table))
        node = self._table[index]
        while node is not None:
            if node.value == v:
                return False
            node = node.next
        self._table[index] = _Node(v, self._table[index])
        self._size += 1
        if self._size > self._LOAD_FACTOR * len(self._table):
            self._resize()
        return True

    def contains(self, v: str) -> bool:
        """True iff ``v`` is in the set."""
        if v is None:
            raise ValueError("v must not be null")
        node = self._table[_hash_of(v, len(self._table))]
        while node is not None:
            if node.value == v:
                return True
            node = node.next
        return False

    def remove(self, v: str) -> bool:
        """Remove ``v``; returns True iff it was present."""
        if v is None:
            raise ValueError("v must not be null")
        index = _hash_of(v, len(self._table))
        prev: _Node | None = None
        node = self._table[index]
        while node is not None:
            if node.value == v:
                if prev is None:
                    self._table[index] = node.next
                else:
                    prev.next = node.next
                self._size -= 1
                return True
            prev = node
            node = node.next
        return False

    def size(self) -> int:
        """Number of elements."""
        return self._size

    # -- internals --------------------------------------------------------------

    def _resize(self) -> None:
        old = self._table
        self._table = [None] * (2 * len(old))
        for head in old:
            node = head
            while node is not None:
                index = _hash_of(node.value, len(self._table))
                self._table[index] = _Node(node.value, self._table[index])
                node = node.next

    # -- abstraction function -----------------------------------------------------

    def abstract_state(self) -> Record:
        """The abstraction function: hash table -> abstract set state."""
        return Record(contents=frozenset(self._iter_values()),
                      size=self._size)

    def _iter_values(self) -> Iterator[str]:
        for head in self._table:
            node = head
            while node is not None:
                yield node.value
                node = node.next

    def concrete_shape(self) -> tuple[tuple[str, ...], ...]:
        """Bucket-by-bucket layout (tests use this to exhibit equal
        abstract states with different concrete states)."""
        shape = []
        for head in self._table:
            bucket = []
            node = head
            while node is not None:
                bucket.append(node.value)
                node = node.next
            shape.append(tuple(bucket))
        return tuple(shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashSet({sorted(self._iter_values())})"
