"""Concrete linked data structure implementations with abstraction
functions (the paper's verified Java data structures, Chapter 5)."""

from .accumulator import Accumulator
from .arraylist import ArrayList
from .association_list import AssociationList
from .hashset import HashSet
from .hashtable import HashTable
from .listset import ListSet
from .refinement import (IMPLEMENTATIONS, RefinementViolation,
                         build_from_state, check_refinement,
                         concrete_method_name, invoke, invoke_concrete,
                         new_instance)

__all__ = [
    "Accumulator", "ArrayList", "AssociationList", "HashSet", "HashTable",
    "ListSet", "IMPLEMENTATIONS", "RefinementViolation", "build_from_state",
    "check_refinement", "concrete_method_name", "invoke", "invoke_concrete",
    "new_instance",
]
