"""HashTable: a separately-chained hash table implementing a map
(Chapter 5): an array contains linked lists of key/value pairs with a
hash function mapping keys to lists via the array."""

from __future__ import annotations

from typing import Iterator

from ..eval.values import FMap, Record
from .hashset import _hash_of


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: str, value: str, next_: "_Node | None") -> None:
        self.key = key
        self.value = value
        self.next = next_


class HashTable:
    """A map from objects to objects backed by a chained hash table."""

    _INITIAL_BUCKETS = 4
    _LOAD_FACTOR = 0.75

    def __init__(self) -> None:
        self._table: list[_Node | None] = [None] * self._INITIAL_BUCKETS
        self._size = 0

    # -- specified operations -------------------------------------------------

    def containsKey(self, k: str) -> bool:
        """True iff ``k`` is mapped."""
        if k is None:
            raise ValueError("k must not be null")
        return self._find(k) is not None

    def get(self, k: str) -> str | None:
        """The value mapped to ``k``, or None (null) if unmapped."""
        if k is None:
            raise ValueError("k must not be null")
        node = self._find(k)
        return node.value if node is not None else None

    def put(self, k: str, v: str) -> str | None:
        """Map ``k`` to ``v``; returns the previous value or None."""
        if k is None or v is None:
            raise ValueError("k and v must not be null")
        node = self._find(k)
        if node is not None:
            previous = node.value
            node.value = v
            return previous
        index = _hash_of(k, len(self._table))
        self._table[index] = _Node(k, v, self._table[index])
        self._size += 1
        if self._size > self._LOAD_FACTOR * len(self._table):
            self._resize()
        return None

    def remove(self, k: str) -> str | None:
        """Unmap ``k``; returns the previous value or None."""
        if k is None:
            raise ValueError("k must not be null")
        index = _hash_of(k, len(self._table))
        prev: _Node | None = None
        node = self._table[index]
        while node is not None:
            if node.key == k:
                if prev is None:
                    self._table[index] = node.next
                else:
                    prev.next = node.next
                self._size -= 1
                return node.value
            prev = node
            node = node.next
        return None

    def size(self) -> int:
        """Number of key/value pairs."""
        return self._size

    # -- internals --------------------------------------------------------------

    def _find(self, k: str) -> _Node | None:
        node = self._table[_hash_of(k, len(self._table))]
        while node is not None:
            if node.key == k:
                return node
            node = node.next
        return None

    def _resize(self) -> None:
        old = self._table
        self._table = [None] * (2 * len(old))
        for head in old:
            node = head
            while node is not None:
                index = _hash_of(node.key, len(self._table))
                self._table[index] = _Node(node.key, node.value,
                                           self._table[index])
                node = node.next

    # -- abstraction function -----------------------------------------------------

    def abstract_state(self) -> Record:
        """The abstraction function: hash table -> abstract map state."""
        return Record(contents=FMap(dict(self._iter_pairs())),
                      size=self._size)

    def _iter_pairs(self) -> Iterator[tuple[str, str]]:
        for head in self._table:
            node = head
            while node is not None:
                yield node.key, node.value
                node = node.next

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{k}->{v}" for k, v in sorted(self._iter_pairs()))
        return f"HashTable({pairs})"
