"""Render the paper's evaluation tables (Tables 5.1-5.10) from live
verification runs.

Each ``table_5_XX`` function returns the rows the paper reports; the
benchmark harness prints them and EXPERIMENTS.md records paper-vs-
measured deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..commutativity.conditions import Kind
from ..commutativity.verifier import VerificationReport, verify_all
from ..eval.enumeration import Scope
from ..proof.hints import command_count_table


def _registry(registry):
    from ..api import resolve_registry
    return resolve_registry(registry)


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    border = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(border)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def condition_table(family: str, kind: Kind,
                    pairs: list[tuple[str, str]] | None = None,
                    registry=None) -> str:
    """A Tables 5.1-5.7 style condition listing."""
    rows = []
    for cond in _registry(registry).conditions(family):
        if cond.kind is not kind:
            continue
        if pairs is not None and (cond.m1, cond.m2) not in pairs:
            continue
        dynamic = cond.dynamic_text or cond.text
        rows.append([f"{cond.m1}(..)", f"{cond.m2}(..)", cond.text, dynamic])
    headers = ["first op", "second op",
               f"{kind} condition (abstract)", "dynamic check"]
    return _format_table(headers, rows)


# -- Tables 5.1-5.7 -----------------------------------------------------------

def table_5_01() -> str:
    """Accumulator before/between/after conditions."""
    sections = []
    for kind in (Kind.BEFORE, Kind.BETWEEN, Kind.AFTER):
        sections.append(f"[{kind}]")
        sections.append(condition_table("Accumulator", kind))
    return "\n".join(sections)


_SET_PAIRS = [(m1, m2)
              for m1 in ("add_", "contains", "remove_")
              for m2 in ("add_", "contains", "remove_")]
_MAP_PAIRS = [(m1, m2)
              for m1 in ("get", "put_", "remove_")
              for m2 in ("get", "put_", "remove_")]
_ARRAY_PAIRS = [(m1, m2)
                for m1 in ("add_at", "indexOf", "remove_at")
                for m2 in ("add_at", "indexOf", "remove_at")]


def table_5_02() -> str:
    """Before conditions on ListSet and HashSet (paper's selection)."""
    return condition_table("Set", Kind.BEFORE, _SET_PAIRS)


def table_5_03() -> str:
    """Between conditions on ListSet and HashSet."""
    return condition_table("Set", Kind.BETWEEN, _SET_PAIRS)


def table_5_04() -> str:
    """Before conditions on AssociationList and HashTable."""
    return condition_table("Map", Kind.BEFORE, _MAP_PAIRS)


def table_5_05() -> str:
    """After conditions on AssociationList and HashTable."""
    return condition_table("Map", Kind.AFTER, _MAP_PAIRS)


def table_5_06() -> str:
    """Between conditions on ArrayList (paper's row/column selection)."""
    return condition_table("ArrayList", Kind.BETWEEN, _ARRAY_PAIRS)


def table_5_07() -> str:
    """After conditions on ArrayList."""
    return condition_table("ArrayList", Kind.AFTER, _ARRAY_PAIRS)


# -- Table 5.8: verification times ---------------------------------------------

#: The paper's Jahob verification times, in seconds (Table 5.8).
PAPER_TIMES = {
    "Accumulator": 0.8,
    "AssociationList": 95.0,
    "HashSet": 44.0,
    "HashTable": 200.0,
    "ListSet": 40.0,
    "ArrayList": 738.0,
}


def table_5_08(scope: Scope | None = None, backend: str = "symbolic",
               registry=None, jobs: int | None = None, cache=False) \
        -> tuple[str, dict[str, VerificationReport]]:
    """Verification times per data structure (Table 5.8).

    ``jobs``/``cache`` pass through to the sharded engine; the table
    gains per-structure shard counts, cache hit/miss columns, and the
    slowest shard so parallel runs can be load-balanced by eye.
    """
    reports = verify_all(scope or Scope(), backend=backend,
                         registry=registry, jobs=jobs, cache=cache)
    rows = []
    for name, report in reports.items():
        slowest = report.slowest_task
        paper = PAPER_TIMES.get(name)
        rows.append([
            name,
            str(report.condition_count),
            str(report.method_count),
            f"{report.elapsed:.2f}s",
            f"{paper:.1f}s" if paper is not None else "-",
            str(len(report.task_timings)),
            f"{report.cache_hits}/{report.cache_misses}",
            (f"{slowest.label} ({slowest.elapsed:.2f}s)"
             if slowest is not None else "-"),
            "yes" if report.all_verified else "NO",
        ])
    total_methods = sum(r.method_count for r in reports.values())
    rows.append(["Total", str(sum(r.condition_count
                                  for r in reports.values())),
                 str(total_methods),
                 f"{sum(r.elapsed for r in reports.values()):.2f}s",
                 f"{sum(PAPER_TIMES.values()):.1f}s",
                 str(sum(len(r.task_timings) for r in reports.values())),
                 f"{sum(r.cache_hits for r in reports.values())}"
                 f"/{sum(r.cache_misses for r in reports.values())}",
                 "", ""])
    headers = ["Data Structure", "conditions", "methods",
               f"measured ({backend})", "paper (Jahob)", "tasks",
               "cache h/m", "slowest shard", "all verified"]
    return _format_table(headers, rows), reports


def task_timing_table(reports: dict[str, VerificationReport],
                      limit: int = 10) -> str:
    """The ``limit`` slowest task shards across a set of reports."""
    timings = [t for report in reports.values()
               for t in report.task_timings]
    timings.sort(key=lambda t: t.elapsed, reverse=True)
    rows = [[t.label, t.backend, f"{t.elapsed:.3f}s",
             "hit" if t.cached else "miss"]
            for t in timings[:limit]]
    return _format_table(["task shard", "backend", "elapsed", "cache"],
                         rows)


# -- Table 5.9: proof-language command counts ------------------------------------

#: The paper's command counts for the 57 hard ArrayList methods.
PAPER_COMMANDS = {"note": 128, "assuming": 51, "pickWitness": 22,
                  "total": 201}


def table_5_09() -> str:
    """Proof-language command counts (Table 5.9), ours vs the paper's."""
    ours = command_count_table()
    rows = []
    for name in ("note", "assuming", "pickWitness", "total"):
        rows.append([name, str(ours.get(name, 0)),
                     str(PAPER_COMMANDS[name])])
    headers = ["Proof Language Command", "measured", "paper"]
    return _format_table(headers, rows)


# -- Table 5.10: inverse operations ------------------------------------------------

def table_5_10(registry=None) -> str:
    """The registered inverse operations (Table 5.10's eight)."""
    registry = _registry(registry)
    rows = []
    for family in registry.families():
        for inv in registry.inverses(family):
            op = registry.spec(family).operations[inv.op]
            call = f"{'r = ' if op.result_sort is not None else ''}" \
                   f"s1.{inv.op}(" \
                   + ", ".join(p.name for p in op.params) + ")"
            rows.append([inv.family, call, inv.render()])
    headers = ["Data Structure", "Operation", "Inverse Operation"]
    return _format_table(headers, rows)


# -- runtime throughput: policy comparison -------------------------------------

def workload_report_table(runs) -> str:
    """One row per workload run (structure x workload x policy)."""
    headers = ["structure", "workload", "policy", "mode", "workers",
               "shards", "commits", "aborts", "conflict rate", "ops/s",
               "serializable"]
    rows = [[run.structure, run.workload.label, run.policy,
             run.conflict_mode, str(run.workers), str(run.shards),
             str(run.commits),
             str(run.aborts), f"{run.conflict_rate:.0%}",
             f"{run.ops_per_second:,.0f}",
             "yes" if run.serializable else "NO"]
            for run in runs]
    return _format_table(headers, rows)


def policy_comparison_table(runs, policies=None) -> str:
    """The headline pivot: per (structure, workload), the abort count and
    conflict rate each conflict-detection policy produced, the
    wall-clock speedup of each policy over the mutex baseline on that
    same workload, and whether the verified commutativity conditions
    admitted strictly more concurrency (fewer aborts) than read/write
    conflict detection — the paper's Chapter 1 claim, measured and
    quantified end-to-end.
    """
    from ..runtime.gatekeeper import POLICIES
    seen = {run.policy for run in runs}
    if policies is None:
        policies = [p for p in POLICIES if p in seen]
    # Columns that no run in this report can populate are dropped
    # entirely rather than rendered as dashes: single-policy and
    # single-shard reports get a table exactly as wide as their data.
    with_speedups = "mutex" in seen and len(seen) > 1
    speedup_policies = [p for p in policies if p != "mutex"] \
        if with_speedups else []
    with_verdict = {"commutativity", "read-write"} <= seen
    with_shards = any(run.shards != 1 for run in runs)
    groups: dict[tuple, dict] = {}
    for run in runs:
        key = (run.structure, run.workload.label, run.conflict_mode,
               run.workers, run.shards)
        groups.setdefault(key, {})[run.policy] = run
    rows = []
    for (structure, label, mode, workers, shards), by_policy \
            in groups.items():
        row = [structure, label, str(workers)]
        if with_shards:
            row.append(str(shards))
        for policy in policies:
            run = by_policy.get(policy)
            row.append("-" if run is None else
                       f"{run.aborts} ({run.conflict_rate:.0%})")
        mutex = by_policy.get("mutex")
        for policy in speedup_policies:
            run = by_policy.get(policy)
            if (run is None or mutex is None or run.wall_seconds <= 0
                    or mutex.wall_seconds <= 0):
                row.append("-")
            else:
                row.append(f"{mutex.wall_seconds / run.wall_seconds:.2f}x")
        if with_verdict:
            comm = by_policy.get("commutativity")
            rw = by_policy.get("read-write")
            if comm is not None and rw is not None:
                row.append("yes" if comm.aborts < rw.aborts else "no")
            else:
                row.append("-")
        rows.append(row)
    headers = (["structure", "workload", "workers"]
               + (["shards"] if with_shards else [])
               + [f"{p}: aborts (conflict rate)" for p in policies]
               + [f"{p} speedup vs mutex" for p in speedup_policies]
               + (["commutativity wins"] if with_verdict else []))
    return _format_table(headers, rows)


def shard_contention_table(runs) -> str:
    """Per-shard admission statistics of each run: where the checks and
    conflicts landed, so hot regions (and router imbalance) are visible
    at a glance.

    Renders only runs that actually sharded their log; when every run
    is single-shard (or carries no shard stats at all) there is no
    per-shard story to tell, so a one-line note replaces the
    empty-column table."""
    headers = ["structure", "workload", "policy", "shard", "checks",
               "conflicts", "conflict rate", "outstanding"]
    rows = []
    for run in runs:
        if len(run.shard_stats) <= 1:
            continue  # single-shard: the workload table already has it
        for stats in run.shard_stats:
            checks = stats["checks"]
            rate = stats["conflicts"] / checks if checks else 0.0
            rows.append([run.structure, run.workload.label, run.policy,
                         str(stats["shard"]), str(checks),
                         str(stats["conflicts"]), f"{rate:.0%}",
                         str(stats["outstanding"])])
    if not rows:
        return ("(no per-shard breakdown: every run used a single "
                "shard — totals are in the workload table)")
    return _format_table(headers, rows)


def drift_admission_table(runs) -> str:
    """The drift guard's traffic per run: how many pair checks hit the
    guard, how many a compiled drift-stable condition admitted (split
    by certificate tier — ``stable hits`` for bounded-sweep weakenings,
    ``proved hits`` for symbolically proved conditions, ``synth hits``
    for conditions the abduction loop discovered), how many fell
    back to the conservative router oracle (and how many of those the
    oracle admitted), and how many would-be admissions the
    undo-commutation guard refused."""
    rows = []
    for run in runs:
        report = run.report
        if not (report.drift_checks or report.drift_fallbacks
                or report.undo_refusals):
            # drift_fallbacks can be nonzero with zero drift_checks:
            # the EvalError path is conservative without being drifted.
            continue
        semantic_hits = (report.stable_hits + report.proved_hits
                         + report.synthesized_hits)
        stable_rate = (semantic_hits / report.drift_checks
                       if report.drift_checks else 0.0)
        rows.append([run.structure, run.workload.label, run.policy,
                     "yes" if getattr(run, "stable", False) else "no",
                     str(report.drift_checks), str(report.stable_hits),
                     str(report.proved_hits),
                     str(report.synthesized_hits),
                     f"{stable_rate:.0%}",
                     str(report.drift_fallbacks),
                     str(report.fallback_admits),
                     str(report.undo_refusals)])
    if not rows:
        return "(no drift-guarded checks: every admission was in its " \
               "verified environment)"
    headers = ["structure", "workload", "policy", "stable",
               "drift checks", "stable hits", "proved hits",
               "synth hits", "hit rate",
               "fallbacks", "fallback admits", "undo refusals"]
    return _format_table(headers, rows)


def compiled_admission_table(pairs) -> str:
    """Compiled-vs-interpreted admission columns: one row per
    (interpreted run, compiled run) pair executing the same workload.
    The decision column asserts the tentpole contract — lowering the
    admission vocabulary into closures must change throughput, never
    decisions — by comparing the two runs' decision digests."""
    rows = []
    for interpreted, compiled in pairs:
        report = compiled.report
        same = (interpreted.report.decision_digest()
                == report.decision_digest())
        interp_ops = interpreted.committed_ops_per_second
        speedup = (report.committed_ops_per_second / interp_ops
                   if interp_ops > 0 else 0.0)
        rows.append([
            compiled.structure, compiled.workload.label,
            str(compiled.shards),
            f"{interp_ops:,.0f}",
            f"{report.committed_ops_per_second:,.0f}",
            f"{speedup:.2f}x",
            str(report.compiled_hits), str(report.conflict_checks),
            str(report.eval_errors),
            "identical" if same else "DIVERGED"])
    if not rows:
        return "(no compiled-vs-interpreted pairs to compare)"
    headers = ["structure", "workload", "shards",
               "interp ops/s", "compiled ops/s", "speedup",
               "compiled hits", "checks", "eval errors", "decisions"]
    return _format_table(headers, rows)


def stability_table(reports) -> str:
    """Per-pair drift-stability verdicts of one or more
    :class:`~repro.stability.StabilityReport` values (``python -m
    repro stability``).  The ``armed/reported`` column splits each
    pair's candidates into the ones compiled into its runtime guard
    versus the ones kept as report-only evidence; a ``*`` marks proved
    candidates (``--prover`` runs) and a ``+`` abduced ones
    (``--abduce`` runs)."""
    if not isinstance(reports, dict):
        reports = {reports.name: reports}
    rows = []
    for name, report in reports.items():
        for pair in report.pairs:
            armed = sum(1 for c in pair.candidates if c.armed)
            proved = sum(1 for c in pair.candidates
                         if c.armed and c.proved)
            abduced = sum(1 for c in pair.candidates
                          if c.armed and c.origin == "abduced")
            split = f"{armed}/{len(pair.candidates)}"
            if proved:
                split += f" ({proved}*)"
            if abduced:
                split += f" ({abduced}+)"
            rows.append([name, pair.pair_label, pair.verdict,
                         split if pair.candidates else "-",
                         pair.stable_text or "-"])
    headers = ["structure", "pair", "verdict", "armed/reported",
               "drift-stable condition"]
    return _format_table(headers, rows)


def service_latency_table(section: dict) -> str:
    """Admission-service latency/throughput columns from a
    ``BENCH_service.json`` throughput section (``bench --suite
    service``): one row per client worker process plus an aggregate
    row — RPC round-trips, admission-latency p50/p95, and committed
    operations over the cross-process wall clock."""
    rows = []
    for entry in section.get("per_worker", ()):
        rows.append([
            str(entry["worker"]), entry["structure"],
            entry["workload"], str(entry["admission_rpcs"]),
            f"{entry['latency_ms']['p50']:.3f}",
            f"{entry['latency_ms']['p95']:.3f}",
            str(entry["committed_operations"]),
            f"{entry['wall_seconds']:.3f}",
            "yes" if entry["serializable"] else "NO"])
    if not rows:
        return "(no service client runs to report)"
    latency = section.get("latency_ms", {})
    rows.append([
        "all", "-", "-", str(section.get("admission_rpcs", 0)),
        f"{latency.get('p50', 0.0):.3f}", f"{latency.get('p95', 0.0):.3f}",
        str(section.get("committed_operations", 0)),
        f"{section.get('wall_seconds', 0.0):.3f}",
        "-"])
    headers = ["worker", "structure", "workload", "rpcs",
               "latency p50 ms", "latency p95 ms", "committed ops",
               "wall s", "serializable"]
    return _format_table(headers, rows)


def service_soak_table(leg: dict) -> str:
    """The soak ramp of one deployment from a ``BENCH_service.json``
    soak leg (``bench --suite service --soak``): one row per ramp
    point — client processes, workload runs, committed-ops/s, latency
    percentiles, pooled-domain reuses — with the knee row starred."""
    points = leg.get("points", ())
    if not points:
        return "(no soak points to report)"
    knee = leg.get("knee") or {}
    rows = []
    for point in points:
        at_knee = point["clients"] == knee.get("clients")
        rows.append([
            f"{point['clients']}{' *' if at_knee else ''}",
            str(point["runs"]),
            str(point["committed_operations"]),
            f"{point['committed_ops_per_second']:,.0f}",
            f"{point['latency_ms']['p50']:.3f}",
            f"{point['latency_ms']['p95']:.3f}",
            str(point["domain_reuses"]),
            "ERROR" if point["errors"] else "ok"])
    headers = ["clients", "runs", "committed ops", "ops/s",
               "latency p50 ms", "latency p95 ms", "domain reuses",
               "status"]
    table = _format_table(headers, rows)
    if knee:
        table += (f"\n(* knee: {knee['clients']} clients, "
                  f"{knee['committed_ops_per_second']:,.0f} committed "
                  f"ops/s, p95 {knee['latency_p95_ms']:.3f} ms)")
    return table


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty
    sample — deliberately interpolation-free so tiny seed matrices
    report values that actually occurred."""
    if not values:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
    return ordered[int(rank) - 1]


def seed_matrix_table(runs) -> str:
    """The seed-matrix extension of the workload report table: one row
    per (structure, workload, policy) with p50/p95 percentile columns
    over the per-seed samples (``bench --suite runtime --seeds N``)."""
    groups: dict[tuple, list] = {}
    for run in runs:
        groups.setdefault(
            (run.structure, run.workload.label, run.policy), []).append(run)
    rows = []
    for (structure, label, policy), sample in groups.items():
        ops = [r.ops_per_second for r in sample]
        aborts = [r.aborts for r in sample]
        rows.append([
            structure, label, policy, str(len(sample)),
            f"{percentile(ops, 50):,.0f}", f"{percentile(ops, 95):,.0f}",
            f"{percentile(aborts, 50):.0f}",
            f"{percentile(aborts, 95):.0f}",
            "yes" if all(r.serializable for r in sample) else "NO"])
    headers = ["structure", "workload", "policy", "seeds",
               "ops/s p50", "ops/s p95", "aborts p50", "aborts p95",
               "serializable"]
    return _format_table(headers, rows)


@dataclass
class TableIndex:
    """Programmatic index of every reproduced table."""

    @staticmethod
    def all() -> dict[str, object]:
        return {
            "5.1": table_5_01, "5.2": table_5_02, "5.3": table_5_03,
            "5.4": table_5_04, "5.5": table_5_05, "5.6": table_5_06,
            "5.7": table_5_07, "5.8": table_5_08, "5.9": table_5_09,
            "5.10": table_5_10,
        }
