"""Render the paper's evaluation tables (Tables 5.1-5.10) from live
verification runs.

Each ``table_5_XX`` function returns the rows the paper reports; the
benchmark harness prints them and EXPERIMENTS.md records paper-vs-
measured deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..commutativity.conditions import Kind
from ..commutativity.verifier import VerificationReport, verify_all
from ..eval.enumeration import Scope
from ..proof.hints import command_count_table


def _registry(registry):
    from ..api import resolve_registry
    return resolve_registry(registry)


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    border = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(border)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def condition_table(family: str, kind: Kind,
                    pairs: list[tuple[str, str]] | None = None,
                    registry=None) -> str:
    """A Tables 5.1-5.7 style condition listing."""
    rows = []
    for cond in _registry(registry).conditions(family):
        if cond.kind is not kind:
            continue
        if pairs is not None and (cond.m1, cond.m2) not in pairs:
            continue
        dynamic = cond.dynamic_text or cond.text
        rows.append([f"{cond.m1}(..)", f"{cond.m2}(..)", cond.text, dynamic])
    headers = ["first op", "second op",
               f"{kind} condition (abstract)", "dynamic check"]
    return _format_table(headers, rows)


# -- Tables 5.1-5.7 -----------------------------------------------------------

def table_5_01() -> str:
    """Accumulator before/between/after conditions."""
    sections = []
    for kind in (Kind.BEFORE, Kind.BETWEEN, Kind.AFTER):
        sections.append(f"[{kind}]")
        sections.append(condition_table("Accumulator", kind))
    return "\n".join(sections)


_SET_PAIRS = [(m1, m2)
              for m1 in ("add_", "contains", "remove_")
              for m2 in ("add_", "contains", "remove_")]
_MAP_PAIRS = [(m1, m2)
              for m1 in ("get", "put_", "remove_")
              for m2 in ("get", "put_", "remove_")]
_ARRAY_PAIRS = [(m1, m2)
                for m1 in ("add_at", "indexOf", "remove_at")
                for m2 in ("add_at", "indexOf", "remove_at")]


def table_5_02() -> str:
    """Before conditions on ListSet and HashSet (paper's selection)."""
    return condition_table("Set", Kind.BEFORE, _SET_PAIRS)


def table_5_03() -> str:
    """Between conditions on ListSet and HashSet."""
    return condition_table("Set", Kind.BETWEEN, _SET_PAIRS)


def table_5_04() -> str:
    """Before conditions on AssociationList and HashTable."""
    return condition_table("Map", Kind.BEFORE, _MAP_PAIRS)


def table_5_05() -> str:
    """After conditions on AssociationList and HashTable."""
    return condition_table("Map", Kind.AFTER, _MAP_PAIRS)


def table_5_06() -> str:
    """Between conditions on ArrayList (paper's row/column selection)."""
    return condition_table("ArrayList", Kind.BETWEEN, _ARRAY_PAIRS)


def table_5_07() -> str:
    """After conditions on ArrayList."""
    return condition_table("ArrayList", Kind.AFTER, _ARRAY_PAIRS)


# -- Table 5.8: verification times ---------------------------------------------

#: The paper's Jahob verification times, in seconds (Table 5.8).
PAPER_TIMES = {
    "Accumulator": 0.8,
    "AssociationList": 95.0,
    "HashSet": 44.0,
    "HashTable": 200.0,
    "ListSet": 40.0,
    "ArrayList": 738.0,
}


def table_5_08(scope: Scope | None = None, backend: str = "symbolic",
               registry=None, jobs: int | None = None, cache=False) \
        -> tuple[str, dict[str, VerificationReport]]:
    """Verification times per data structure (Table 5.8).

    ``jobs``/``cache`` pass through to the sharded engine; the table
    gains per-structure shard counts, cache hit/miss columns, and the
    slowest shard so parallel runs can be load-balanced by eye.
    """
    reports = verify_all(scope or Scope(), backend=backend,
                         registry=registry, jobs=jobs, cache=cache)
    rows = []
    for name, report in reports.items():
        slowest = report.slowest_task
        paper = PAPER_TIMES.get(name)
        rows.append([
            name,
            str(report.condition_count),
            str(report.method_count),
            f"{report.elapsed:.2f}s",
            f"{paper:.1f}s" if paper is not None else "-",
            str(len(report.task_timings)),
            f"{report.cache_hits}/{report.cache_misses}",
            (f"{slowest.label} ({slowest.elapsed:.2f}s)"
             if slowest is not None else "-"),
            "yes" if report.all_verified else "NO",
        ])
    total_methods = sum(r.method_count for r in reports.values())
    rows.append(["Total", str(sum(r.condition_count
                                  for r in reports.values())),
                 str(total_methods),
                 f"{sum(r.elapsed for r in reports.values()):.2f}s",
                 f"{sum(PAPER_TIMES.values()):.1f}s",
                 str(sum(len(r.task_timings) for r in reports.values())),
                 f"{sum(r.cache_hits for r in reports.values())}"
                 f"/{sum(r.cache_misses for r in reports.values())}",
                 "", ""])
    headers = ["Data Structure", "conditions", "methods",
               f"measured ({backend})", "paper (Jahob)", "tasks",
               "cache h/m", "slowest shard", "all verified"]
    return _format_table(headers, rows), reports


def task_timing_table(reports: dict[str, VerificationReport],
                      limit: int = 10) -> str:
    """The ``limit`` slowest task shards across a set of reports."""
    timings = [t for report in reports.values()
               for t in report.task_timings]
    timings.sort(key=lambda t: t.elapsed, reverse=True)
    rows = [[t.label, t.backend, f"{t.elapsed:.3f}s",
             "hit" if t.cached else "miss"]
            for t in timings[:limit]]
    return _format_table(["task shard", "backend", "elapsed", "cache"],
                         rows)


# -- Table 5.9: proof-language command counts ------------------------------------

#: The paper's command counts for the 57 hard ArrayList methods.
PAPER_COMMANDS = {"note": 128, "assuming": 51, "pickWitness": 22,
                  "total": 201}


def table_5_09() -> str:
    """Proof-language command counts (Table 5.9), ours vs the paper's."""
    ours = command_count_table()
    rows = []
    for name in ("note", "assuming", "pickWitness", "total"):
        rows.append([name, str(ours.get(name, 0)),
                     str(PAPER_COMMANDS[name])])
    headers = ["Proof Language Command", "measured", "paper"]
    return _format_table(headers, rows)


# -- Table 5.10: inverse operations ------------------------------------------------

def table_5_10(registry=None) -> str:
    """The registered inverse operations (Table 5.10's eight)."""
    registry = _registry(registry)
    rows = []
    for family in registry.families():
        for inv in registry.inverses(family):
            op = registry.spec(family).operations[inv.op]
            call = f"{'r = ' if op.result_sort is not None else ''}" \
                   f"s1.{inv.op}(" \
                   + ", ".join(p.name for p in op.params) + ")"
            rows.append([inv.family, call, inv.render()])
    headers = ["Data Structure", "Operation", "Inverse Operation"]
    return _format_table(headers, rows)


# -- runtime throughput: policy comparison -------------------------------------

def workload_report_table(runs) -> str:
    """One row per workload run (structure x workload x policy)."""
    headers = ["structure", "workload", "policy", "mode", "workers",
               "shards", "commits", "aborts", "conflict rate", "ops/s",
               "serializable"]
    rows = [[run.structure, run.workload.label, run.policy,
             run.conflict_mode, str(run.workers), str(run.shards),
             str(run.commits),
             str(run.aborts), f"{run.conflict_rate:.0%}",
             f"{run.ops_per_second:,.0f}",
             "yes" if run.serializable else "NO"]
            for run in runs]
    return _format_table(headers, rows)


def policy_comparison_table(runs, policies=None) -> str:
    """The headline pivot: per (structure, workload), the abort count and
    conflict rate each conflict-detection policy produced, the
    wall-clock speedup of each policy over the mutex baseline on that
    same workload, and whether the verified commutativity conditions
    admitted strictly more concurrency (fewer aborts) than read/write
    conflict detection — the paper's Chapter 1 claim, measured and
    quantified end-to-end.
    """
    from ..runtime.gatekeeper import POLICIES
    if policies is None:
        seen = {run.policy for run in runs}
        policies = [p for p in POLICIES if p in seen]
    speedup_policies = [p for p in policies if p != "mutex"]
    groups: dict[tuple, dict] = {}
    for run in runs:
        key = (run.structure, run.workload.label, run.conflict_mode,
               run.workers, run.shards)
        groups.setdefault(key, {})[run.policy] = run
    rows = []
    for (structure, label, mode, workers, shards), by_policy \
            in groups.items():
        row = [structure, label, str(workers), str(shards)]
        for policy in policies:
            run = by_policy.get(policy)
            row.append("-" if run is None else
                       f"{run.aborts} ({run.conflict_rate:.0%})")
        mutex = by_policy.get("mutex")
        for policy in speedup_policies:
            run = by_policy.get(policy)
            if (run is None or mutex is None or run.wall_seconds <= 0
                    or mutex.wall_seconds <= 0):
                row.append("-")
            else:
                row.append(f"{mutex.wall_seconds / run.wall_seconds:.2f}x")
        comm = by_policy.get("commutativity")
        rw = by_policy.get("read-write")
        if comm is not None and rw is not None:
            row.append("yes" if comm.aborts < rw.aborts else "no")
        else:
            row.append("-")
        rows.append(row)
    headers = (["structure", "workload", "workers", "shards"]
               + [f"{p}: aborts (conflict rate)" for p in policies]
               + [f"{p} speedup vs mutex" for p in speedup_policies]
               + ["commutativity wins"])
    return _format_table(headers, rows)


def shard_contention_table(runs) -> str:
    """Per-shard admission statistics of each run: where the checks and
    conflicts landed, so hot regions (and router imbalance) are visible
    at a glance.  Runs without shard stats are skipped."""
    headers = ["structure", "workload", "policy", "shard", "checks",
               "conflicts", "conflict rate", "outstanding"]
    rows = []
    for run in runs:
        for stats in run.shard_stats:
            checks = stats["checks"]
            rate = stats["conflicts"] / checks if checks else 0.0
            rows.append([run.structure, run.workload.label, run.policy,
                         str(stats["shard"]), str(checks),
                         str(stats["conflicts"]), f"{rate:.0%}",
                         str(stats["outstanding"])])
    return _format_table(headers, rows)


@dataclass
class TableIndex:
    """Programmatic index of every reproduced table."""

    @staticmethod
    def all() -> dict[str, object]:
        return {
            "5.1": table_5_01, "5.2": table_5_02, "5.3": table_5_03,
            "5.4": table_5_04, "5.5": table_5_05, "5.6": table_5_06,
            "5.7": table_5_07, "5.8": table_5_08, "5.9": table_5_09,
            "5.10": table_5_10,
        }
