"""Rendering of the paper's evaluation tables."""

from .tables import (PAPER_COMMANDS, PAPER_TIMES, TableIndex,
                     condition_table, drift_admission_table, percentile,
                     policy_comparison_table, seed_matrix_table,
                     shard_contention_table, stability_table, table_5_01,
                     table_5_02, table_5_03, table_5_04, table_5_05,
                     table_5_06, table_5_07, table_5_08, table_5_09,
                     table_5_10, task_timing_table, workload_report_table)

__all__ = [
    "PAPER_COMMANDS", "PAPER_TIMES", "TableIndex", "condition_table",
    "drift_admission_table", "percentile", "policy_comparison_table",
    "seed_matrix_table", "shard_contention_table", "stability_table",
    "table_5_01", "table_5_02", "table_5_03", "table_5_04", "table_5_05",
    "table_5_06", "table_5_07", "table_5_08", "table_5_09", "table_5_10",
    "task_timing_table", "workload_report_table",
]
