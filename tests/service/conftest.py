"""Shared fixture: one in-thread admission server per test module.

The server's asyncio loop runs on a daemon thread; tests talk to it
over real sockets (the blocking :class:`ServiceClient`, the executor's
``ServiceBackend``, or a raw HTTP scrape) exactly like an external
worker process would — minus the process-spawn latency.
"""

import asyncio
import threading

import pytest

from repro.service.server import AdmissionServer


class LiveServer:
    """An :class:`AdmissionServer` running on its own loop thread."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       name="test-admission-server",
                                       daemon=True)
        self.thread.start()
        self.server = AdmissionServer("127.0.0.1", 0)
        self._call(self.server.start())
        self._serving = asyncio.run_coroutine_threadsafe(
            self.server.serve_forever(), self.loop)

    def _call(self, coro, timeout: float = 30.0):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        self._serving.cancel()
        self._call(self.server.shutdown(grace=1.0))
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.loop.close()


@pytest.fixture(scope="module")
def live_server():
    server = LiveServer()
    yield server
    server.stop()
