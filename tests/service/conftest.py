"""Shared fixture: one in-thread admission server per test module.

The server's asyncio loop runs on a daemon thread; tests talk to it
over real sockets (the blocking :class:`ServiceClient`, the executor's
``ServiceBackend``, or a raw HTTP scrape) exactly like an external
worker process would — minus the process-spawn latency.
"""

import asyncio
import threading

import pytest

from repro.service.server import AdmissionServer


class LiveServer:
    """An :class:`AdmissionServer` running on its own loop thread."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       name="test-admission-server",
                                       daemon=True)
        self.thread.start()
        self.server = AdmissionServer("127.0.0.1", 0)
        self._call(self.server.start())
        self._serving = asyncio.run_coroutine_threadsafe(
            self.server.serve_forever(), self.loop)

    def _call(self, coro, timeout: float = 30.0):
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        self._serving.cancel()
        self._call(self.server.shutdown(grace=1.0))
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)
        self.loop.close()


class LiveCluster:
    """``workers`` in-thread admission servers wired into one
    shard-partitioned cluster: every server carries the same partition
    map (worker id + full port list), exactly what ``start_cluster``
    installs across real processes — minus the spawn latency."""

    def __init__(self, workers: int) -> None:
        self.servers = [LiveServer() for _ in range(workers)]
        ports = [server.port for server in self.servers]
        for worker_id, server in enumerate(self.servers):
            server.server.set_cluster(worker_id, ports)

    @property
    def host(self) -> str:
        return self.servers[0].host

    @property
    def port(self) -> int:
        return self.servers[0].port

    @property
    def ports(self) -> list[int]:
        return [server.port for server in self.servers]

    def stop(self) -> None:
        for server in self.servers:
            server.stop()


@pytest.fixture(scope="module")
def live_server():
    server = LiveServer()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def live_cluster():
    cluster = LiveCluster(2)
    yield cluster
    cluster.stop()
