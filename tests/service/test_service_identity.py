"""Decision identity: served admission must be byte-identical to
in-process admission — same workload, same seed, same digest."""

import pytest

from repro.runtime import SpeculativeExecutor
from repro.service.client import ServiceBackend
from repro.workloads import ThroughputHarness, WorkloadSpec


def _workload(seed=71):
    return WorkloadSpec(name="identity-mixed", profile="mixed",
                        distribution="uniform", transactions=6,
                        ops_per_transaction=5, key_space=12,
                        value_space=3, preload=6, seed=seed)


@pytest.mark.parametrize("structure", ["HashSet", "ArrayList"])
def test_served_decisions_match_local_ones(live_server, structure):
    harness = ThroughputHarness(workers=1)
    workload = _workload()
    local = harness.run_one(structure, workload,
                            policy="commutativity", workers=1, shards=4)
    served = harness.run_one(
        structure, workload, policy="commutativity", workers=1,
        shards=4,
        backend=ServiceBackend(live_server.host, live_server.port,
                               label="identity-test"))
    assert served.report.decision_digest() \
        == local.report.decision_digest()
    # The identity is decision-deep, not just digest-deep.
    assert served.report.commit_order == local.report.commit_order
    assert served.report.conflicts == local.report.conflicts
    assert served.report.conflict_checks == local.report.conflict_checks
    assert served.serializable and local.serializable


def test_service_runs_are_labelled_and_timed(live_server):
    harness = ThroughputHarness(workers=1)
    run = harness.run_one(
        "HashSet", _workload(), policy="commutativity", workers=1,
        shards=2,
        backend=ServiceBackend(live_server.host, live_server.port))
    assert run.backend == "service"
    assert run.report.backend == "service"
    # Every check crossed the wire and was timed.
    assert run.report.admission_rpcs > 0
    assert len(run.report.admission_latencies) \
        == run.report.admission_rpcs
    assert all(latency >= 0 for latency in run.report.admission_latencies)
    assert run.report.admission_latency_ms(50) > 0


def test_local_runs_have_no_admission_latencies():
    harness = ThroughputHarness(workers=1)
    run = harness.run_one("HashSet", _workload(), workers=1)
    assert run.backend == "local"
    assert run.report.admission_rpcs == 0
    assert run.report.admission_latency_ms(95) == 0.0


def test_service_backend_refuses_threaded_executors(live_server):
    """One in-flight RPC per connection: the serial executor is the
    contract, cross-process fan-out is the scaling story."""
    backend = ServiceBackend(live_server.host, live_server.port)
    with pytest.raises(ValueError, match="across threads"):
        SpeculativeExecutor("HashSet", workers=2, backend=backend)


def test_session_run_workload_accepts_a_backend(live_server):
    from repro.api import Session
    session = Session()
    report = session.run_workload(
        "HashSet", _workload(),
        backend=ServiceBackend(live_server.host, live_server.port,
                               label="session"))
    assert report.backend == "service"
    assert report.serializable
