"""The admission server over real sockets: frame RPCs, batching,
error surfaces, and the HTTP metrics side of the same port."""

import json

import pytest

from repro.eval import Record
from repro.runtime import LoggedOperation
from repro.service import protocol
from repro.service.bench import EXPECTED_METRIC_NAMES, scrape_metrics
from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import prometheus_text


def _seq_state(*elems):
    return Record(elems=tuple(elems))


@pytest.fixture()
def client(live_server):
    client = ServiceClient(live_server.host, live_server.port)
    yield client
    client.close()


def _open_arraylist(client, shards=2):
    response = client.call(protocol.open_frame("ArrayList",
                                               shards=shards,
                                               label="test"))
    return response["domain"]


# -- handshake and liveness ---------------------------------------------------

def test_hello_handshake_reports_the_protocol_version(client):
    assert client.server_version == protocol.PROTOCOL_VERSION


def test_version_mismatch_is_refused(client):
    with pytest.raises(ServiceError, match="version mismatch"):
        client.call({"t": "hello", "v": protocol.PROTOCOL_VERSION + 1})


def test_ping(client):
    assert client.call(protocol.ping_frame())["ok"] is True


# -- the admission RPC surface ------------------------------------------------

def test_served_admission_flow(client):
    """open → record → check (admit and conflict) → release → stats →
    close, with the same decisions the in-process gatekeeper makes."""
    domain = _open_arraylist(client)
    state = _seq_state("a", "b", "c")
    client.call(protocol.record_frame(domain, LoggedOperation(
        txn_id=1, op_name="get", args=(0,), result="a",
        before=state, after=state)))
    # Reads commute: a second get is admitted.
    verdict = client.call(protocol.check_frame(domain, 2, "get", (0,),
                                               state))
    assert verdict["admitted"] is True and verdict["holder"] is None
    # A write under the outstanding read conflicts; the holder is the
    # logging transaction (wait-die needs its id).
    verdict = client.call(protocol.check_frame(domain, 2, "set",
                                               (0, "x"), state))
    assert verdict["admitted"] is False and verdict["holder"] == 1

    client.call(protocol.release_frame(domain, 1, "commit"))
    # The log is drained: the write is now admitted.
    verdict = client.call(protocol.check_frame(domain, 2, "set",
                                               (0, "x"), state))
    assert verdict["admitted"] is True

    stats = client.call(protocol.stats_frame(domain))["stats"]
    assert stats["structure"] == "ArrayList"
    assert stats["commits"] == 1 and stats["aborts"] == 0
    assert stats["counters"]["checks"] >= 2
    assert stats["counters"]["conflicts"] == 1
    assert len(stats["shard_stats"]) == 2

    final = client.call(protocol.close_frame(domain))["stats"]
    assert final["closed"] is True
    # Closed domains refuse admission traffic but keep serving stats
    # (scrape continuity after a run).
    with pytest.raises(ServiceError, match="closed domain"):
        client.call(protocol.check_frame(domain, 3, "get", (0,), state))
    retained = client.call(protocol.stats_frame(domain))["stats"]
    assert retained["counters"] == final["counters"]


def test_abort_release_counts_as_abort(client):
    domain = _open_arraylist(client)
    state = _seq_state("a")
    client.call(protocol.record_frame(domain, LoggedOperation(
        txn_id=1, op_name="get", args=(0,), result="a",
        before=state, after=state)))
    client.call(protocol.release_frame(domain, 1, "abort"))
    stats = client.call(protocol.stats_frame(domain))["stats"]
    assert stats["aborts"] == 1 and stats["commits"] == 0
    assert stats["abort_rate"] == 1.0


def test_batch_preserves_order_and_nesting_is_refused(client):
    domain = _open_arraylist(client)
    state = _seq_state("a")
    entry = LoggedOperation(txn_id=1, op_name="set", args=(0, "z"),
                            result=None, before=state,
                            after=_seq_state("z"))
    # record-then-check in one round-trip: the check must see the
    # freshly recorded write (order preserved) and conflict.
    results = client.call_batch([
        protocol.record_frame(domain, entry),
        protocol.check_frame(domain, 2, "set", (0, "x"),
                             _seq_state("z")),
    ])
    assert results[0]["ok"] is True
    assert results[1]["admitted"] is False and results[1]["holder"] == 1

    nested = client.call(protocol.batch_frame(
        [protocol.batch_frame([protocol.ping_frame()])]))
    assert nested["results"][0]["ok"] is False
    assert "nest" in nested["results"][0]["error"]


def test_error_surfaces(client):
    with pytest.raises(ServiceError, match="unknown frame type"):
        client.call({"t": "frobnicate"})
    with pytest.raises(ServiceError, match="unknown or closed domain"):
        client.call(protocol.check_frame(999999, 1, "get", (0,),
                                         _seq_state("a")))
    with pytest.raises(ServiceError, match="unknown domain"):
        client.call(protocol.stats_frame(999999))
    with pytest.raises(ServiceError):
        client.call(protocol.open_frame("NoSuchStructure"))
    # A failed frame must not poison the connection.
    assert client.call(protocol.ping_frame())["ok"] is True


def test_malformed_body_gets_an_error_frame(live_server):
    """A syntactically broken frame is answered (then the connection
    closes) instead of killing the server."""
    import socket
    import struct
    with socket.create_connection((live_server.host, live_server.port),
                                  timeout=10.0) as sock:
        sock.sendall(struct.pack(">I", 3) + b"{{{")
        reader = sock.makefile("rb")
        (length,) = struct.unpack(">I", reader.read(4))
        response = json.loads(reader.read(length))
    assert response["ok"] is False
    # And the server still answers new connections afterwards.
    probe = ServiceClient(live_server.host, live_server.port)
    try:
        assert probe.call(protocol.ping_frame())["ok"] is True
    finally:
        probe.close()


# -- metrics ------------------------------------------------------------------

def test_http_metrics_exposes_every_shard_counter(client, live_server):
    domain = _open_arraylist(client)
    state = _seq_state("a")
    client.call(protocol.record_frame(domain, LoggedOperation(
        txn_id=1, op_name="get", args=(0,), result="a",
        before=state, after=state)))
    client.call(protocol.check_frame(domain, 2, "get", (0,), state))
    client.call(protocol.release_frame(domain, 1, "commit"))

    status, body = scrape_metrics(live_server.host, live_server.port)
    assert status == 200
    for name in EXPECTED_METRIC_NAMES:
        assert name in body, f"missing metric family {name}"
    assert "repro_server_uptime_seconds" in body
    assert 'outcome="commit"' in body and 'outcome="abort"' in body
    assert f'domain="{domain}"' in body


def test_http_metrics_json_is_the_snapshot(client, live_server):
    _open_arraylist(client)
    status, body = scrape_metrics(live_server.host, live_server.port,
                                  path="/metrics.json")
    assert status == 200
    snapshot = json.loads(body)
    assert snapshot["server"]["protocol_version"] \
        == protocol.PROTOCOL_VERSION
    assert snapshot["server"]["connections_total"] >= 1
    assert snapshot["domains"]


def test_http_unknown_path_is_404(live_server):
    status, body = scrape_metrics(live_server.host, live_server.port,
                                  path="/nope")
    assert status == 404
    assert "not found" in body


def test_prometheus_rendering_is_pure():
    """The text renderer works off a plain snapshot dict — no server,
    no socket."""
    snapshot = {
        "server": {"connections_total": 3, "rpcs_total": 9,
                   "frames_total": 11, "http_requests_total": 1,
                   "uptime_seconds": 1.5, "domains_open": 1},
        "domains": [{
            "domain": 0, "structure": "HashSet", "label": "t",
            "commits": 2, "aborts": 1,
            "counters": {"checks": 5, "conflicts": 1},
            "shard_stats": [{"shard": 0, "checks": 5, "conflicts": 1,
                             "outstanding": 0}],
        }],
        "abort_rate_percentiles": {"p50": 0.25, "p95": 0.5},
    }
    body = prometheus_text(snapshot)
    assert "# TYPE repro_shard_checks counter" in body
    assert "# TYPE repro_shard_outstanding gauge" in body
    assert 'repro_admission_checks_total{domain="0",structure="HashSet"' \
        in body
    assert 'repro_abort_rate{quantile="0.5"} 0.25' in body
    assert body.endswith("\n")
