"""CLI surface of the service: the ``serve`` command exists, ``bench``
accepts the service suite, and — the import-hygiene gate — commands
that don't serve never import the server stack."""

import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"


def _run_and_list_service_modules(argv):
    """Run one CLI invocation in a fresh interpreter and report which
    ``repro.service`` modules ended up imported."""
    code = (
        "import sys\n"
        "from repro.__main__ import main\n"
        "try:\n"
        f"    status = main({argv!r})\n"
        "except SystemExit as exc:\n"
        "    status = exc.code or 0\n"
        "assert not status, f'exit status {status}'\n"
        "leaked = sorted(name for name in sys.modules\n"
        "                if name.startswith('repro.service'))\n"
        "print('SERVICE_MODULES=' + ','.join(leaked))\n"
    )
    env = dict(os.environ, PYTHONPATH=str(SRC))
    result = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    marker = [line for line in result.stdout.splitlines()
              if line.startswith("SERVICE_MODULES=")]
    assert marker, result.stdout
    modules = marker[-1].split("=", 1)[1]
    return [name for name in modules.split(",") if name]


def test_list_does_not_import_the_server_stack():
    assert _run_and_list_service_modules(["list"]) == []


def test_serve_help_does_not_import_the_server_stack():
    assert _run_and_list_service_modules(["serve", "--help"]) == []


def test_importing_repro_does_not_import_the_service():
    code = (
        "import sys, repro\n"
        "leaked = [name for name in sys.modules\n"
        "          if name.startswith('repro.service')]\n"
        "assert not leaked, leaked\n"
        "print('CLEAN')\n"
    )
    env = dict(os.environ, PYTHONPATH=str(SRC))
    result = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "CLEAN" in result.stdout


def test_bench_parser_accepts_the_service_suite():
    from repro.__main__ import build_parser
    args = build_parser().parse_args(["bench", "--suite", "service"])
    assert args.suite == "service"
    assert args.service_workers == 2  # CI minimum: >= 2 client procs


def test_serve_parser_defaults():
    from repro.__main__ import build_parser
    args = build_parser().parse_args(["serve"])
    assert args.host == "127.0.0.1"
    assert args.port == 7471
    assert args.grace == 5.0
