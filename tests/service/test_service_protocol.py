"""The wire protocol round-trips every spec-logic value exactly.

Admission conditions evaluate over the *decoded* values, so a lossy
codec would silently change decisions; these tests pin the codec, the
framing, and the bounds that keep the HTTP sniff unambiguous.
"""

import pytest

from repro.eval import Record
from repro.eval.values import FMap
from repro.runtime import LoggedOperation
from repro.service import protocol
from repro.service.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_body,
    decode_value,
    encode_value,
    pack_frame,
    unpack_length,
    unwire_operation,
    wire_operation,
)


# -- tagged value codec -------------------------------------------------------

@pytest.mark.parametrize("value", [None, True, False, 0, -7, 3.5,
                                   "", "abc", "üñí©ödé"])
def test_scalars_pass_through(value):
    encoded = encode_value(value)
    assert encoded == value
    assert decode_value(encoded) == value
    assert type(decode_value(encoded)) is type(value)


@pytest.mark.parametrize("value", [
    Record(contents=frozenset({"a", "b"}), size=2),
    Record(elems=("a", "b", "a")),
    Record(contents=FMap({"k": "v", "j": "w"}), size=2),
    frozenset(),
    frozenset({"x"}),
    (),
    ("solo",),
    # Nesting: a record holding a map of tuples of sets.
    Record(payload=FMap({"row": (frozenset({"a"}), frozenset())}),
           size=1),
])
def test_structured_values_round_trip(value):
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert type(decoded) is type(value)


def test_round_trip_survives_json():
    """The encoded form must survive an actual JSON dump/load — that
    is what rides the wire, not the Python dict."""
    import json
    state = Record(contents=frozenset({"a", "c", "b"}), size=3)
    wired = json.loads(json.dumps(encode_value(state)))
    assert decode_value(wired) == state


def test_frozenset_encoding_is_deterministic():
    """Set elements are ordered on the wire so identical states
    produce identical frames (digest identity depends on it)."""
    a = encode_value(frozenset({"x", "y", "z"}))
    b = encode_value(frozenset({"z", "x", "y"}))
    assert a == b


def test_unencodable_type_is_refused():
    with pytest.raises(ProtocolError):
        encode_value({"a": 1})  # plain dict is not a spec value
    with pytest.raises(ProtocolError):
        encode_value(object())


def test_undecodable_payload_is_refused():
    with pytest.raises(ProtocolError):
        decode_value({"no": "tag"})
    with pytest.raises(ProtocolError):
        decode_value({"#": "bogus", "v": []})
    with pytest.raises(ProtocolError):
        decode_value([1, 2, 3])


# -- logged operations on the wire -------------------------------------------

def test_wire_operation_round_trip():
    before = Record(elems=("a",))
    after = Record(elems=("a", "b"))
    entry = LoggedOperation(txn_id=3, op_name="add", args=("b",),
                            result=True, before=before, after=after)
    back = unwire_operation(wire_operation(entry))
    assert back.txn_id == 3
    assert back.op_name == "add"
    assert tuple(back.args) == ("b",)
    assert back.result is True
    assert back.before == before
    assert back.after == after


# -- framing -----------------------------------------------------------------

def test_frame_round_trip():
    frame = protocol.check_frame(0, 7, "get", (2,),
                                 Record(elems=("a", "b", "c")))
    packed = pack_frame(frame)
    length = unpack_length(packed[:4])
    assert length == len(packed) - 4
    assert decode_body(packed[4:]) == frame


def test_truncated_length_prefix_is_refused():
    with pytest.raises(ProtocolError):
        unpack_length(b"\x00\x00")


def test_oversized_length_is_refused():
    import struct
    with pytest.raises(ProtocolError):
        unpack_length(struct.pack(">I", MAX_FRAME + 1))


def test_http_get_can_never_be_a_frame_length():
    """The server sniffs plain HTTP by its first four bytes; b"GET "
    as a big-endian length must always exceed the frame cap."""
    assert int.from_bytes(b"GET ", "big") > MAX_FRAME
    with pytest.raises(ProtocolError):
        unpack_length(b"GET ")


def test_body_must_be_an_object():
    with pytest.raises(ProtocolError):
        decode_body(b"[1,2]")


def test_builders_carry_the_expected_types():
    assert protocol.hello_frame()["v"] == protocol.PROTOCOL_VERSION
    assert protocol.open_frame("HashSet", shards=4)["shards"] == 4
    assert protocol.release_frame(0, 5, "abort")["reason"] == "abort"
    batch = protocol.batch_frame([protocol.ping_frame()])
    assert batch["t"] == "batch" and len(batch["frames"]) == 1
    err = protocol.error_response("nope")
    assert err["ok"] is False and err["error"] == "nope"
