"""The shard-partitioned cluster: partition-map handshake, pooled
connections with interleaved batches, split/merge order preservation
(seeded property test), four-leg digest identity over every builtin,
domain reuse via ``reset``, and the client's connect backoff."""

import random

import pytest

from repro.eval import Record
from repro.runtime import LoggedOperation
from repro.service import protocol
from repro.service.client import (ServiceBackend, ServiceClient,
                                  ServiceError)
from repro.service.cluster import (PartitionedConflictManager,
                                   merge_verdicts, split_slices,
                                   worker_of)
from repro.workloads import ThroughputHarness, WorkloadSpec

from conftest import LiveCluster

SHARDS = 4


def _seq_state(*elems):
    return Record(elems=tuple(elems))


def _workload(seed=7):
    return WorkloadSpec(name="cluster-mixed", profile="mixed",
                        distribution="uniform", transactions=8,
                        ops_per_transaction=6, key_space=16,
                        value_space=3, preload=8, seed=seed)


@pytest.fixture(scope="module")
def live_cluster4():
    cluster = LiveCluster(4)
    yield cluster
    cluster.stop()


# -- the partition-map handshake ---------------------------------------------

def test_hello_round_trips_the_partition_map(live_cluster):
    """Every worker's hello reports the same port list and its own
    worker id — the client can bootstrap from any of them."""
    for worker_id, port in enumerate(live_cluster.ports):
        client = ServiceClient(live_cluster.host, port)
        try:
            assert client.cluster == {
                "workers": 2, "worker_id": worker_id,
                "ports": live_cluster.ports}
        finally:
            client.close()


def test_single_process_hello_reports_a_one_entry_map(live_server):
    client = ServiceClient(live_server.host, live_server.port)
    try:
        assert client.cluster == {"workers": 1, "worker_id": 0,
                                  "ports": [live_server.port]}
    finally:
        client.close()


def test_backend_pools_one_connection_per_worker(live_cluster):
    """Bootstrapping from the *second* worker's port still yields a
    pool in worker-id order."""
    backend = ServiceBackend(live_cluster.host, live_cluster.ports[1])
    try:
        clients = backend._pool()
        assert [client.port for client in clients] \
            == live_cluster.ports
        assert [client.cluster["worker_id"] for client in clients] \
            == [0, 1]
    finally:
        backend.close()


# -- split/merge (pure helpers + seeded property test) ------------------------

def test_split_and_merge_preserve_frame_order():
    """Property test (seeded stdlib ``random``): for any sorted shard
    route and worker count, the split is a partition into ascending
    per-worker slices owned by ``shard % workers``, and merging the
    per-slice verdicts reproduces the single ascending scan's first
    conflict — same verdict, same holder, same shard."""
    rng = random.Random(20260808)
    for _ in range(300):
        shards = rng.choice((1, 2, 4, 8, 16))
        workers = rng.randint(1, 5)
        route = tuple(sorted(rng.sample(
            range(shards), rng.randint(1, shards))))
        plan = split_slices(route, workers)
        flat = sorted(sid for ids in plan.values() for sid in ids)
        assert flat == list(route)  # a partition: nothing lost, nothing doubled
        for worker, ids in plan.items():
            assert list(ids) == sorted(ids)  # ascending scan order kept
            assert all(worker_of(sid, workers) == worker
                       for sid in ids)
        # Seed conflicts on a random subset; each worker reports its
        # slice's first conflict, like the server-side ascending scan.
        holders = {sid: rng.randrange(100) for sid in route
                   if rng.random() < 0.4}
        verdicts = []
        for worker in sorted(plan):
            hit = next((sid for sid in plan[worker]
                        if sid in holders), None)
            verdicts.append(
                {"admitted": hit is None, "shard": hit,
                 "holder": None if hit is None else holders[hit]})
        admitted, holder, shard = merge_verdicts(verdicts)
        first = next((sid for sid in route if sid in holders), None)
        if first is None:
            assert (admitted, holder, shard) == (True, None, None)
        else:
            assert (admitted, holder, shard) \
                == (False, holders[first], first)


def test_interleaved_batches_across_two_pooled_connections(live_cluster):
    """Pipelined record/release frames stay buffered per worker and
    flush only inside a check routed to that worker — the two pooled
    connections interleave without reordering either one."""
    backend = ServiceBackend(live_cluster.host, live_cluster.port)
    try:
        manager = backend.conflict_manager("ArrayList", shards=SHARDS)
        assert isinstance(manager, PartitionedConflictManager)
        router = manager._router
        # Two indices whose single-shard routes land on different
        # workers (shard % 2 differs).
        by_worker = {}
        for index in range(SHARDS * 4):
            route = router.shards_for("set", (index, "x"))
            if len(route) == 1:
                by_worker.setdefault(route[0] % 2, index)
        assert set(by_worker) == {0, 1}
        i0, i1 = by_worker[0], by_worker[1]
        state = _seq_state(*["a"] * (SHARDS * 4))
        for index in (i0, i1):
            manager.record(LoggedOperation(
                txn_id=1, op_name="set", args=(index, "b"),
                result=None, before=state, after=state))
        # One record is pending on each worker's connection.
        assert [len(pending) for pending in manager._pending] == [1, 1]
        # A check on i1's worker flushes *that* batch only, and sees
        # the freshly recorded conflicting write in order.
        admitted, holder = manager.check_many(2, "set", (i1, "x"),
                                              state)
        assert (admitted, holder) == (False, 1)
        flushed = worker_of(router.shards_for("set", (i1, "x"))[0], 2)
        assert manager._pending[flushed] == []
        assert len(manager._pending[1 - flushed]) == 1
        # The other worker's batch flushes with its own check, still
        # ahead of it in frame order.
        admitted, holder = manager.check_many(2, "set", (i0, "x"),
                                              state)
        assert (admitted, holder) == (False, 1)
        assert [len(pending) for pending in manager._pending] == [0, 0]
        manager.release(1, "abort")
        manager.release(2, "abort")
        manager.close()
    finally:
        backend.close()


# -- the digest-identity anchor ----------------------------------------------

def test_four_leg_digest_identity_for_every_builtin(
        live_server, live_cluster, live_cluster4):
    """Local, single-process served, 2-worker cluster, 4-worker
    cluster: byte-identical decision digests (and commit order) for
    every runnable builtin structure."""
    harness = ThroughputHarness(workers=1)
    workload = _workload()
    for structure in harness.runnable_structures():
        local = harness.run_one(structure, workload,
                                policy="commutativity", workers=1,
                                shards=SHARDS)
        digests = {"local": local.report.decision_digest()}
        for label, node in (("served", live_server),
                            ("cluster2", live_cluster),
                            ("cluster4", live_cluster4)):
            backend = ServiceBackend(node.host, node.port,
                                     label=f"{label}-{structure}")
            try:
                run = harness.run_one(structure, workload,
                                      policy="commutativity",
                                      workers=1, shards=SHARDS,
                                      backend=backend)
            finally:
                backend.close()
            digests[label] = run.report.decision_digest()
            assert run.report.commit_order \
                == local.report.commit_order, (structure, label)
        assert len(set(digests.values())) == 1, (structure, digests)


# -- domain reuse and epoch bumps --------------------------------------------

def test_domain_reuse_preserves_decisions(live_cluster):
    """A second execution through the same pooled backend resets the
    cached domains instead of re-opening — identical digests."""
    backend = ServiceBackend(live_cluster.host, live_cluster.port)
    try:
        harness = ThroughputHarness(workers=1)
        workload = _workload()
        first = harness.run_one("HashSet", workload,
                                policy="commutativity", workers=1,
                                shards=SHARDS, backend=backend)
        assert backend.domain_reuses == 0
        second = harness.run_one("HashSet", workload,
                                 policy="commutativity", workers=1,
                                 shards=SHARDS, backend=backend)
        assert backend.domain_reuses == 1
        assert first.report.decision_digest() \
            == second.report.decision_digest()
        # An epoch bump invalidates the cache: the next execution
        # opens fresh domains (and still decides identically).
        backend.bump_epoch()
        third = harness.run_one("HashSet", workload,
                                policy="commutativity", workers=1,
                                shards=SHARDS, backend=backend)
        assert backend.domain_reuses == 1
        assert third.report.decision_digest() \
            == first.report.decision_digest()
    finally:
        backend.close()


def test_reset_frame_clears_the_log_and_counters(live_server):
    client = ServiceClient(live_server.host, live_server.port)
    try:
        domain = client.call(protocol.open_frame(
            "ArrayList", shards=2, label="reset-test"))["domain"]
        state = _seq_state("a")
        client.call(protocol.record_frame(domain, LoggedOperation(
            txn_id=1, op_name="set", args=(0, "b"), result=None,
            before=state, after=_seq_state("b"))))
        verdict = client.call(protocol.check_frame(
            domain, 2, "set", (0, "x"), _seq_state("b")))
        assert verdict["admitted"] is False
        client.call(protocol.reset_frame(domain))
        stats = client.call(protocol.stats_frame(domain))["stats"]
        assert stats["counters"]["checks"] == 0
        assert stats["counters"]["conflicts"] == 0
        assert stats["commits"] == 0 and stats["aborts"] == 0
        assert all(shard["outstanding"] == 0
                   for shard in stats["shard_stats"])
        # The drained log admits what conflicted before the reset.
        verdict = client.call(protocol.check_frame(
            domain, 2, "set", (0, "x"), _seq_state("b")))
        assert verdict["admitted"] is True
        client.call(protocol.close_frame(domain))
    finally:
        client.close()


def test_reset_of_a_closed_domain_is_refused(live_server):
    client = ServiceClient(live_server.host, live_server.port)
    try:
        domain = client.call(protocol.open_frame(
            "ArrayList", shards=2, label="reset-closed"))["domain"]
        client.call(protocol.close_frame(domain))
        with pytest.raises(ServiceError, match="closed domain"):
            client.call(protocol.reset_frame(domain))
    finally:
        client.close()


# -- connect retry with bounded backoff ---------------------------------------

def test_connect_retries_with_exponential_backoff(monkeypatch):
    """Connecting to a dead port retries ``connect_retries`` times
    with doubling (bounded) sleeps before surfacing the OSError."""
    import socket as socket_mod
    from repro.service import client as client_mod
    with socket_mod.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    sleeps = []
    monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
    with pytest.raises(OSError):
        ServiceClient("127.0.0.1", dead_port, connect_retries=3,
                      backoff=0.05)
    assert sleeps == [0.05, 0.1, 0.2]


def test_backoff_sleeps_are_capped(monkeypatch):
    from repro.service import client as client_mod
    import socket as socket_mod
    with socket_mod.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    sleeps = []
    monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
    with pytest.raises(OSError):
        ServiceClient("127.0.0.1", dead_port, connect_retries=4,
                      backoff=1.5)
    assert sleeps == [1.5, client_mod.MAX_BACKOFF_SECONDS,
                      client_mod.MAX_BACKOFF_SECONDS,
                      client_mod.MAX_BACKOFF_SECONDS]


def test_cluster_stats_merge_to_one_domain_view(live_cluster):
    """After a run, the merged stats look like one domain: summed
    slice counters, per-shard rows from their owners, and agreeing
    commit/abort outcomes."""
    backend = ServiceBackend(live_cluster.host, live_cluster.port)
    try:
        harness = ThroughputHarness(workers=1)
        run = harness.run_one("HashSet", _workload(),
                              policy="commutativity", workers=1,
                              shards=SHARDS, backend=backend)
        stats = run.report
        assert stats.commits == 8  # every transaction commits eventually
        assert stats.serializable
        assert stats.conflict_checks > 0
    finally:
        backend.close()
