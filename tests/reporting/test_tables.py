"""Reporting tests: the tables render and carry the paper's content."""

from repro.eval import Scope
from repro.reporting import (PAPER_COMMANDS, PAPER_TIMES, table_5_01,
                             table_5_02, table_5_03, table_5_04,
                             table_5_05, table_5_06, table_5_07,
                             table_5_08, table_5_09, table_5_10)


def test_table_5_01_accumulator():
    text = table_5_01()
    assert "v1 = 0" in text and "v2 = 0" in text
    assert "[before]" in text and "[between]" in text and "[after]" in text


def test_table_5_02_matches_paper_rows():
    text = table_5_02()
    # Row add_/contains of Table 5.2.
    assert "v1 ~= v2 | v1 : s1" in text
    assert "s1.contains(v1) = true" in text
    # Row add_/remove_.
    assert "v1 ~= v2 " in text


def test_table_5_03_between_uses_returns():
    text = table_5_03()
    assert "v1 ~= v2 | r1" in text  # contains;add_ between condition


def test_table_5_04_map_before():
    text = table_5_04()
    assert "k1 ~= k2 | s1.get(k1) = v2" in text
    assert "k1 ~= k2 | v1 = v2" in text  # put_;put_


def test_table_5_05_map_after():
    text = table_5_05()
    assert "k1 ~= k2 | r1 = v2" in text  # get;put after uses r1


def test_table_5_06_and_5_07_arraylist():
    between = table_5_06()
    after = table_5_07()
    assert "ins(" in between and "idx(" in between
    assert "r2 = idx(s1, v2)" in after  # after conditions use r2


def test_table_5_08_verification_times():
    text, reports = table_5_08(Scope(max_seq_len=2), backend="symbolic")
    assert "ArrayList" in text and "Accumulator" in text
    assert set(reports) == set(PAPER_TIMES)
    assert all(r.all_verified for r in reports.values())
    total_conditions = sum(r.condition_count for r in reports.values())
    assert total_conditions == 765
    total_methods = sum(r.method_count for r in reports.values())
    assert total_methods == 1530


def test_table_5_09_command_counts():
    text = table_5_09()
    for command, count in PAPER_COMMANDS.items():
        assert str(count) in text, command
    assert "note" in text and "pickWitness" in text


def test_table_5_10_inverses():
    text = table_5_10()
    assert "s2.increase(-v)" in text
    assert "if r = true then s2.remove(v)" in text
    assert "s2.add_at(i, r)" in text
    assert text.count("\n") >= 9  # 8 rows + header + border
