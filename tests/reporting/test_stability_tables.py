"""Rendering of the drift-admission, stability, and seed-matrix tables,
plus the graceful single-shard / single-policy behaviour of the shard
and policy tables."""

from repro.reporting import (drift_admission_table, percentile,
                             policy_comparison_table, seed_matrix_table,
                             shard_contention_table, stability_table)
from repro.workloads import ThroughputHarness, WorkloadSpec

SMALL = WorkloadSpec(name="small", transactions=4, ops_per_transaction=4,
                     key_space=8, value_space=3, seed=3)


def _runs(policies=("commutativity",), shards=1):
    harness = ThroughputHarness(shards=shards)
    return [harness.run_one("HashSet", SMALL, policy=policy)
            for policy in policies]


def test_percentile_nearest_rank():
    assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.0
    assert percentile([4.0, 1.0, 3.0, 2.0], 95) == 4.0
    assert percentile([7.0], 50) == 7.0


def test_shard_contention_table_collapses_single_shard_runs():
    table = shard_contention_table(_runs(shards=1))
    assert "no per-shard breakdown" in table
    assert "|" not in table  # a note, not an empty-column table


def test_shard_contention_table_renders_sharded_runs():
    table = shard_contention_table(_runs(shards=4))
    assert "shard" in table and "conflicts" in table


def test_policy_table_drops_columns_it_cannot_populate():
    single = policy_comparison_table(_runs(("commutativity",)))
    assert "speedup" not in single
    assert "commutativity wins" not in single
    assert "shards" not in single
    full = policy_comparison_table(
        _runs(("commutativity", "read-write", "mutex")))
    assert "speedup vs mutex" in full
    assert "commutativity wins" in full


def test_policy_table_keeps_shard_column_for_sharded_runs():
    table = policy_comparison_table(_runs(("commutativity",), shards=4))
    assert "shards" in table


def test_drift_admission_table_notes_quiet_runs():
    table = drift_admission_table(_runs())
    assert isinstance(table, str)


def test_seed_matrix_table_shape():
    harness = ThroughputHarness()
    runs = [harness.run_one("HashSet", SMALL.with_(seed=seed))
            for seed in (1, 2, 3)]
    table = seed_matrix_table(runs)
    assert "ops/s p50" in table and "aborts p95" in table
    assert "seeds" in table and " 3 " in table


def test_stability_table_renders_reports():
    from repro.api import Session
    from repro.eval import Scope
    session = Session(cache=False, scope=Scope().smaller())
    reports = session.compile_stable(["HashSet"], register=False)
    table = stability_table(reports)
    assert "add_;contains" in table
    assert "weakened" in table and "v1 ~= v2" in table
